#!/usr/bin/env python
"""Generate the XBench databases to disk and analyze them.

Writes the four databases (at a configurable fraction of the paper's
small scale) as XML files under ``./xbench_corpus/`` and prints the
Section 2.1.1 statistical analysis — the Table 2 analogue plus fitted
occurrence distributions.

Run:  python examples/build_corpus.py [output_dir] [divisor]
"""

from __future__ import annotations

import pathlib
import sys

from repro.core import BenchmarkConfig, CorpusCache
from repro.stats import analyze_corpus, best_fit, format_table2
from repro.xml.schema_export import to_dtd, to_xsd

output_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                          else "xbench_corpus")
divisor = int(sys.argv[2]) if len(sys.argv) > 2 else 1000

cache = CorpusCache(BenchmarkConfig(scale_divisor=divisor))
stats_rows = []
for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
    scenario = cache.scenario(class_key, "small")
    class_dir = output_dir / class_key
    class_dir.mkdir(parents=True, exist_ok=True)
    for name, text in scenario.texts:
        (class_dir / name).write_text(
            '<?xml version="1.0" encoding="UTF-8"?>' + text,
            encoding="utf-8")
    # The XBench kit ships DTD and XSD files per class (paper fn. 6).
    schema = scenario.db_class.schema()
    (class_dir / f"{class_key}.dtd").write_text(to_dtd(schema),
                                                encoding="utf-8")
    (class_dir / f"{class_key}.xsd").write_text(to_xsd(schema),
                                                encoding="utf-8")
    documents = scenario.db_class.generate(scenario.units, seed=42)
    stats = analyze_corpus(documents, source=scenario.db_class.label,
                           sizes=[len(t) for __, t in scenario.texts])
    stats_rows.append(stats)
    print(f"wrote {len(scenario.texts):>5} file(s), "
          f"{scenario.bytes / 1024:>8.0f} KB -> {class_dir}")

print()
print(format_table2(stats_rows))

print("\nPer-class structure statistics")
print(f"{'class':<8}{'element types':>14}{'elements':>10}"
      f"{'max depth':>11}{'text ratio':>12}{'mixed types':>13}")
for stats in stats_rows:
    print(f"{stats.source:<8}{stats.distinct_element_types:>14}"
          f"{stats.total_elements:>10}{stats.max_depth:>11}"
          f"{stats.text_ratio():>12.2f}{len(stats.mixed_tags):>13}")

print("\nFitted child-occurrence distributions (TC/SD dictionary):")
dictionary_stats = next(s for s in stats_rows if s.source == "TC/SD")
for parent, child in dictionary_stats.parent_child_pairs():
    samples = [float(v) for v in
               dictionary_stats.occurrence_samples(parent, child)]
    if len(samples) >= 10:
        print(f"  {parent}/{child:<18} {best_fit(samples)}")
