#!/usr/bin/env python
"""Compare the four storage architectures on one database scenario.

Loads a chosen (class, scale) into every supported engine, creates the
paper's Table 3 indexes, runs the experiment queries and prints load
times, query times and correctness against the native oracle.

Run:  python examples/compare_engines.py [class] [scale]
      python examples/compare_engines.py dcmd normal
"""

from __future__ import annotations

import sys

from repro.core import BenchmarkConfig, XBench
from repro.core.indexes import indexes_for
from repro.engines import make_engines
from repro.engines.native import NativeEngine
from repro.errors import UnsupportedConfiguration, UnsupportedQuery
from repro.workload import bind_params
from repro.workload.queries import EXPERIMENT_QUERIES, QUERIES_BY_ID

class_key = sys.argv[1] if len(sys.argv) > 1 else "dcmd"
scale = sys.argv[2] if len(sys.argv) > 2 else "normal"

bench = XBench(BenchmarkConfig(scale_divisor=1000))
scenario = bench.corpus.scenario(class_key, scale)
print(f"scenario {scenario.name}: {scenario.db_class.label} at "
      f"{scale} scale -> {len(scenario.texts)} documents, "
      f"{scenario.bytes / 1024:.0f} KB "
      f"({scenario.db_class.size_parameter}={scenario.units})")
print(f"Table 3 indexes for {scenario.db_class.label}: "
      f"{', '.join(indexes_for(class_key)) or '(none)'}")

oracle: dict[str, list[str]] = {}
rows = []
for engine in sorted(make_engines(),
                     key=lambda e: not isinstance(e, NativeEngine)):
    try:
        engine.check_supported(scenario.db_class, scale)
    except UnsupportedConfiguration as exc:
        rows.append((engine.row_label, None, {}, str(exc)))
        continue
    stats = engine.timed_load(scenario.db_class, scenario.texts)
    engine.create_indexes(list(indexes_for(class_key)))
    timings = {}
    for qid in EXPERIMENT_QUERIES:
        params = bind_params(qid, class_key, scenario.units)
        try:
            outcome = engine.timed_execute(qid, params)
        except UnsupportedQuery:
            timings[qid] = (None, None)
            continue
        if isinstance(engine, NativeEngine):
            oracle[qid] = outcome.values
        correct = outcome.values == oracle.get(qid)
        timings[qid] = (outcome.seconds * 1000, correct)
    rows.append((engine.row_label, stats.seconds, timings, ""))

print(f"\n{'System':<12}{'load(s)':>9}", end="")
for qid in EXPERIMENT_QUERIES:
    print(f"{qid + '(ms)':>12}", end="")
print()
for label, load_seconds, timings, note in rows:
    if load_seconds is None:
        print(f"{label:<12}{'-':>9}  ({note[:58]}...)")
        continue
    print(f"{label:<12}{load_seconds:>9.3f}", end="")
    for qid in EXPERIMENT_QUERIES:
        millis, correct = timings.get(qid, (None, None))
        if millis is None:
            print(f"{'-':>12}", end="")
        else:
            star = "" if correct else "*"
            print(f"{millis:>11.2f}{star or ' '}", end="")
    print()
print("\n* = result set differs from the native oracle "
      "(relational mapping infidelity, see paper Section 3.1.3)")

for qid in EXPERIMENT_QUERIES:
    query = QUERIES_BY_ID[qid]
    print(f"\n{qid} ({query.functionality}): {query.description}")
    print(f"  XQuery: {query.text_for(class_key)}")
