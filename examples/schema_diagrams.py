#!/usr/bin/env python
"""Regenerate the paper's Figures 1-4: the four schema diagrams.

Mandatory element types print as ``[name]`` (solid boxes in the paper),
optional ones as ``(name)`` (dotted boxes); ``*`` marks repeatable types,
``~`` mixed content, ``@x`` attributes.

Run:  python examples/schema_diagrams.py
"""

from __future__ import annotations

from repro import render_all_figures
from repro.databases import CLASSES_BY_KEY

print(render_all_figures())

print("\nSchema complexity summary")
print("-------------------------")
print(f"{'class':<8}{'element types':>15}{'max depth':>12}")
for key, db_class in CLASSES_BY_KEY.items():
    schema = db_class.schema()
    print(f"{db_class.label:<8}{schema.element_count():>15}"
          f"{schema.max_depth():>12}")
