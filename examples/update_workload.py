#!/usr/bin/env python
"""Update workload: the paper's planned extension #2, across engines.

The first XBench version covers only queries and bulk loading; the paper
plans "update workloads" as future work.  This example runs a mixed
stream of document inserts, value updates (order status changes) and
document deletes against every engine that supports DC/MD, and prints
per-operation means — showing the architectural split: native trees
ingest cheaply, shredded rows update cheaply, Xcolumn rewrites whole
CLOBs.

Run:  python examples/update_workload.py
"""

from __future__ import annotations

from repro.core import BenchmarkConfig, XBench
from repro.core.indexes import indexes_for
from repro.engines import make_engines
from repro.engines.native import NativeEngine
from repro.workload import bind_params
from repro.workload.updates import make_update_stream, run_update_stream

CLASS_KEY = "dcmd"

bench = XBench(BenchmarkConfig(scale_divisor=1000))
scenario = bench.corpus.scenario(CLASS_KEY, "normal")
stream = make_update_stream(CLASS_KEY, scenario.units, count=40, seed=7)
mix = {}
for op in stream:
    mix[op.kind] = mix.get(op.kind, 0) + 1
print(f"database: {scenario.name} ({len(scenario.texts)} documents, "
      f"{scenario.bytes / 1024:.0f} KB)")
print(f"stream: {len(stream)} operations "
      + ", ".join(f"{kind}={count}" for kind, count in sorted(mix.items())))

print(f"\n{'System':<12}{'insert(ms)':>12}{'update(ms)':>12}"
      f"{'delete(ms)':>12}")
snapshots = {}
for engine in sorted(make_engines(),
                     key=lambda e: not isinstance(e, NativeEngine)):
    engine.timed_load(scenario.db_class, scenario.texts)
    engine.create_indexes(list(indexes_for(CLASS_KEY)))
    stats = run_update_stream(engine, CLASS_KEY, stream)
    print(f"{engine.row_label:<12}"
          f"{stats.mean_ms('insert'):>12.3f}"
          f"{stats.mean_ms('update'):>12.3f}"
          f"{stats.mean_ms('delete'):>12.3f}")
    # Snapshot a few point queries to confirm all engines converged.
    probes = []
    for probe_id in ("3", str(scenario.units + 1)):
        params = dict(bind_params("Q5", CLASS_KEY, scenario.units),
                      id=probe_id)
        probes.append(tuple(engine.execute("Q5", params)))
    snapshots[engine.row_label] = tuple(probes)

agree = len(set(snapshots.values())) == 1
print(f"\npost-stream state identical across engines: {agree}")
assert agree, snapshots
