#!/usr/bin/env python
"""Text-search workload (Q17/Q18): the IR side of XBench.

The paper highlights text search as the weak spot of every system tested
("none of the systems does well on Q17").  This example runs the
uni-gram (Q17) and phrase (Q18) searches over the text-centric classes on
every supported engine, showing both the times and the result
divergence caused by SQL Server's dropped mixed content.

Run:  python examples/text_search_workload.py
"""

from __future__ import annotations

from repro.core import BenchmarkConfig, XBench
from repro.core.indexes import indexes_for
from repro.engines import NativeEngine, make_engines
from repro.errors import UnsupportedConfiguration, UnsupportedQuery
from repro.workload import bind_params
from repro.workload.queries import QUERIES_BY_ID

bench = XBench(BenchmarkConfig(scale_divisor=1000))

for class_key in ("tcsd", "tcmd"):
    scenario = bench.corpus.scenario(class_key, "normal")
    label = scenario.db_class.label
    print(f"\n=== {label} ({scenario.bytes / 1024:.0f} KB) ===")

    engines = sorted(make_engines(),
                     key=lambda e: not isinstance(e, NativeEngine))
    loaded = []
    for engine in engines:
        try:
            engine.check_supported(scenario.db_class, "normal")
        except UnsupportedConfiguration:
            continue
        engine.timed_load(scenario.db_class, scenario.texts)
        engine.create_indexes(list(indexes_for(class_key)))
        loaded.append(engine)

    for qid in ("Q17", "Q18"):
        query = QUERIES_BY_ID[qid]
        if not query.applies_to(class_key):
            continue
        params = bind_params(qid, class_key, scenario.units)
        term = params.get("word") or params.get("phrase")
        print(f"\n{qid} ({query.functionality}), term {term!r}:")
        oracle = None
        for engine in loaded:
            try:
                outcome = engine.timed_execute(qid, params)
            except UnsupportedQuery:
                print(f"  {engine.row_label:<12} (no translation)")
                continue
            if isinstance(engine, NativeEngine):
                oracle = outcome.values
            note = ""
            if oracle is not None and outcome.values != oracle:
                note = (f"  ** {len(outcome.values)} hits vs oracle "
                        f"{len(oracle)} - mixed content dropped")
            print(f"  {engine.row_label:<12}{outcome.seconds * 1000:8.2f} ms"
                  f"  {len(outcome.values):>4} hits{note}")

print("\nNo engine has a full-text index (the paper excludes X-Hive's "
      "because the relational systems cannot match it); every search "
      "above is a scan, which is exactly Experiment 2's conclusion.")
