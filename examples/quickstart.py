#!/usr/bin/env python
"""Quickstart: generate an XBench database, query it, run a mini benchmark.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BenchmarkConfig, XBench, format_suite
from repro.databases import CLASSES_BY_KEY
from repro.engines import NativeEngine
from repro.xml.serializer import serialize

# ---------------------------------------------------------------------------
# 1. The XBench family: four database classes (paper Table 1).
# ---------------------------------------------------------------------------
print("XBench database classes")
print("-----------------------")
print(f"{'':8}{'SD':<28}{'MD'}")
print(f"{'TC':<8}{'Online dictionaries':<28}News corpus, digital libraries")
print(f"{'DC':<8}{'E-commerce catalogs':<28}Transactional data")
print()

# ---------------------------------------------------------------------------
# 2. Generate a small DC/SD catalog and inspect it.
# ---------------------------------------------------------------------------
dcsd = CLASSES_BY_KEY["dcsd"]
documents = dcsd.generate(units=50, seed=42)
catalog = documents[0]
print(f"generated {catalog.name}: "
      f"{len(serialize(catalog)) / 1024:.1f} KB, "
      f"{len(list(catalog.root_element.child_elements('item')))} items")

# ---------------------------------------------------------------------------
# 3. Load it into the native engine and run real XQuery.
# ---------------------------------------------------------------------------
engine = NativeEngine()
engine.timed_load(dcsd, [(doc.name, serialize(doc)) for doc in documents])

cheap_titles = engine.run_xquery(
    "for $i in /catalog/item "
    "where xs:decimal($i/pricing/suggested_retail_price) < 20 "
    "order by $i/title return string($i/title)")
print(f"\nitems under $20: {len(cheap_titles)}")
for title in cheap_titles[:5]:
    print(f"  - {title}")

count_by_subject = engine.run_xquery(
    "for $s in distinct-values(/catalog/item/subject) order by $s "
    "return concat($s, ': ', count(/catalog/item[subject = $s]))")
print("\nitems per subject:")
for line in count_by_subject:
    print(f"  {line}")

# ---------------------------------------------------------------------------
# 4. A one-scale benchmark run across all four engines.
# ---------------------------------------------------------------------------
print("\nRunning the benchmark suite at tiny scale "
      "(divisor 5000; see benchmarks/ for the real runs)...")
bench = XBench(BenchmarkConfig(scale_divisor=5000,
                               scale_names=("small",)))
suite = bench.run_suite()
print()
print(format_suite(suite, scale_names=("small",)))
