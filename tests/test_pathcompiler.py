"""Generic path compilation over the edge store: structural joins."""

from __future__ import annotations

import pytest

from repro.engines import NativeEngine
from repro.engines.edge import EdgeEngine
from repro.engines.pathcompiler import (
    UnsupportedPathError,
    compile_path,
    run_path,
)
from repro.errors import EngineError
from repro.workload import bind_params
from repro.xml.serializer import serialize


@pytest.fixture(scope="module")
def edge(small_corpora):
    corpus = small_corpora["tcsd"]
    engine = EdgeEngine()
    engine.timed_load(corpus["class"], corpus["texts"])
    return engine


class TestCompileValidation:
    @pytest.mark.parametrize("text", [
        "/dictionary/entry",
        "/dictionary/entry[@id = 'e1']",
        "/dictionary/entry[hw = $word]/pos",
        "//quote[location = 'bath']",
        "collection()/order[@id = $id]/*/ship_type",
        "/dictionary/entry[2]/@id",
        "/dictionary/entry[empty(etymology)]/hw/text()",
        "/dictionary/entry[exists(cross_reference)]",
        "/dictionary/entry[cross_reference]",
    ])
    def test_supported(self, text):
        compile_path(text)

    @pytest.mark.parametrize("text", [
        "for $x in /a return $x",          # FLWOR
        "1 + 1",                           # arithmetic
        "/a/b[price > 10]",                # non-equality comparison
        "/a/..",                           # reverse axis
        "/a[contains(b, 'x')]",            # unsupported function
        "doc('x.xml')/a",                  # doc() roots
        "/a/@id/b",                        # attribute mid-path
        "/a[b/c = '1']",                   # deep predicate operand
    ])
    def test_rejected(self, text):
        with pytest.raises(UnsupportedPathError):
            compile_path(text)


class TestExecution:
    def test_root_filter(self, edge):
        rows = run_path(edge.store, "/dictionary")
        assert len(rows) == 1 and rows[0]["tag"] == "dictionary"

    def test_wrong_root_name_empty(self, edge):
        assert run_path(edge.store, "/catalog") == []

    def test_child_chain(self, edge):
        rows = run_path(edge.store, "/dictionary/entry/hw")
        assert len(rows) == 30

    def test_results_in_document_order(self, edge):
        rows = run_path(edge.store, "/dictionary/entry")
        pres = [row["pre"] for row in rows]
        assert pres == sorted(pres)

    def test_descendant_shorthand(self, edge):
        direct = run_path(edge.store, "/dictionary/entry/definition"
                                      "/quote")
        via_descendant = run_path(edge.store, "//quote")
        assert [r["pre"] for r in direct] == \
            [r["pre"] for r in via_descendant]

    def test_attribute_values(self, edge):
        values = run_path(edge.store, "/dictionary/entry/@id")
        assert values[0] == "e1" and len(values) == 30

    def test_text_step(self, edge):
        texts = run_path(edge.store, "/dictionary/entry[1]/hw/text()")
        assert texts == ["word_1"]

    def test_positional_predicate(self, edge):
        rows = run_path(edge.store, "/dictionary/entry[3]")
        assert len(rows) == 1

    def test_attr_equality_with_variable(self, edge):
        rows = run_path(edge.store, "/dictionary/entry[@id = $e]",
                        {"e": "e5"})
        assert len(rows) == 1

    def test_unbound_variable_raises(self, edge):
        with pytest.raises(EngineError):
            run_path(edge.store, "/dictionary/entry[@id = $nope]")

    def test_child_value_equality(self, edge):
        rows = run_path(edge.store,
                        "/dictionary/entry[hw = 'word_2']")
        assert all(
            any(child["text"] == "word_2" for child in
                edge.store.children(row["pre"], "hw"))
            for row in rows)
        assert rows

    def test_empty_predicate(self, edge):
        missing = run_path(edge.store,
                           "/dictionary/entry[empty(etymology)]")
        present = run_path(edge.store,
                           "/dictionary/entry[exists(etymology)]")
        assert len(missing) + len(present) == 30
        assert missing and present

    def test_bare_existence_predicate(self, edge):
        bare = run_path(edge.store,
                        "/dictionary/entry[cross_reference]")
        explicit = run_path(edge.store,
                            "/dictionary/entry"
                            "[exists(cross_reference)]")
        assert [r["pre"] for r in bare] == [r["pre"] for r in explicit]

    def test_wildcard_step(self, edge):
        rows = run_path(edge.store, "/dictionary/entry[1]/*")
        tags = [row["tag"] for row in rows]
        assert "hw" in tags and "definition" in tags


class TestEngineFallback:
    """Workload path queries run on EdgeEngine with no handwritten plan."""

    @pytest.mark.parametrize("qid,key", [("Q1", "dcsd"), ("Q1", "dcmd"),
                                         ("Q9", "dcmd")])
    def test_fallback_matches_native(self, qid, key, small_corpora):
        corpus = small_corpora[key]
        from repro.core.indexes import indexes_for
        native = NativeEngine()
        native.timed_load(corpus["class"], corpus["texts"])
        native.create_indexes(list(indexes_for(key)))
        engine = EdgeEngine()
        engine.timed_load(corpus["class"], corpus["texts"])
        params = bind_params(qid, key, corpus["units"])
        assert engine.execute(qid, params) == \
            native.execute(qid, params)

    def test_run_path_serializes_elements(self, edge):
        (value,) = edge.run_path("/dictionary/entry[1]/hw")
        assert value == "<hw>word_1</hw>"
