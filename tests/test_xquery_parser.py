"""Parser tests: AST shapes, precedence, constructors, error cases."""

from __future__ import annotations

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import ast
from repro.xquery.parser import parse_query


class TestLiteralsAndPrimaries:
    def test_integer_literal(self):
        node = parse_query("42")
        assert isinstance(node, ast.Literal) and node.value == 42

    def test_decimal_literal(self):
        node = parse_query("4.5")
        assert node.value == 4.5

    def test_string_literal(self):
        node = parse_query("'hi'")
        assert node.value == "hi"

    def test_variable(self):
        node = parse_query("$x")
        assert isinstance(node, ast.VarRef) and node.name == "x"

    def test_context_item(self):
        assert isinstance(parse_query("."), ast.ContextItem)

    def test_empty_sequence(self):
        node = parse_query("()")
        assert isinstance(node, ast.Sequence) and node.items == []

    def test_comma_sequence(self):
        node = parse_query("1, 2, 3")
        assert isinstance(node, ast.Sequence) and len(node.items) == 3

    def test_parenthesized_single(self):
        assert isinstance(parse_query("(1)"), ast.Literal)


class TestOperators:
    def test_precedence_mul_over_add(self):
        node = parse_query("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_comparison_lower_than_arithmetic(self):
        node = parse_query("1 + 1 = 2")
        assert isinstance(node, ast.Comparison)

    def test_and_binds_tighter_than_or(self):
        node = parse_query("1 or 2 and 3")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_value_comparison(self):
        node = parse_query("$a eq $b")
        assert node.op == "eq"

    def test_node_is_comparison(self):
        node = parse_query("$a is $b")
        assert node.op == "is"

    def test_range(self):
        node = parse_query("1 to 5")
        assert isinstance(node, ast.RangeExpr)

    def test_unary_minus(self):
        node = parse_query("-3")
        assert isinstance(node, ast.UnaryOp) and node.op == "-"

    def test_union(self):
        node = parse_query("$a | $b")
        assert node.op == "union"

    def test_idiv_mod(self):
        node = parse_query("7 idiv 2 mod 3")
        assert node.op == "mod"

    def test_cast_as(self):
        node = parse_query("$x cast as xs:integer")
        assert isinstance(node, ast.CastExpr)
        assert node.type_name == "xs:integer"

    def test_xs_constructor_function(self):
        node = parse_query("xs:date('2003-01-01')")
        assert isinstance(node, ast.CastExpr)
        assert node.type_name == "xs:date"


class TestPaths:
    def test_absolute_path(self):
        node = parse_query("/a/b")
        assert isinstance(node, ast.PathExpr) and node.absolute
        assert [step.test for step in node.steps] == ["a", "b"]

    def test_descendant_shortcut(self):
        node = parse_query("//a")
        assert node.steps[0].axis == "descendant-or-self"

    def test_relative_path(self):
        node = parse_query("a/b/c")
        assert not node.absolute and len(node.steps) == 3

    def test_attribute_step(self):
        node = parse_query("a/@id")
        assert node.steps[1].axis == "attribute"
        assert node.steps[1].test == "id"

    def test_wildcard(self):
        node = parse_query("a/*")
        assert node.steps[1].test == "*"

    def test_text_kind_test(self):
        node = parse_query("a/text()")
        assert node.steps[1].test == "text()"

    def test_parent_step(self):
        node = parse_query("a/..")
        assert node.steps[1].axis == "parent"

    def test_explicit_axis(self):
        node = parse_query("descendant::b")
        assert node.steps[0].axis == "descendant"

    def test_predicates(self):
        node = parse_query("a[1][@x = 'y']")
        assert len(node.steps[0].predicates) == 2

    def test_variable_rooted_path(self):
        node = parse_query("$doc/a")
        assert isinstance(node.steps[0], ast.VarRef)

    def test_filter_on_parenthesized(self):
        node = parse_query("($a/b)[1]")
        assert isinstance(node, ast.Filter)

    def test_function_step(self):
        node = parse_query("doc('x')/a")
        assert isinstance(node.steps[0], ast.FunctionCall)


class TestFLWOR:
    def test_simple_for(self):
        node = parse_query("for $x in (1,2) return $x")
        assert isinstance(node, ast.FLWOR)
        assert isinstance(node.clauses[0], ast.ForClause)

    def test_let(self):
        node = parse_query("let $x := 1 return $x")
        assert isinstance(node.clauses[0], ast.LetClause)

    def test_for_at_position(self):
        node = parse_query("for $x at $i in (1,2) return $i")
        assert node.clauses[0].position_var == "i"

    def test_multiple_bindings(self):
        node = parse_query("for $a in 1, $b in 2 return $a")
        assert len(node.clauses) == 2

    def test_where(self):
        node = parse_query("for $x in (1,2) where $x = 1 return $x")
        assert node.where is not None

    def test_order_by_modifiers(self):
        node = parse_query(
            "for $x in (1,2) order by $x descending empty greatest "
            "return $x")
        spec = node.order_by[0]
        assert spec.descending and not spec.empty_least

    def test_stable_order_by(self):
        node = parse_query("for $x in (1,2) stable order by $x return $x")
        assert node.order_by

    def test_interleaved_where_for(self):
        node = parse_query(
            "for $a in (1,2) where $a = 1 for $b in (3,4) "
            "where $b = 3 return $b")
        kinds = [type(clause).__name__ for clause in node.clauses]
        assert kinds == ["ForClause", "WhereClause", "ForClause"]
        assert node.where is not None

    def test_name_for_as_path_still_works(self):
        # 'for' not followed by '$' is an ordinary name test.
        node = parse_query("for")
        assert isinstance(node, ast.PathExpr) or \
            isinstance(node, ast.AxisStep)


class TestQuantifiedAndIf:
    def test_some(self):
        node = parse_query("some $x in (1,2) satisfies $x = 2")
        assert node.quantifier == "some"

    def test_every_multi_binding(self):
        node = parse_query(
            "every $x in (1,2), $y in (3,4) satisfies $x < $y")
        assert len(node.bindings) == 2

    def test_if_then_else(self):
        node = parse_query("if (1) then 'a' else 'b'")
        assert isinstance(node, ast.IfExpr)

    def test_if_requires_else(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("if (1) then 'a'")


class TestConstructors:
    def test_empty_element(self):
        node = parse_query("<a/>")
        assert isinstance(node, ast.ElementConstructor)
        assert node.tag == "a" and node.content == []

    def test_fixed_content(self):
        node = parse_query("<a>text</a>")
        assert node.content == ["text"]

    def test_enclosed_expression(self):
        node = parse_query("<a>{ 1 + 1 }</a>")
        assert isinstance(node.content[0], ast.BinaryOp)

    def test_nested_constructor(self):
        node = parse_query("<a><b>x</b></a>")
        assert isinstance(node.content[0], ast.ElementConstructor)

    def test_attribute_with_enclosed_expr(self):
        node = parse_query('<a id="{ $x }"/>')
        name, parts = node.attributes[0]
        assert name == "id"
        assert isinstance(parts[0], ast.VarRef)

    def test_mixed_fixed_and_enclosed_attr(self):
        node = parse_query('<a id="v{ $x }w"/>')
        __, parts = node.attributes[0]
        assert parts[0] == "v" and parts[2] == "w"

    def test_brace_escapes(self):
        node = parse_query("<a>{{literal}}</a>")
        assert node.content == ["{literal}"]

    def test_entity_in_content(self):
        node = parse_query("<a>&amp;</a>")
        assert node.content == ["&"]

    def test_mismatched_close_tag(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("<a></b>")

    def test_constructor_inside_flwor(self):
        node = parse_query(
            "for $x in (1,2) return <r v=\"{ $x }\">{ $x }</r>")
        assert isinstance(node.return_expr, ast.ElementConstructor)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "for $x in",                 # incomplete FLWOR
        "1 +",                       # dangling operator
        "(1",                        # unclosed paren
        "a[1",                       # unclosed predicate
        "some $x in 1",              # missing satisfies
        "$",                         # bare dollar
        "1 2",                       # junk after query
        "<a>{1}</a>}",               # junk after constructor
    ])
    def test_syntax_error(self, bad):
        with pytest.raises(XQuerySyntaxError):
            parse_query(bad)
