"""DTD / XSD emitter tests."""

from __future__ import annotations

import pytest

from repro.databases import CLASSES_BY_KEY
from repro.xml.parser import parse_document
from repro.xml.schema import SchemaElement
from repro.xml.schema_export import to_dtd, to_xsd


def library_schema() -> SchemaElement:
    root = SchemaElement("lib")
    book = root.child("book", repeated=True)
    book.attributes.append("id")
    book.child("title")
    book.child("year", optional=True)
    note = book.child("note", optional=True, repeated=True, mixed=True)
    note.child("em", optional=True, repeated=True)
    return root


class TestDtd:
    def test_element_declarations(self):
        dtd = to_dtd(library_schema())
        assert "<!ELEMENT lib (book+)>" in dtd
        assert "<!ELEMENT title (#PCDATA)>" in dtd

    def test_occurrence_markers(self):
        dtd = to_dtd(library_schema())
        assert "(title, year?, note*)" in dtd

    def test_attribute_declarations(self):
        dtd = to_dtd(library_schema())
        assert "<!ATTLIST book id CDATA #REQUIRED>" in dtd

    def test_mixed_content_model(self):
        dtd = to_dtd(library_schema())
        assert "<!ELEMENT note (#PCDATA | em)*>" in dtd

    def test_recursive_type_terminates(self):
        schema = CLASSES_BY_KEY["tcmd"].schema()
        dtd = to_dtd(schema)
        assert dtd.count("<!ELEMENT sec ") == 1
        assert "sec*" in dtd

    def test_every_name_declared_exactly_once(self):
        """DTD element names are global: one declaration per name even
        when several schema types share it."""
        for db_class in CLASSES_BY_KEY.values():
            dtd = to_dtd(db_class.schema())
            names = {node.name for node in db_class.schema().walk()}
            for name in names:
                assert dtd.count(f"<!ELEMENT {name} ") == 1, \
                    (db_class.key, name)

    def test_conflicting_models_noted(self):
        # DC/SD's 'name' appears with both structured and text content.
        dtd = to_dtd(CLASSES_BY_KEY["dcsd"].schema())
        assert "name also occurs with content" in dtd


class TestXsd:
    def test_well_formed_xml(self):
        for db_class in CLASSES_BY_KEY.values():
            xsd = to_xsd(db_class.schema())
            document = parse_document(xsd)
            assert document.root_element.tag == "xs:schema"

    def test_min_max_occurs(self):
        xsd = to_xsd(library_schema())
        assert 'name="book" minOccurs="1" maxOccurs="unbounded"' in xsd
        assert 'name="year" type="xs:string" minOccurs="0"' in xsd

    def test_attribute_declared(self):
        xsd = to_xsd(library_schema())
        assert '<xs:attribute name="id" type="xs:string"' in xsd

    def test_mixed_flag(self):
        xsd = to_xsd(library_schema())
        assert '<xs:complexType mixed="true">' in xsd

    def test_recursive_type_uses_ref(self):
        xsd = to_xsd(CLASSES_BY_KEY["tcmd"].schema())
        assert 'ref="sec"' in xsd
        assert xsd.count('<xs:element name="sec"') == 1

    def test_leaf_is_simple_string(self):
        xsd = to_xsd(library_schema())
        assert 'name="title" type="xs:string"' in xsd


class TestCliSchema:
    @pytest.mark.parametrize("fmt,marker", [
        ("diagram", "[catalog]"),
        ("dtd", "<!ELEMENT catalog"),
        ("xsd", "<xs:schema"),
    ])
    def test_formats(self, fmt, marker, capsys):
        from repro.cli import main
        assert main(["schema", "dcsd", "--format", fmt]) == 0
        assert marker in capsys.readouterr().out
