"""Report-layer tests: cell formatting, shape summary, table selection."""

from __future__ import annotations

import pytest

from repro.core.benchmark import Cell, ExperimentResult, SuiteResult
from repro.core.report import (
    format_cell,
    format_suite,
    format_table,
    shape_summary,
)


def make_result(unit: str = "ms") -> ExperimentResult:
    result = ExperimentResult("Test Table", unit=unit)
    result.cells[("X-Hive", "dcmd", "small")] = Cell(seconds=0.0123,
                                                     correct=True)
    result.cells[("SQL Server", "dcmd", "small")] = Cell(seconds=0.5,
                                                         correct=False)
    result.cells[("Xcolumn", "dcmd", "small")] = Cell()   # unsupported
    return result


class TestCellFormatting:
    def test_milliseconds(self):
        result = make_result("ms")
        assert format_cell(result, "X-Hive", "dcmd", "small") == "12.3"

    def test_seconds(self):
        result = make_result("s")
        assert format_cell(result, "X-Hive", "dcmd", "small") == "0.01"

    def test_incorrect_result_starred(self):
        result = make_result("ms")
        assert format_cell(result, "SQL Server", "dcmd",
                           "small").endswith("*")

    def test_unsupported_dash(self):
        result = make_result("ms")
        assert format_cell(result, "Xcolumn", "dcmd", "small") == "-"

    def test_missing_cell_dash(self):
        result = make_result("ms")
        assert format_cell(result, "X-Hive", "tcsd", "large") == "-"

    def test_large_values_no_decimals(self):
        result = ExperimentResult("T", unit="ms")
        result.cells[("X-Hive", "dcmd", "small")] = Cell(seconds=1.5)
        assert format_cell(result, "X-Hive", "dcmd", "small") == "1500"


class TestTableLayout:
    def test_only_measured_classes_shown(self):
        result = make_result()
        text = format_table(result, scale_names=("small",))
        assert "DC/MD" in text
        assert "TC/SD" not in text

    def test_row_order_matches_paper(self):
        result = make_result()
        text = format_table(result, scale_names=("small",))
        lines = text.splitlines()
        rows = [line.split()[0] for line in lines[3:7]]
        assert rows == ["Xcolumn", "Xcollection", "SQL", "X-Hive"]

    def test_legend_present(self):
        text = format_table(make_result(), scale_names=("small",))
        assert "configuration not supported" in text

    def test_suite_orders_tables_like_paper(self):
        suite = SuiteResult(load=make_result("s"))
        for qid in ("Q14", "Q5", "Q17", "Q8", "Q12"):
            suite.queries[qid] = make_result()
        text = format_suite(suite, scale_names=("small",))
        # Paper order after the load table: Q5, Q12, Q17, Q8, Q14.
        positions = [text.index(title) for title in
                     ("Test Table (in Seconds)",)]
        assert positions[0] == 0


class TestShapeSummary:
    def test_statements_generated_when_cells_exist(self):
        load = ExperimentResult("Table 4", unit="s")
        load.cells[("X-Hive", "dcmd", "large")] = Cell(seconds=1.0)
        load.cells[("SQL Server", "dcmd", "large")] = Cell(seconds=2.0)
        suite = SuiteResult(load=load)
        statements = shape_summary(suite)
        assert any("native faster" in s for s in statements)

    def test_empty_suite_no_statements(self):
        suite = SuiteResult(load=ExperimentResult("T", unit="s"))
        assert shape_summary(suite) == []
