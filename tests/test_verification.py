"""Verification-matrix tests."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, XBench
from repro.core.verification import verify_scenario


@pytest.fixture(scope="module")
def reports():
    bench = XBench(BenchmarkConfig(scale_divisor=1000))
    return {key: verify_scenario(bench, key, "small")
            for key in ("dcsd", "dcmd", "tcsd", "tcmd")}


class TestVerification:
    def test_native_always_ok(self, reports):
        for report in reports.values():
            for qid in report.query_ids:
                assert report.status("X-Hive", qid) == "ok"

    def test_unsupported_engine_all_dashes(self, reports):
        report = reports["dcsd"]
        for qid in report.query_ids:
            assert report.status("Xcolumn", qid) == "-"

    def test_untranslated_queries_dashes(self, reports):
        # Q15 (empty vs. missing contact) is genuinely untranslatable:
        # shredded columns cannot represent an empty container.
        report = reports["tcmd"]
        assert report.status("SQL Server", "Q15") == "-"
        assert report.status("Xcollection", "Q15") == "-"

    def test_experiment_queries_present_everywhere(self, reports):
        for key, report in reports.items():
            for qid in ("Q5", "Q8", "Q12", "Q14", "Q17"):
                assert qid in report.query_ids
                assert report.status("SQL Server", qid) in ("ok",
                                                            "differs")

    def test_mismatches_only_on_known_infidelities(self, reports):
        allowed = {
            ("tcsd", "SQL Server", "Q8"),
            ("tcsd", "SQL Server", "Q12"),
            ("tcsd", "SQL Server", "Q17"),
            ("tcsd", "Xcollection", "Q8"),
            ("tcsd", "Xcollection", "Q12"),
            ("tcmd", "SQL Server", "Q6"),
            ("tcmd", "SQL Server", "Q17"),
            ("tcmd", "SQL Server", "Q18"),
        }
        for key, report in reports.items():
            for label, qid in report.mismatches():
                assert (key, label, qid) in allowed, (key, label, qid)

    def test_format_renders(self, reports):
        text = reports["dcmd"].format()
        assert "Verification matrix" in text
        assert "X-Hive" in text and "Q19" in text

    def test_sql_server_mixed_content_flagged_at_scale(self):
        """At a scale where word_1 entries carry inline markup, the
        SQL Server TC/SD cells must show 'differs'."""
        bench = XBench(BenchmarkConfig(scale_divisor=500))
        report = verify_scenario(bench, "tcsd", "normal")
        assert report.status("SQL Server", "Q17") == "differs"
        assert report.status("X-Hive", "Q17") == "ok"
