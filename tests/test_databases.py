"""Database-class tests: generation, conformance, scaling, planted words."""

from __future__ import annotations

import pytest

from repro.databases import (
    ALL_CLASSES,
    CLASSES_BY_KEY,
    LARGE,
    NORMAL,
    PAPER_SCALES,
    SMALL,
    Scale,
)
from repro.xml.schema import conforms
from repro.xml.serializer import serialize


class TestScaleModel:
    def test_paper_sizes(self):
        assert SMALL.paper_bytes == 10 * 1024 * 1024
        assert NORMAL.paper_bytes == 100 * 1024 * 1024
        assert LARGE.paper_bytes == 1024 * 1024 * 1024

    def test_ratios_preserved_by_divisor(self):
        ratio = NORMAL.budget(100) / SMALL.budget(100)
        assert abs(ratio - 10.0) < 0.01

    def test_budget_floor(self):
        assert Scale("tiny", 1).budget(1000) == 10_000

    def test_four_scales(self):
        assert [scale.name for scale in PAPER_SCALES] == \
            ["small", "normal", "large", "huge"]


class TestClassRegistry:
    def test_four_classes_in_paper_order(self):
        assert [c.label for c in ALL_CLASSES] == \
            ["DC/SD", "DC/MD", "TC/SD", "TC/MD"]

    def test_keys(self):
        assert set(CLASSES_BY_KEY) == {"dcsd", "dcmd", "tcsd", "tcmd"}

    def test_single_document_flags(self):
        assert CLASSES_BY_KEY["dcsd"].single_document
        assert CLASSES_BY_KEY["tcsd"].single_document
        assert not CLASSES_BY_KEY["dcmd"].single_document
        assert not CLASSES_BY_KEY["tcmd"].single_document

    def test_paper_default_units(self):
        assert CLASSES_BY_KEY["tcsd"].default_units == 7333
        assert CLASSES_BY_KEY["tcmd"].default_units == 266

    def test_size_parameters(self):
        assert CLASSES_BY_KEY["tcsd"].size_parameter == "entry_num"
        assert CLASSES_BY_KEY["tcmd"].size_parameter == "article_num"


@pytest.mark.parametrize("key", ["dcsd", "dcmd", "tcsd", "tcmd"])
class TestGeneration:
    def test_documents_conform_to_schema(self, key, small_corpora):
        corpus = small_corpora[key]
        schemas = {schema.name: schema
                   for schema in corpus["class"].schemas()}
        for document in corpus["documents"]:
            schema = schemas.get(document.root_element.tag)
            assert schema is not None, document.name
            assert conforms(document, schema) == []

    def test_generation_deterministic(self, key):
        db_class = CLASSES_BY_KEY[key]
        first = db_class.generate(5, seed=3)
        second = db_class.generate(5, seed=3)
        assert [serialize(d) for d in first] == \
            [serialize(d) for d in second]

    def test_single_vs_multi_document_count(self, key, small_corpora):
        corpus = small_corpora[key]
        if corpus["class"].single_document:
            assert len(corpus["documents"]) == 1
        else:
            assert len(corpus["documents"]) > 1

    def test_units_scale_size(self, key):
        db_class = CLASSES_BY_KEY[key]
        small = sum(len(serialize(d)) for d in db_class.generate(5, seed=2))
        big = sum(len(serialize(d)) for d in db_class.generate(25, seed=2))
        assert big > 2 * small

    def test_calibration_hits_budget(self, key):
        db_class = CLASSES_BY_KEY[key]
        budget = 80_000
        units = db_class.units_for_budget(budget, seed=2)
        actual = sum(len(serialize(d))
                     for d in db_class.generate(units, seed=2))
        assert budget / 4 < actual < budget * 4


class TestTCSDSpecifics:
    def test_single_dictionary_document(self, small_corpora):
        (document,) = small_corpora["tcsd"]["documents"]
        assert document.name == "dictionary.xml"
        assert document.root_element.tag == "dictionary"

    def test_entry_count_matches_units(self, small_corpora):
        (document,) = small_corpora["tcsd"]["documents"]
        entries = list(document.root_element.child_elements("entry"))
        assert len(entries) == 30

    def test_planted_headwords(self, small_corpora):
        (document,) = small_corpora["tcsd"]["documents"]
        headwords = [e.first_child("hw").text_content()
                     for e in document.root_element.child_elements("entry")]
        assert "word_1" in headwords
        assert "word_2" in headwords

    def test_cross_references_resolve(self, small_corpora):
        (document,) = small_corpora["tcsd"]["documents"]
        ids = {e.get("id")
               for e in document.root_element.child_elements("entry")}
        for ref in document.root_element.descendant_elements(
                "cross_reference"):
            assert ref.get("target") in ids

    def test_mixed_content_qt(self, small_corpora):
        (document,) = small_corpora["tcsd"]["documents"]
        qts = list(document.root_element.descendant_elements("qt"))
        assert qts, "dictionary should contain quotations"
        mixed = [qt for qt in qts
                 if qt.has_element_children() and qt.text_content()]
        assert mixed, "some qt elements should have mixed content"


class TestTCMDSpecifics:
    def test_document_names(self, small_corpora):
        names = [d.name for d in small_corpora["tcmd"]["documents"]]
        assert names[0] == "article1.xml"
        assert len(names) == 30

    def test_first_section_is_introduction(self, small_corpora):
        document = small_corpora["tcmd"]["documents"][0]
        heading = document.root_element.find("body/sec/heading")
        assert heading.text_content() == "Introduction"

    def test_some_articles_have_nested_sections(self, small_corpora):
        nested = 0
        for document in small_corpora["tcmd"]["documents"]:
            for sec in document.root_element.descendant_elements("sec"):
                if any(child.tag == "sec"
                       for child in sec.child_elements()):
                    nested += 1
        assert nested > 0, "recursive sec elements expected"

    def test_sec_ids_unique(self, small_corpora):
        seen = set()
        for document in small_corpora["tcmd"]["documents"]:
            for sec in document.root_element.descendant_elements("sec"):
                identifier = sec.get("id")
                assert identifier not in seen
                seen.add(identifier)

    def test_some_empty_contacts(self, small_corpora):
        empty = 0
        for document in small_corpora["tcmd"]["documents"]:
            for contact in document.root_element.descendant_elements(
                    "contact"):
                if not contact.children:
                    empty += 1
        assert empty > 0, "Q15 needs empty contact elements"

    def test_heavy_tailed_sizes(self, small_corpora):
        sizes = [len(text) for __, text in small_corpora["tcmd"]["texts"]]
        assert max(sizes) > 3 * min(sizes)


class TestDCSpecifics:
    def test_catalog_root(self, small_corpora):
        (document,) = small_corpora["dcsd"]["documents"]
        assert document.root_element.tag == "catalog"
        assert len(list(document.root_element.child_elements("item"))) == 30

    def test_dcmd_has_flat_side_documents(self, small_corpora):
        names = {d.name for d in small_corpora["dcmd"]["documents"]}
        assert "customer.xml" in names
        assert "order1.xml" in names

    def test_dcmd_schemas_cover_all_roots(self, small_corpora):
        corpus = small_corpora["dcmd"]
        roots = {d.root_element.tag for d in corpus["documents"]}
        schema_roots = {s.name for s in corpus["class"].schemas()}
        assert roots <= schema_roots

    def test_dc_less_texty_than_tc(self, small_corpora):
        from repro.stats import analyze_corpus
        dc = analyze_corpus(small_corpora["dcsd"]["documents"])
        tc = analyze_corpus(small_corpora["tcsd"]["documents"])
        assert tc.text_ratio() > dc.text_ratio()
