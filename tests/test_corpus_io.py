"""File-backed corpus tests."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, XBench
from repro.core.corpus_io import FileCorpus, write_corpus
from repro.engines import NativeEngine, SqlServerEngine


class TestFileCorpus:
    def test_write_and_iterate(self, tmp_path):
        corpus = write_corpus([("a.xml", "<a/>"), ("b.xml", "<b/>")],
                              tmp_path)
        assert len(corpus) == 2
        assert list(corpus) == [("a.xml", "<a/>"), ("b.xml", "<b/>")]

    def test_indexing_and_slicing(self, tmp_path):
        corpus = write_corpus([("a.xml", "<a/>"), ("b.xml", "<b/>")],
                              tmp_path)
        assert corpus[1] == ("b.xml", "<b/>")
        assert corpus[0:1] == [("a.xml", "<a/>")]

    def test_total_bytes_from_metadata(self, tmp_path):
        corpus = write_corpus([("a.xml", "<a/>" * 10)], tmp_path)
        assert corpus.total_bytes() == 40

    def test_paths_exist(self, tmp_path):
        corpus = write_corpus([("x.xml", "<x/>")], tmp_path)
        assert corpus.paths[0].exists()

    def test_lazy_reads_current_file_content(self, tmp_path):
        corpus = write_corpus([("a.xml", "<a/>")], tmp_path)
        (tmp_path / "a.xml").write_text("<changed/>", encoding="utf-8")
        assert list(corpus) == [("a.xml", "<changed/>")]


class TestFileBackedBenchmark:
    def test_scenario_written_to_disk(self, tmp_path):
        config = BenchmarkConfig(scale_divisor=10_000,
                                 corpus_dir=str(tmp_path))
        bench = XBench(config)
        scenario = bench.corpus.scenario("dcmd", "small")
        assert isinstance(scenario.texts, FileCorpus)
        assert (tmp_path / "dcmd_small" / "order1.xml").exists()
        assert scenario.bytes > 0

    def test_engines_load_from_files(self, tmp_path):
        config = BenchmarkConfig(scale_divisor=10_000,
                                 corpus_dir=str(tmp_path))
        bench = XBench(config)
        scenario = bench.corpus.scenario("dcmd", "small")
        for factory in (NativeEngine, SqlServerEngine):
            engine = factory()
            stats = engine.timed_load(scenario.db_class, scenario.texts)
            assert stats.documents == len(scenario.texts)
            assert stats.bytes == scenario.bytes
            assert engine.execute(
                "Q8", {"id": "1"})      # loaded data is queryable

    def test_file_backed_results_match_in_memory(self, tmp_path):
        memory_bench = XBench(BenchmarkConfig(scale_divisor=10_000))
        disk_bench = XBench(BenchmarkConfig(scale_divisor=10_000,
                                            corpus_dir=str(tmp_path)))
        for bench in (memory_bench, disk_bench):
            scenario = bench.corpus.scenario("tcmd", "small")
            engine = NativeEngine()
            engine.timed_load(scenario.db_class, scenario.texts)
        memory_docs = [name for name, __ in
                       memory_bench.corpus.scenario("tcmd",
                                                    "small").texts]
        disk_docs = [name for name, __ in
                     disk_bench.corpus.scenario("tcmd", "small").texts]
        assert memory_docs == disk_docs
