"""Document model tests: navigation, mutation, ordering, string values."""

from __future__ import annotations

import pytest

from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Text,
    document_order,
)


def build_tree() -> Document:
    root = Element("root")
    first = root.append_element("a", {"x": "1"}, text="alpha")
    second = root.append_element("b")
    second.append_element("c", text="gamma")
    document = Document(root, name="t.xml")
    document.refresh_order()
    return document


class TestElementBasics:
    def test_append_sets_parent(self):
        parent = Element("p")
        child = Element("c")
        parent.append(child)
        assert child.parent is parent

    def test_append_text_creates_text_node(self):
        element = Element("e")
        node = element.append_text("hi")
        assert isinstance(node, Text)
        assert node.parent is element

    def test_append_element_with_text(self):
        element = Element("e")
        child = element.append_element("c", {"k": "v"}, text="t")
        assert child.get("k") == "v"
        assert child.text_content() == "t"

    def test_set_attribute_stringifies(self):
        element = Element("e")
        element.set_attribute("n", 42)
        assert element.get("n") == "42"

    def test_get_returns_default_for_missing(self):
        assert Element("e").get("nope", "dflt") == "dflt"

    def test_remove_detaches_child(self):
        parent = Element("p")
        child = parent.append_element("c")
        parent.remove(child)
        assert child.parent is None
        assert not parent.children

    def test_constructor_with_children(self):
        element = Element("e", children=[Element("a"), Text("x")])
        assert len(element.children) == 2
        assert all(child.parent is element for child in element.children)


class TestNavigation:
    def test_child_elements_filters_by_tag(self):
        doc = build_tree()
        assert [e.tag for e in doc.root_element.child_elements("a")] == ["a"]

    def test_child_elements_unfiltered(self):
        doc = build_tree()
        assert [e.tag for e in doc.root_element.child_elements()] == \
            ["a", "b"]

    def test_first_child(self):
        doc = build_tree()
        assert doc.root_element.first_child("b").tag == "b"
        assert doc.root_element.first_child("zzz") is None

    def test_find_path(self):
        doc = build_tree()
        assert doc.root_element.find("b/c").text_content() == "gamma"

    def test_find_all_multiple(self, catalog_doc):
        items = list(catalog_doc.root_element.find_all("item"))
        assert len(items) == 3

    def test_find_all_deep_path(self, catalog_doc):
        names = list(catalog_doc.root_element.find_all(
            "item/authors/author/name"))
        assert len(names) == 4

    def test_descendants_document_order(self):
        doc = build_tree()
        tags = [node.tag for node in doc.root_element.descendants()
                if isinstance(node, Element)]
        assert tags == ["a", "b", "c"]

    def test_descendant_elements_by_tag(self, catalog_doc):
        assert len(list(
            catalog_doc.root_element.descendant_elements("author"))) == 4

    def test_ancestors(self):
        doc = build_tree()
        c = doc.root_element.find("b/c")
        tags = [getattr(node, "tag", "#doc") for node in c.ancestors()]
        assert tags == ["b", "root", "#doc"]

    def test_root(self):
        doc = build_tree()
        c = doc.root_element.find("b/c")
        assert c.root() is doc

    def test_document_property(self):
        doc = build_tree()
        c = doc.root_element.find("b/c")
        assert c.document is doc

    def test_document_property_detached(self):
        assert Element("loose").document is None


class TestStringValues:
    def test_text_content_concatenates(self):
        element = Element("e")
        element.append_text("a")
        element.append_element("x", text="b")
        element.append_text("c")
        assert element.text_content() == "abc"

    def test_attribute_string_value(self):
        assert Attribute("n", "v").string_value() == "v"

    def test_comment_string_value(self):
        assert Comment("note").string_value() == "note"

    def test_document_string_value(self):
        doc = build_tree()
        assert doc.string_value() == "alphagamma"

    def test_has_element_children(self):
        doc = build_tree()
        assert doc.root_element.has_element_children()
        assert not doc.root_element.find("a").has_element_children()


class TestDocumentOrder:
    def test_refresh_order_assigns_monotone_keys(self):
        doc = build_tree()
        keys = [node.order_key for node in doc.root_element.descendants()]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_attribute_ordered_after_owner_before_children(self):
        doc = build_tree()
        a = doc.root_element.find("a")
        attr = a.attributes["x"]
        assert a.order_key < attr.order_key
        assert attr.order_key < a.children[0].order_key

    def test_document_order_sorts(self):
        doc = build_tree()
        a = doc.root_element.find("a")
        c = doc.root_element.find("b/c")
        assert document_order([c, a]) == [a, c]

    def test_document_order_dedupes_by_identity(self):
        doc = build_tree()
        a = doc.root_element.find("a")
        assert document_order([a, a, a]) == [a]

    def test_cross_document_order_is_creation_order(self):
        first = build_tree()
        second = build_tree()
        nodes = [second.root_element, first.root_element]
        ordered = document_order(nodes)
        assert ordered[0].root() is first

    def test_serial_monotonic(self):
        first = Document(Element("a"))
        second = Document(Element("b"))
        assert second.serial > first.serial

    def test_refresh_order_counts_nodes(self):
        doc = build_tree()
        # document + root + a + @x + text + b + c + text = 8
        assert doc.refresh_order() == 8


class TestDocument:
    def test_root_element(self):
        doc = build_tree()
        assert doc.root_element.tag == "root"

    def test_root_element_missing_raises(self):
        with pytest.raises(ValueError):
            Document().root_element

    def test_name(self):
        assert build_tree().name == "t.xml"

    def test_comment_children_allowed(self):
        doc = Document()
        doc.append(Comment("hello"))
        doc.append(Element("r"))
        assert doc.root_element.tag == "r"
