"""Statistics analysis and distribution-fitting tests."""

from __future__ import annotations

import random

import pytest

from repro.stats import (
    analyze_corpus,
    best_fit,
    fit_exponential,
    fit_normal,
    fit_uniform,
    fit_zipf,
    format_table2,
)
from repro.xml.parser import parse_document


@pytest.fixture(scope="module")
def tc_stats(small_corpora):
    return analyze_corpus(small_corpora["tcsd"]["documents"],
                          source="dictionary")


class TestAnalyzer:
    def test_file_counts(self, small_corpora):
        stats = analyze_corpus(small_corpora["tcmd"]["documents"],
                               source="articles")
        assert stats.files == 30
        assert len(stats.file_sizes) == 30

    def test_element_counts(self, tc_stats):
        assert tc_stats.element_counts["entry"] == 30
        assert tc_stats.element_counts["hw"] == 30

    def test_child_occurrence_samples(self, tc_stats):
        samples = tc_stats.occurrence_samples("dictionary", "entry")
        assert samples == [30]
        definition_counts = tc_stats.occurrence_samples("entry",
                                                        "definition")
        assert len(definition_counts) == 30
        assert all(count >= 1 for count in definition_counts)

    def test_parent_child_pairs(self, tc_stats):
        assert ("entry", "hw") in tc_stats.parent_child_pairs()

    def test_attribute_counts(self, tc_stats):
        assert tc_stats.attribute_counts["id"] == 30

    def test_max_depth(self, tc_stats):
        assert tc_stats.max_depth >= 5

    def test_mixed_tags_detected(self, tc_stats):
        assert "qt" in tc_stats.mixed_tags

    def test_text_ratio_bounds(self, tc_stats):
        assert 0.0 < tc_stats.text_ratio() <= 1.0

    def test_file_size_range(self):
        doc_small = parse_document("<a/>", name="s")
        doc_big = parse_document("<a>" + "x" * 500 + "</a>", name="b")
        stats = analyze_corpus([doc_small, doc_big])
        low, high = stats.file_size_range()
        assert low < high

    def test_empty_corpus(self):
        stats = analyze_corpus([])
        assert stats.file_size_range() == (0, 0)
        assert stats.text_ratio() == 0.0

    def test_explicit_sizes_honoured(self):
        doc = parse_document("<a/>")
        stats = analyze_corpus([doc], sizes=[1234])
        assert stats.total_bytes == 1234

    def test_format_table2(self, small_corpora):
        rows = [analyze_corpus(small_corpora["tcsd"]["documents"],
                               source="dictionary"),
                analyze_corpus(small_corpora["tcmd"]["documents"],
                               source="articles")]
        table = format_table2(rows)
        assert "dictionary" in table and "articles" in table
        assert "No. files" in table


class TestFitting:
    def test_normal_recovered(self):
        rng = random.Random(1)
        samples = [rng.gauss(50, 5) for __ in range(500)]
        fit = best_fit(samples)
        assert fit.family == "normal"
        assert abs(fit.params[0] - 50) < 1.5

    def test_exponential_recovered(self):
        rng = random.Random(2)
        samples = [rng.expovariate(1 / 4.0) for __ in range(500)]
        fit = best_fit(samples)
        assert fit.family == "exponential"
        assert abs(fit.params[0] - 4.0) < 1.0

    def test_uniform_recovered(self):
        rng = random.Random(3)
        samples = [rng.uniform(10, 20) for __ in range(500)]
        assert best_fit(samples).family == "uniform"

    def test_zipf_exponent_estimated(self):
        frequencies = [int(1000 / rank) for rank in range(1, 50)]
        fit = fit_zipf(frequencies)
        assert abs(fit.params[0] - 1.0) < 0.1

    def test_zipf_degenerate(self):
        assert fit_zipf([5]).score == float("inf")

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            best_fit([])

    def test_fit_repr(self):
        fit = fit_normal([1.0, 2.0, 3.0])
        assert "normal(" in str(fit)

    def test_individual_fits_scored(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        for fit in (fit_normal(samples), fit_uniform(samples),
                    fit_exponential(samples)):
            assert 0.0 <= fit.score <= 1.0

    def test_generator_roundtrip_occurrences(self, small_corpora):
        # The TC/SD quote-per-definition counts come from a clamped
        # Normal(2.0, 1.5); the analyzer + fitter should prefer a
        # normal-ish fit over exponential for them.
        stats = analyze_corpus(small_corpora["tcsd"]["documents"])
        samples = stats.occurrence_samples("definition", "quote")
        if len(samples) >= 30:
            fit = best_fit([float(s) for s in samples])
            assert fit.family in ("normal", "uniform")
