"""Golden regression tests: fingerprints of the full workload.

Generation is deterministic (seeded) and the native engine is the
correctness oracle, so the result of every (class, query) pair at a
fixed seed is a stable fingerprint.  These tests pin those fingerprints:
any change to the generators, the XQuery engine or the workload text
that alters observable results shows up here immediately.

If a change is *intentional* (e.g. a new template feature), regenerate
the table with::

    python tests/test_golden.py

which prints a fresh GOLDEN dict to paste in.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.indexes import indexes_for
from repro.databases import CLASSES_BY_KEY
from repro.engines import NativeEngine
from repro.workload import bind_params, workload_for_class
from repro.xml.serializer import serialize

SEED = 1234
UNITS = 25

#: (class, qid) -> (sha256[:16] of results, result count)
GOLDEN = {
    ("dcsd", "Q1"): ("9f064a38f1e1c026", 1),
    ("dcsd", "Q2"): ("e3b0c44298fc1c14", 0),
    ("dcsd", "Q5"): ("eb519657e213c266", 1),
    ("dcsd", "Q7"): ("977b1690d5966e94", 4),
    ("dcsd", "Q8"): ("4881e1349b9765f7", 1),
    ("dcsd", "Q12"): ("9bc89382d1470497", 1),
    ("dcsd", "Q14"): ("e3b0c44298fc1c14", 0),
    ("dcsd", "Q17"): ("e3b0c44298fc1c14", 0),
    ("dcsd", "Q20"): ("5b2beb106c6b185c", 16),
    ("dcmd", "Q1"): ("126f22ab279f160a", 1),
    ("dcmd", "Q3"): ("3fec5c610a177635", 6),
    ("dcmd", "Q5"): ("315c3cee96a23182", 1),
    ("dcmd", "Q8"): ("9a9d157fe137e51a", 1),
    ("dcmd", "Q9"): ("5d932faed5e40da6", 1),
    ("dcmd", "Q10"): ("36adb6aa1d30f747", 14),
    ("dcmd", "Q12"): ("52302610cd65c918", 1),
    ("dcmd", "Q14"): ("3cda8d9f579b4ef1", 6),
    ("dcmd", "Q16"): ("126f22ab279f160a", 1),
    ("dcmd", "Q17"): ("e3b0c44298fc1c14", 0),
    ("dcmd", "Q19"): ("06a0a0b7dda3f188", 1),
    ("tcsd", "Q3"): ("a064eac461b93d98", 10),
    ("tcsd", "Q5"): ("220b37b79a48bec6", 1),
    ("tcsd", "Q8"): ("d31d4af5b346b674", 4),
    ("tcsd", "Q11"): ("c9f171891096b49f", 2),
    ("tcsd", "Q12"): ("9627886ded05a086", 1),
    ("tcsd", "Q14"): ("53fa4a4f77a1e16c", 8),
    ("tcsd", "Q17"): ("b9b3fcee86cf7a41", 6),
    ("tcsd", "Q18"): ("e3b0c44298fc1c14", 0),
    ("tcmd", "Q2"): ("0a4fc8bf20c3159a", 6),
    ("tcmd", "Q4"): ("0fb5615fe229b02d", 4),
    ("tcmd", "Q5"): ("7e12e63b05671349", 1),
    ("tcmd", "Q6"): ("9730e7244f5b9987", 2),
    ("tcmd", "Q8"): ("dc3dcce13b31a184", 1),
    ("tcmd", "Q9"): ("54485a8ce1261e96", 22),
    ("tcmd", "Q12"): ("50a87a49b4502408", 1),
    ("tcmd", "Q13"): ("f5f997eb4ed46ab9", 1),
    ("tcmd", "Q14"): ("9a97126bf9ba77d0", 2),
    ("tcmd", "Q15"): ("0537134b64253942", 9),
    ("tcmd", "Q16"): ("f5ffe03cc735eeb9", 1),
    ("tcmd", "Q17"): ("1b30d2236c181fbc", 7),
    ("tcmd", "Q18"): ("49dd3b217a9366c1", 25),
}


def fingerprint(values: list[str]) -> str:
    return hashlib.sha256("\x1f".join(values).encode()).hexdigest()[:16]


@pytest.fixture(scope="module")
def golden_engines():
    engines = {}
    for key, db_class in CLASSES_BY_KEY.items():
        documents = db_class.generate(UNITS, seed=SEED)
        engine = NativeEngine()
        engine.timed_load(db_class,
                          [(d.name, serialize(d)) for d in documents])
        engine.create_indexes(list(indexes_for(key)))
        engines[key] = engine
    return engines


class TestGoldenWorkload:
    def test_golden_table_is_complete(self):
        expected = {(key, query.qid)
                    for key in CLASSES_BY_KEY
                    for query in workload_for_class(key)}
        assert set(GOLDEN) == expected

    @pytest.mark.parametrize("key,qid", sorted(GOLDEN),
                             ids=[f"{k}-{q}" for k, q in sorted(GOLDEN)])
    def test_result_fingerprint(self, key, qid, golden_engines):
        params = bind_params(qid, key, UNITS)
        values = golden_engines[key].execute(qid, params)
        digest, count = GOLDEN[(key, qid)]
        assert len(values) == count, f"{key}/{qid}: count changed"
        assert fingerprint(values) == digest, \
            f"{key}/{qid}: result content changed"


def _regenerate() -> None:                # pragma: no cover - dev tool
    for key, db_class in CLASSES_BY_KEY.items():
        documents = db_class.generate(UNITS, seed=SEED)
        engine = NativeEngine()
        engine.timed_load(db_class,
                          [(d.name, serialize(d)) for d in documents])
        engine.create_indexes(list(indexes_for(key)))
        for query in workload_for_class(key):
            params = bind_params(query.qid, key, UNITS)
            values = engine.execute(query.qid, params)
            print(f'    ("{key}", "{query.qid}"): '
                  f'("{fingerprint(values)}", {len(values)}),')


if __name__ == "__main__":                # pragma: no cover
    _regenerate()
