"""CLI tests (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out

    def test_workload_listing(self, capsys):
        assert main(["workload"]) == 0
        out = capsys.readouterr().out
        assert "Q20" in out and "datatype casting" in out

    def test_query_native(self, capsys):
        assert main(["query", "Q5", "dcmd", "--units", "20"]) == 0
        out = capsys.readouterr().out
        assert "item(s) in" in out and "collection()/order" in out

    def test_query_relational_engine(self, capsys):
        assert main(["query", "Q8", "dcsd", "--engine", "xcollection",
                     "--units", "20"]) == 0
        assert "Xcollection" in capsys.readouterr().out

    def test_query_lowercase_qid(self, capsys):
        assert main(["query", "q5", "dcmd", "--units", "10"]) == 0

    def test_query_wrong_class_errors(self, capsys):
        assert main(["query", "Q4", "dcsd", "--units", "10"]) == 1
        assert "not defined" in capsys.readouterr().err

    def test_query_unsupported_engine_class(self, capsys):
        # Xcolumn cannot hold single-document classes.
        assert main(["query", "Q8", "dcsd", "--engine", "xcolumn",
                     "--units", "10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stats(self, capsys):
        assert main(["stats", "tcmd", "--units", "12"]) == 0
        out = capsys.readouterr().out
        assert "text ratio" in out

    def test_generate(self, tmp_path, capsys):
        assert main(["generate", "dcmd", "--units", "5",
                     "--out", str(tmp_path)]) == 0
        files = list((tmp_path / "dcmd").glob("*.xml"))
        assert len(files) >= 6          # orders + flat side documents
        assert (tmp_path / "dcmd" / "order1.xml").exists()

    def test_suite_small(self, capsys):
        assert main(["suite", "--divisor", "20000",
                     "--scales", "small", "--classes", "tcmd"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 9" in out

    def test_updates(self, capsys):
        assert main(["updates", "dcmd", "--units", "20",
                     "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "update stream" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliExtensions:
    def test_schema_dtd(self, capsys):
        assert main(["schema", "tcmd", "--format", "dtd"]) == 0
        assert "<!ELEMENT article" in capsys.readouterr().out

    def test_path_command(self, capsys):
        assert main(["path", "tcsd",
                     "/dictionary/entry[hw = 'word_1']/pos",
                     "--units", "40"]) == 0
        out = capsys.readouterr().out
        assert "structural joins" in out and "<pos>" in out

    def test_path_command_rejects_flwor(self, capsys):
        assert main(["path", "tcsd",
                     "for $x in /a return $x", "--units", "5"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_multiuser_command(self, capsys):
        assert main(["multiuser", "dcmd", "--units", "20",
                     "--streams", "2", "--queries", "3",
                     "--mode", "interleaved"]) == 0
        out = capsys.readouterr().out
        assert "2 streams" in out and "q/s" in out

    def test_verify_single_class(self, capsys):
        assert main(["verify", "dcmd", "--divisor", "10000"]) == 0
        out = capsys.readouterr().out
        assert "Verification matrix" in out

    def test_workload_full(self, capsys):
        assert main(["workload", "--full"]) == 0
        out = capsys.readouterr().out
        assert "canonical class" in out and "[dcsd]" in out
