"""Property-based tests (hypothesis) on core invariants.

Strategies generate random XML trees, query fragments and relational
data; properties assert the invariants everything else relies on:
parser/serializer round trips, document-order laws, XQuery algebraic
identities and index-vs-scan agreement.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relstore import Column, ColumnType, SortedIndex, Table
from repro.toxgene.distributions import Exponential, Normal, Uniform, Zipf
from repro.xml.nodes import Document, Element, document_order
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xquery import run_query

# -- strategies --------------------------------------------------------------

tag_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
attr_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=12)
text_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=20)


@st.composite
def xml_trees(draw, depth: int = 3) -> Element:
    """Random well-formed element trees."""
    element = Element(draw(tag_names))
    for name in draw(st.lists(tag_names, max_size=3, unique=True)):
        element.set_attribute(name, draw(attr_values))
    if depth > 0:
        for __ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(xml_trees(depth=depth - 1)))
            else:
                element.append_text(draw(text_values))
    return element


@st.composite
def xml_documents(draw) -> Document:
    document = Document(draw(xml_trees()), name="prop.xml")
    document.refresh_order()
    return document


class TestXmlRoundTrip:
    @given(xml_documents())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_serialize_fixed_point(self, document):
        once = serialize(document)
        twice = serialize(parse_document(once))
        assert once == twice

    @given(xml_documents())
    @settings(max_examples=60, deadline=None)
    def test_parse_preserves_string_value(self, document):
        reparsed = parse_document(serialize(document))
        assert reparsed.root_element.text_content() == \
            document.root_element.text_content()

    @given(xml_documents())
    @settings(max_examples=40, deadline=None)
    def test_pretty_print_preserves_element_count(self, document):
        pretty = serialize(document, indent=2)
        reparsed = parse_document(pretty)
        original_count = sum(
            1 for __ in document.root_element.descendant_elements())
        assert sum(1 for __ in
                   reparsed.root_element.descendant_elements()) == \
            original_count


class TestDocumentOrderLaws:
    @given(xml_documents(), st.integers(0, 2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_document_order_is_idempotent_and_permutation_invariant(
            self, document, seed):
        nodes = list(document.root_element.descendants())
        shuffled = nodes[:]
        random.Random(seed).shuffle(shuffled)
        assert document_order(shuffled) == document_order(nodes)

    @given(xml_documents())
    @settings(max_examples=40, deadline=None)
    def test_descendants_already_in_document_order(self, document):
        nodes = list(document.root_element.descendants())
        assert document_order(nodes) == nodes


class TestXQueryAlgebra:
    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_python(self, values):
        literal = "(" + ", ".join(str(v) for v in values) + ")"
        assert run_query(f"count({literal})") == [len(values)]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_python(self, values):
        literal = "(" + ", ".join(str(v) for v in values) + ")"
        assert run_query(f"sum({literal})") == [sum(values)]

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_reverse_involution(self, values):
        literal = "(" + ", ".join(str(v) for v in values) + ")"
        assert run_query(f"reverse(reverse({literal}))") == values

    @given(st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_range_length(self, low, high):
        result = run_query(f"count({low} to {high})")
        assert result == [max(0, high - low + 1)]

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, values):
        literal = "(" + ", ".join(str(v) for v in values) + ")"
        result = run_query(
            f"for $x in {literal} order by $x return $x")
        assert result == sorted(values)

    @given(xml_documents())
    @settings(max_examples=30, deadline=None)
    def test_union_self_is_identity(self, document):
        count = run_query("count(//* | //*)", [document])
        direct = run_query("count(//*)", [document])
        assert count == direct

    @given(xml_documents())
    @settings(max_examples=30, deadline=None)
    def test_descendant_count_matches_model(self, document):
        expected = sum(
            1 for __ in document.root_element.descendant_elements())
        # //* from the document root includes the root element itself.
        assert run_query("count(//*)", [document]) == [expected + 1]


class TestRelstoreProperties:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40),
           st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_index_range_equals_scan(self, values, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        table = Table("t", [Column("v", ColumnType.INTEGER)])
        for value in values:
            table.insert({"v": value})
        index = SortedIndex(table, "v")
        via_index = sorted(table.value(rid, "v")
                           for rid in index.range(low, high))
        via_scan = sorted(v for v in values if low <= v <= high)
        assert via_index == via_scan

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40),
           st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_index_lookup_equals_scan(self, values, needle):
        table = Table("t", [Column("v", ColumnType.INTEGER)])
        for value in values:
            table.insert({"v": value})
        index = SortedIndex(table, "v")
        assert len(index.lookup(needle)) == values.count(needle)


class TestDistributionProperties:
    @given(st.integers(0, 10 ** 6), st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_zipf_within_support(self, seed, skew):
        dist = Zipf(50, skew)
        rng = random.Random(seed)
        for __ in range(20):
            assert 1 <= dist.sample(rng) <= 50

    @given(st.integers(0, 10 ** 6),
           st.floats(-100, 100), st.floats(0.1, 50))
    @settings(max_examples=40, deadline=None)
    def test_normal_clamp_respected(self, seed, mean, spread):
        dist = Normal(mean, spread, minimum=mean - 1, maximum=mean + 1)
        rng = random.Random(seed)
        for __ in range(20):
            assert mean - 1 <= dist.sample(rng) <= mean + 1

    @given(st.integers(0, 10 ** 6), st.floats(0.1, 100))
    @settings(max_examples=40, deadline=None)
    def test_exponential_clamp(self, seed, mean):
        dist = Exponential(mean, minimum=0.0, maximum=2 * mean)
        rng = random.Random(seed)
        for __ in range(20):
            assert 0.0 <= dist.sample(rng) <= 2 * mean

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_uniform_bounds(self, seed):
        dist = Uniform(3.5, 7.25)
        rng = random.Random(seed)
        for __ in range(20):
            assert 3.5 <= dist.sample(rng) <= 7.25


class TestShreddingProperties:
    @given(xml_documents())
    @settings(max_examples=25, deadline=None)
    def test_shredding_never_loses_schema_mapped_rows(self, document):
        """Shred a random document against a trivial schema: the root
        record count is always exactly one per document."""
        from repro.engines.shredding import ShreddedStore
        from repro.xml.schema import SchemaElement
        schema = SchemaElement(document.root_element.tag)
        store = ShreddedStore()
        store.register_schema(schema)
        rows = store.shred_document(document)
        assert rows == 1


class TestEdgeStoreProperties:
    @given(xml_documents())
    @settings(max_examples=25, deadline=None)
    def test_interval_containment_matches_dom_ancestry(self, document):
        """pre/post interval containment must agree with the DOM's
        ancestor relation for every element pair."""
        from repro.engines.edge import EdgeStore
        from repro.xml.nodes import Element

        store = EdgeStore()
        store.load_document(document)
        rows = sorted(store.database.scan("nodes"),
                      key=lambda row: row["pre"])
        elements = [document.root_element]
        elements.extend(document.root_element.descendant_elements())
        assert len(rows) == len(elements)

        by_pre = dict(zip((row["pre"] for row in rows), elements))
        for row in rows:
            element = by_pre[row["pre"]]
            for other in rows:
                if other is row:
                    continue
                contained = (row["pre"] < other["pre"]
                             and other["post"] <= row["post"])
                is_descendant = any(anc is element for anc in
                                    by_pre[other["pre"]].ancestors())
                assert contained == is_descendant

    @given(xml_documents())
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_preserves_element_structure(self, document):
        """Edge reconstruction keeps tags, attributes and child order
        (text placement may differ for mixed content)."""
        from repro.engines.edge import EdgeStore
        from repro.xml.serializer import serialize as ser

        store = EdgeStore()
        store.load_document(document)
        root_row = min(store.database.scan("nodes"),
                       key=lambda row: row["pre"])
        rebuilt = store.reconstruct(root_row)

        def shape(element):
            return (element.tag,
                    tuple(sorted((a.name, a.value) for a in
                                 element.attributes.values())),
                    tuple(shape(child) for child in
                          element.child_elements()))

        assert shape(rebuilt) == shape(document.root_element)
