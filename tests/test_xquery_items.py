"""XDM value-model tests: atomization, EBV, comparisons, casts, dates."""

from __future__ import annotations

import math

import pytest

from repro.errors import XQueryEvalError, XQueryTypeError
from repro.xml.nodes import Element, Text
from repro.xquery.items import (
    XSDate,
    atomize,
    cast_value,
    compare_values,
    deep_equal,
    effective_boolean,
    is_numeric,
    string_value,
    to_number,
)


class TestXSDate:
    def test_parse(self):
        date = XSDate.parse("2003-05-09")
        assert (date.year, date.month, date.day) == (2003, 5, 9)

    def test_str_zero_pads(self):
        assert str(XSDate(50, 1, 2)) == "0050-01-02"

    def test_ordering(self):
        assert XSDate.parse("2003-05-09") < XSDate.parse("2003-06-01")
        assert XSDate.parse("2004-01-01") > XSDate.parse("2003-12-31")

    def test_equality(self):
        assert XSDate.parse("2001-01-01") == XSDate(2001, 1, 1)

    @pytest.mark.parametrize("bad", ["2003", "a-b-c", "2003-13-01",
                                     "2003-00-10", "2003-01-45"])
    def test_invalid(self, bad):
        with pytest.raises(XQueryEvalError):
            XSDate.parse(bad)

    def test_whitespace_tolerated(self):
        assert XSDate.parse(" 2001-02-03 ") == XSDate(2001, 2, 3)


class TestAtomization:
    def test_node_atomizes_to_string_value(self):
        element = Element("e")
        element.append_text("v")
        assert atomize([element]) == ["v"]

    def test_atoms_pass_through(self):
        assert atomize([1, "a", True]) == [1, "a", True]


class TestStringValue:
    def test_boolean(self):
        assert string_value(True) == "true"
        assert string_value(False) == "false"

    def test_whole_float_prints_as_int(self):
        assert string_value(3.0) == "3"

    def test_fractional_float(self):
        assert string_value(2.5) == "2.5"

    def test_node(self):
        assert string_value(Text("t")) == "t"


class TestEffectiveBoolean:
    def test_empty_is_false(self):
        assert effective_boolean([]) is False

    def test_node_is_true(self):
        assert effective_boolean([Element("e")]) is True

    def test_boolean_passthrough(self):
        assert effective_boolean([False]) is False

    def test_nonempty_string_true(self):
        assert effective_boolean(["x"]) is True
        assert effective_boolean([""]) is False

    def test_zero_false_nan_false(self):
        assert effective_boolean([0]) is False
        assert effective_boolean([float("nan")]) is False
        assert effective_boolean([2]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            effective_boolean([1, 2])


class TestToNumber:
    def test_string(self):
        assert to_number(" 42 ") == 42.0

    def test_bad_string_is_nan(self):
        assert math.isnan(to_number("xyz"))

    def test_boolean(self):
        assert to_number(True) == 1.0

    def test_node(self):
        assert to_number(Text("7")) == 7.0

    def test_is_numeric_excludes_bool(self):
        assert is_numeric(1) and is_numeric(1.5)
        assert not is_numeric(True)
        assert not is_numeric("1")


class TestCompareValues:
    def test_string_equality(self):
        assert compare_values("=", "a", "a")
        assert not compare_values("=", "a", "b")

    def test_numeric_promotion(self):
        assert compare_values("=", "5", 5)
        assert compare_values("<", 4, "5")

    def test_nan_never_equal(self):
        assert not compare_values("=", float("nan"), float("nan"))
        assert compare_values("!=", float("nan"), 1)

    def test_date_promotion(self):
        assert compare_values("<", "2001-01-01",
                              XSDate.parse("2002-01-01"))

    def test_boolean_promotion(self):
        assert compare_values("=", True, "true")

    def test_value_comparison_names(self):
        assert compare_values("le", 3, 3)
        assert compare_values("gt", 4, 3)
        assert compare_values("ne", "a", "b")

    def test_unknown_operator(self):
        with pytest.raises(XQueryEvalError):
            compare_values("??", 1, 1)


class TestCast:
    def test_integer(self):
        assert cast_value("12", "xs:integer") == 12
        assert cast_value(3.9, "xs:integer") == 3

    def test_decimal(self):
        assert cast_value("2.5", "xs:decimal") == 2.5

    def test_string(self):
        assert cast_value(4.0, "xs:string") == "4"

    def test_boolean(self):
        assert cast_value("true", "xs:boolean") is True
        assert cast_value("0", "xs:boolean") is False
        assert cast_value(2, "xs:boolean") is True

    def test_date(self):
        assert cast_value("2003-01-02", "xs:date") == XSDate(2003, 1, 2)

    def test_node_atomized_first(self):
        element = Element("e")
        element.append_text("8")
        assert cast_value(element, "xs:integer") == 8

    def test_bad_cast_raises(self):
        with pytest.raises(XQueryEvalError):
            cast_value("abc", "xs:integer")

    def test_unknown_type_raises(self):
        with pytest.raises(XQueryEvalError):
            cast_value("x", "xs:duration")


class TestDeepEqual:
    def make(self, text: str) -> Element:
        from repro.xml.parser import parse_fragment
        return parse_fragment(text)

    def test_equal_trees(self):
        assert deep_equal(self.make("<a x='1'><b>t</b></a>"),
                          self.make("<a x='1'><b>t</b></a>"))

    def test_different_attribute(self):
        assert not deep_equal(self.make("<a x='1'/>"),
                              self.make("<a x='2'/>"))

    def test_different_children(self):
        assert not deep_equal(self.make("<a><b/></a>"),
                              self.make("<a><c/></a>"))

    def test_whitespace_only_text_ignored(self):
        assert deep_equal(self.make("<a> <b/> </a>"),
                          self.make("<a><b/></a>"))

    def test_atomic_comparison(self):
        assert deep_equal(1, "1")
        assert not deep_equal("a", "b")
