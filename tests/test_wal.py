"""Unit tests for the write-ahead log and checkpoint manifests.

The corruption policy under test (see ``repro.core.wal``):

* a torn tail on the last segment is truncated away on open;
* a mid-log CRC mismatch is skipped with one typed
  :class:`~repro.errors.WalCorruption` incident while replay continues;
* an implausible frame length abandons the segment remainder;
* the checkpoint manifest falls back to the previous checkpoint when
  the newest one's snapshot files are gone.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.core import wal as wal_mod
from repro.core.checkpoint import CheckpointManager
from repro.core.corpus_io import write_snapshot_payloads
from repro.core.wal import FSYNC_POLICIES, WriteAheadLog
from repro.errors import ShardError
from repro.xml.binary import encode_document
from repro.xml.parser import parse_document

OPS = [
    (1, ("update_value", "order/@id", "1", "order_status", "tokA")),
    (2, ("insert", "extra.xml", "<order/>")),
    (3, ("update_value", "order/@id", "2", "order_status", "tokB")),
]

_HEADER_SIZE = struct.calcsize("<4sIIQ")
_FRAME_HEADER = struct.Struct("<II")


def filled_log(tmp_path, records=OPS, **kwargs):
    log = WriteAheadLog(tmp_path, 0, **kwargs)
    for seq, op in records:
        log.append(seq, op)
    log.close()
    return log


def segment_of(tmp_path) -> "Path":
    segments = sorted((tmp_path / "shard-0" / "wal").glob("seg-*.wal"))
    assert segments
    return segments[-1]


def frame_offsets(data: bytes) -> list[int]:
    """Start offsets of every frame in one segment's bytes."""
    offsets, offset = [], _HEADER_SIZE
    while offset + _FRAME_HEADER.size <= len(data):
        length, __ = _FRAME_HEADER.unpack_from(data, offset)
        offsets.append(offset)
        offset += _FRAME_HEADER.size + length
    return offsets


class TestAppendReplay:
    def test_round_trip_across_reopen(self, tmp_path):
        filled_log(tmp_path)
        log = WriteAheadLog(tmp_path, 0)
        assert log.records() == OPS
        assert log.last_seq == 3
        assert log.incidents == []
        # Appends resume after the recovered tail.
        log.append(4, ("delete", "extra.xml"))
        log.close()
        log = WriteAheadLog(tmp_path, 0)
        assert [seq for seq, __ in log.records()] == [1, 2, 3, 4]
        assert log.records(after_seq=3) == [(4, ("delete",
                                                 "extra.xml"))]
        log.close()

    @pytest.mark.parametrize("fsync", FSYNC_POLICIES)
    def test_fsync_policy_matrix(self, tmp_path, fsync):
        filled_log(tmp_path, fsync=fsync)
        log = WriteAheadLog(tmp_path, 0, fsync=fsync)
        assert log.records() == OPS
        log.close()

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ShardError):
            WriteAheadLog(tmp_path, 0, fsync="sometimes")

    def test_shard_mismatch_is_corruption(self, tmp_path):
        filled_log(tmp_path)
        log = WriteAheadLog(tmp_path, 1)
        # shard 1 opening shard 0's directory is empty, not damaged
        assert log.records() == []
        log.close()
        other = WriteAheadLog(tmp_path, 0)
        assert other.records() == OPS
        other.close()


class TestTornTail:
    def test_torn_frame_header_truncated(self, tmp_path):
        filled_log(tmp_path)
        path = segment_of(tmp_path)
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x30\x00")  # 2 of 8 frame-header bytes
        log = WriteAheadLog(tmp_path, 0)
        assert path.stat().st_size == intact
        assert log.records() == OPS
        assert any("torn frame header" in str(incident)
                   for incident in log.incidents)
        log.close()

    def test_torn_frame_payload_truncated(self, tmp_path):
        filled_log(tmp_path)
        path = segment_of(tmp_path)
        intact = path.stat().st_size
        payload = b'[9,["update_value","x"]]'
        with open(path, "ab") as handle:
            handle.write(_FRAME_HEADER.pack(len(payload),
                                            zlib.crc32(payload)))
            handle.write(payload[:5])  # crash mid-payload
        log = WriteAheadLog(tmp_path, 0)
        assert path.stat().st_size == intact
        assert log.records() == OPS
        assert log.last_seq == 3
        assert any("torn frame payload" in str(incident)
                   for incident in log.incidents)
        log.close()


class TestMidLogCorruption:
    def corrupt_frame(self, tmp_path, frame_index, mutate):
        path = segment_of(tmp_path)
        data = bytearray(path.read_bytes())
        offset = frame_offsets(bytes(data))[frame_index]
        mutate(data, offset)
        path.write_bytes(bytes(data))

    def test_crc_mismatch_skipped_replay_continues(self, tmp_path):
        filled_log(tmp_path)

        def flip_payload_byte(data, offset):
            data[offset + _FRAME_HEADER.size] ^= 0xFF

        self.corrupt_frame(tmp_path, 1, flip_payload_byte)
        log = WriteAheadLog(tmp_path, 0)
        records = log.records()
        # Record 2 is gone; 1 and 3 replay fine.
        assert [seq for seq, __ in records] == [1, 3]
        crc_incidents = [incident for incident in log.incidents
                         if "crc mismatch" in str(incident)]
        # Open scans once, records() scans again: one incident, not two.
        assert len(crc_incidents) == 1
        log.close()

    def test_implausible_length_abandons_remainder(self, tmp_path):
        filled_log(tmp_path)

        def wreck_length(data, offset):
            _FRAME_HEADER.pack_into(data, offset, 0xFFFFFFF0, 0)

        self.corrupt_frame(tmp_path, 1, wreck_length)
        log = WriteAheadLog(tmp_path, 0)
        # Resync is impossible past a damaged length word.
        assert [seq for seq, __ in log.records()] == [1]
        assert any("implausible frame length" in str(incident)
                   for incident in log.incidents)
        log.close()


class TestRotationCompaction:
    def test_rotation_under_tiny_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path, 0, segment_bytes=64)
        for seq in range(1, 9):
            log.append(seq, ("update_value", "order/@id", str(seq),
                             "order_status", f"tok{seq}"))
        assert len(log.segments()) > 1
        assert [seq for seq, __ in log.records()] == list(range(1, 9))
        log.close()

    def test_truncate_below_deletes_whole_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path, 0, segment_bytes=64)
        for seq in range(1, 9):
            log.append(seq, ("update_value", "order/@id", str(seq),
                             "order_status", f"tok{seq}"))
        assert log.truncate_below(8) >= 1
        # Everything checkpointed: only the empty live segment remains.
        assert log.records(after_seq=0) == []
        assert log.disk_bytes() <= 64
        log.append(9, ("delete", "extra.xml"))
        assert [seq for seq, __ in log.records()] == [9]
        log.close()

    def test_truncate_below_keeps_uncheckpointed_suffix(self, tmp_path):
        log = WriteAheadLog(tmp_path, 0, segment_bytes=64)
        for seq in range(1, 9):
            log.append(seq, ("update_value", "order/@id", str(seq),
                             "order_status", f"tok{seq}"))
        log.truncate_below(4)
        survivors = [seq for seq, __ in log.records(after_seq=4)]
        assert survivors == [5, 6, 7, 8]
        log.close()


class TestCheckpointManifest:
    def write_checkpoint(self, manager, seq):
        path = manager.snapshot_path(seq, 0)
        payload = encode_document(
            parse_document(f"<doc seq='{seq}'/>", name="doc.xml"))
        write_snapshot_payloads(
            path, [("doc.xml", payload,
                    {"ordinal": 0, "replicated": False})],
            {"checkpoint_seq": seq})
        return manager.record(seq=seq, class_key="dcmd",
                              engine_key="native", shards=1,
                              snapshot_paths=[path], index_paths=[],
                              next_ordinal=1, home=None)

    def test_keep_bound_drops_oldest_snapshot(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self.write_checkpoint(manager, 5)
        self.write_checkpoint(manager, 9)
        manifest = self.write_checkpoint(manager, 12)
        kept = [entry["seq"] for entry in manifest["checkpoints"]]
        assert kept == [9, 12]
        assert not manager.snapshot_path(5, 0).exists()
        assert manager.oldest_retained_seq() == 9

    def test_latest_valid_falls_back_past_deleted_snapshot(
            self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self.write_checkpoint(manager, 5)
        self.write_checkpoint(manager, 9)
        manager.snapshot_path(9, 0).unlink()
        entry, snapshots, incidents = manager.latest_valid()
        try:
            assert entry["seq"] == 5
        finally:
            for snapshot in snapshots:
                snapshot.close()
        assert len(incidents) == 1
        assert "falling back" in incidents[0]

    def test_latest_valid_none_when_all_unusable(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        self.write_checkpoint(manager, 5)
        manager.snapshot_path(5, 0).unlink()
        assert manager.latest_valid() is None
        assert CheckpointManager.exists(tmp_path)
