"""End-to-end integration tests: full pipeline and paper-shape checks.

These run the complete flow (generate -> load -> index -> query -> report)
at reduced scale, and assert the *qualitative shapes* of the paper's
findings rather than absolute times:

* relational engines pay extra bulk-load cost over the native engine;
* the native engine degrades with document count on DC/MD point queries
  while the shredded engines stay flat;
* Q14 (missing elements) forces relational table scans that grow with
  database size;
* Q17 (text search) grows with size for everyone;
* the ``-`` cells land where the paper puts them.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, XBench, format_suite
from repro.core.indexes import indexes_for
from repro.engines import NativeEngine, SqlServerEngine, XCollectionEngine
from repro.workload import bind_params


@pytest.fixture(scope="module")
def shape_suite():
    """small+large suite with enough scale spread to expose shapes."""
    config = BenchmarkConfig(scale_divisor=1000,
                             scale_names=("small", "large"), seed=7)
    bench = XBench(config)
    return bench, bench.run_suite()


def cell_seconds(result, row, class_key, scale):
    cell = result.cells.get((row, class_key, scale))
    assert cell is not None and cell.seconds is not None, \
        f"missing cell {row}/{class_key}/{scale}"
    return cell.seconds


class TestSuiteCompleteness:
    def test_every_supported_cell_measured(self, shape_suite):
        __, suite = shape_suite
        unsupported = {("Xcolumn", "dcsd"), ("Xcolumn", "tcsd"),
                       ("Xcollection", "dcsd", "large"),
                       ("Xcollection", "tcsd", "large")}
        for row in ("Xcolumn", "Xcollection", "SQL Server", "X-Hive"):
            for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
                for scale in ("small", "large"):
                    cell = suite.load.cells[(row, class_key, scale)]
                    expect_missing = (row, class_key) in unsupported or \
                        (row, class_key, scale) in unsupported
                    if expect_missing:
                        assert cell.seconds is None
                    else:
                        assert cell.seconds is not None

    def test_report_renders(self, shape_suite):
        __, suite = shape_suite
        text = format_suite(suite, scale_names=("small", "large"))
        assert text.count("Table") >= 6


class TestPaperShapes:
    def test_native_loads_fastest_at_scale(self, shape_suite):
        """Table 4: X-Hive bulk-loads faster than the shredders.

        Timing noise can flip one thin-margin class, so the assertion is
        majority-based: native must win at least 3 of 4 classes and never
        lose by more than 40%.
        """
        __, suite = shape_suite
        wins = 0
        for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
            native = cell_seconds(suite.load, "X-Hive", class_key,
                                  "large")
            sql = cell_seconds(suite.load, "SQL Server", class_key,
                               "large")
            if native < sql:
                wins += 1
            assert native < sql * 1.4, \
                f"{class_key}: native {native:.3f}s vs sql {sql:.3f}s"
        assert wins >= 3

    def test_native_dcmd_point_query_degrades(self, shape_suite):
        """Table 5: X-Hive Q5 on DC/MD grows with document count."""
        __, suite = shape_suite
        small = cell_seconds(suite.queries["Q5"], "X-Hive", "dcmd",
                             "small")
        large = cell_seconds(suite.queries["Q5"], "X-Hive", "dcmd",
                             "large")
        assert large > 3 * small

    def test_shredded_dcmd_point_query_flat(self, shape_suite):
        """Table 5: indexed relational Q5 stays near-flat on DC/MD."""
        __, suite = shape_suite
        small = cell_seconds(suite.queries["Q5"], "SQL Server", "dcmd",
                             "small")
        large = cell_seconds(suite.queries["Q5"], "SQL Server", "dcmd",
                             "large")
        assert large < 30 * small   # flat-ish vs the >100x data growth

    def test_native_wins_dc_point_queries_never(self, shape_suite):
        """Tables 5/8: relational beats native on large DC databases."""
        __, suite = shape_suite
        for qid in ("Q5", "Q8"):
            native = cell_seconds(suite.queries[qid], "X-Hive", "dcmd",
                                  "large")
            sql = cell_seconds(suite.queries[qid], "SQL Server", "dcmd",
                               "large")
            assert sql < native

    def test_q14_table_scan_grows(self, shape_suite):
        """Table 9: missing-element queries scan; time grows with size."""
        __, suite = shape_suite
        for row in ("SQL Server", "X-Hive"):
            small = cell_seconds(suite.queries["Q14"], row, "dcmd",
                                 "small")
            large = cell_seconds(suite.queries["Q14"], row, "dcmd",
                                 "large")
            assert large > 2 * small, row

    def test_q17_text_search_grows_for_everyone(self, shape_suite):
        """Table 7: no full-text index anywhere; growth across scales."""
        __, suite = shape_suite
        for row in ("SQL Server", "X-Hive"):
            small = cell_seconds(suite.queries["Q17"], row, "tcsd",
                                 "small")
            large = cell_seconds(suite.queries["Q17"], row, "tcsd",
                                 "large")
            assert large > 3 * small, row

    def test_native_is_correctness_oracle(self, shape_suite):
        """Relational engines carry infidelity stars where expected."""
        __, suite = shape_suite
        q12 = suite.queries["Q12"]
        assert q12.cells[("SQL Server", "tcsd", "large")].correct is False
        assert q12.cells[("X-Hive", "tcsd", "large")].correct is True


class TestColdRunSemantics:
    def test_fresh_engine_per_scenario(self):
        """Loading scenario B after A must not leak A's data."""
        config = BenchmarkConfig(scale_divisor=10_000,
                                 scale_names=("small",))
        bench = XBench(config)
        engine = NativeEngine()
        bench.load_engine(engine, "tcmd", "small")
        articles = len(engine.documents())
        bench.load_engine(engine, "dcmd", "small")
        assert all(d.root_element.tag != "article"
                   for d in engine.documents())
        assert len(engine.documents()) != 0
        assert articles != 0


class TestIndexAblation:
    def test_indexes_speed_up_native_point_query(self):
        """Design-decision ablation: Table 3 indexes vs sequential scan
        on the native engine's accelerated single-document plans."""
        config = BenchmarkConfig(scale_divisor=500,
                                 scale_names=("large",))
        bench = XBench(config)
        scenario = bench.corpus.scenario("dcsd", "large")
        engine = NativeEngine()
        engine.timed_load(scenario.db_class, scenario.texts)
        params = bind_params("Q5", "dcsd", scenario.units)

        import time
        engine.create_indexes(list(indexes_for("dcsd")))
        start = time.perf_counter()
        indexed_result = engine.execute("Q5", params)
        indexed_time = time.perf_counter() - start

        engine.drop_indexes()
        start = time.perf_counter()
        scan_result = engine.execute("Q5", params)
        scan_time = time.perf_counter() - start

        assert indexed_result == scan_result
        assert indexed_time < scan_time

    def test_indexes_speed_up_shredded_lookup(self):
        config = BenchmarkConfig(scale_divisor=500,
                                 scale_names=("large",))
        bench = XBench(config)
        scenario = bench.corpus.scenario("dcmd", "large")
        engine = SqlServerEngine()
        engine.timed_load(scenario.db_class, scenario.texts)
        params = bind_params("Q5", "dcmd", scenario.units)

        import time
        engine.create_indexes(list(indexes_for("dcmd")))
        start = time.perf_counter()
        indexed_result = engine.execute("Q5", params)
        indexed_time = time.perf_counter() - start

        engine.drop_indexes()
        start = time.perf_counter()
        scan_result = engine.execute("Q5", params)
        scan_time = time.perf_counter() - start

        assert indexed_result == scan_result
        assert indexed_time < scan_time


class TestFullWorkloadOnNative:
    def test_all_twenty_queries_on_canonical_classes(self, small_corpora):
        """Every XBench query runs end-to-end on its canonical class."""
        from repro.workload import ALL_QUERIES
        engines = {}
        for query in ALL_QUERIES:
            key = query.canonical_class
            if key not in engines:
                corpus = small_corpora[key]
                engine = NativeEngine()
                engine.timed_load(corpus["class"], corpus["texts"])
                engine.create_indexes(list(indexes_for(key)))
                engines[key] = engine
            params = bind_params(query.qid, key,
                                 small_corpora[key]["units"])
            engines[key].execute(query.qid, params)   # must not raise
