"""Exception hierarchy tests."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.XMLError, errors.XMLParseError, errors.XQueryError,
        errors.XQuerySyntaxError, errors.XQueryTypeError,
        errors.XQueryEvalError, errors.GenerationError,
        errors.RelStoreError, errors.SchemaError, errors.EngineError,
        errors.UnsupportedConfiguration, errors.LoadError,
        errors.UnsupportedOperation, errors.UnsupportedQuery,
        errors.BenchmarkError, errors.ShardError, errors.CircuitOpen,
        errors.QueryTimeout, errors.PartialResult,
        errors.FaultInjected,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_circuit_open_is_a_shard_error(self):
        # Callers catching ShardError (infrastructure) also see breaker
        # fast-fails without a new except arm.
        assert issubclass(errors.CircuitOpen, errors.ShardError)

    def test_query_timeout_carries_budget(self):
        error = errors.QueryTimeout("q", budget_seconds=0.25)
        assert error.budget_seconds == 0.25
        assert "0.250s" in str(error)

    def test_parse_error_under_xml(self):
        assert issubclass(errors.XMLParseError, errors.XMLError)

    def test_query_errors_under_xquery(self):
        for exc in (errors.XQuerySyntaxError, errors.XQueryTypeError,
                    errors.XQueryEvalError):
            assert issubclass(exc, errors.XQueryError)

    def test_engine_errors_under_engine(self):
        for exc in (errors.UnsupportedConfiguration, errors.LoadError,
                    errors.UnsupportedOperation,
                    errors.UnsupportedQuery):
            assert issubclass(exc, errors.EngineError)

    def test_schema_error_under_relstore(self):
        assert issubclass(errors.SchemaError, errors.RelStoreError)


class TestMessages:
    def test_xml_parse_error_carries_position(self):
        error = errors.XMLParseError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_xml_parse_error_without_position(self):
        error = errors.XMLParseError("bad")
        assert "line" not in str(error)

    def test_xquery_syntax_error_offset(self):
        error = errors.XQuerySyntaxError("oops", position=12)
        assert error.position == 12
        assert "offset 12" in str(error)

    def test_xquery_syntax_error_no_offset(self):
        assert "offset" not in str(errors.XQuerySyntaxError("oops"))

    def test_one_base_class_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.UnsupportedQuery("x")
