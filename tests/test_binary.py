"""Binary document store tests: RXB1 codec, snapshots, fast paths.

The contract under test: ``decode(encode(doc))`` is indistinguishable
from the original — canonical serialization, document order, query
results and structural-summary answers all match — across every
workload class and across adversarial hypothesis-generated trees
(unicode text, attributes, mixed content).  Snapshots round-trip the
same corpora through the mmap-loadable RXSN container.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.corpus_io import (
    Snapshot,
    open_snapshot_corpus,
    snapshot_filename,
    write_snapshot,
)
from repro.databases import CLASSES_BY_KEY
from repro.engines import create
from repro.workload.params import bind_params
from repro.workload.queries import workload_for_class
from repro.xml.binary import (
    BinarySummary,
    EncodedDocument,
    decode_document,
    encode_document,
    materialize,
    payload_text,
)
from repro.xml.nodes import Document, Element
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.summary import StructuralSummary

# -- strategies (mirror test_properties, plus unicode) -----------------------

tag_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
attr_values = st.text(
    st.characters(min_codepoint=32, max_codepoint=0x2FF), max_size=12)
text_values = st.text(
    st.characters(min_codepoint=32, max_codepoint=0x10FF,
                  blacklist_characters="<&"),
    min_size=1, max_size=20)


@st.composite
def xml_trees(draw, depth: int = 3) -> Element:
    element = Element(draw(tag_names))
    for name in draw(st.lists(tag_names, max_size=3, unique=True)):
        element.set_attribute(name, draw(attr_values))
    if depth > 0:
        for __ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(xml_trees(depth=depth - 1)))
            else:
                element.append_text(draw(text_values))
    return element


@st.composite
def xml_documents(draw) -> Document:
    document = Document(draw(xml_trees()), name="prop.xml")
    document.refresh_order()
    return document


def roundtrip(document: Document) -> Document:
    return decode_document(encode_document(document),
                           name=document.name)


def walk(node):
    """Every node of a tree in document order (attributes included)."""
    yield node
    if isinstance(node, Element):
        yield from node.attributes.values()
        for child in node.children:
            yield from walk(child)
    elif isinstance(node, Document):
        for child in node.children:
            yield from walk(child)


# -- codec round trips -------------------------------------------------------


class TestRoundTrip:
    @given(xml_documents())
    @settings(max_examples=60, deadline=None)
    def test_serialization_survives_roundtrip(self, document):
        assert serialize(roundtrip(document)) == serialize(document)

    @given(xml_documents())
    @settings(max_examples=40, deadline=None)
    def test_document_order_survives_roundtrip(self, document):
        decoded = roundtrip(document)
        originals = [(node.order_key, type(node).__name__)
                     for node in walk(document)]
        copies = [(node.order_key, type(node).__name__)
                  for node in walk(decoded)]
        assert copies == originals

    @given(xml_documents())
    @settings(max_examples=40, deadline=None)
    def test_decoded_summary_matches_structural(self, document):
        decoded = roundtrip(document)
        reference = StructuralSummary.build(document)
        summary = decoded.structural_summary()
        assert isinstance(summary, BinarySummary)
        for tag in reference.tag_map:
            expect = [el.order_key
                      for el in reference.descendants_with_tag(
                          document, tag)]
            got = [el.order_key
                   for el in summary.descendants_with_tag(decoded, tag)]
            assert got == expect
        # Path maps build lazily on first path-shaped lookup.
        for path, rows in reference.path_map.items():
            assert summary.count_at(path) == len(rows)
        assert sorted(summary.path_map) == sorted(reference.path_map)

    @pytest.mark.parametrize("class_key", sorted(CLASSES_BY_KEY))
    def test_workload_class_corpora_roundtrip(self, class_key):
        db_class = CLASSES_BY_KEY[class_key]
        for document in db_class.generate(2, seed=7):
            assert (serialize(roundtrip(document))
                    == serialize(document))

    def test_unicode_attributes_mixed_content(self):
        text = ("<resume lang=\"français\" note=\"\">"
                "café <b>naïve</b> — "
                "<em>你好</em> tail &amp; more"
                "<!-- é comment --></resume>")
        document = parse_document(text, name="unicode.xml")
        decoded = roundtrip(document)
        assert serialize(decoded) == serialize(document)
        root = decoded.children[0]
        assert root.attributes["lang"].value == "français"
        assert root.attributes["note"].value == ""

    def test_descendant_probe_on_nested_repeats(self):
        # Repeated tags at several depths: the subtree-end interval
        # probe must honor subtree boundaries exactly.
        text = ("<a><b><c/><b><c/><c/></b></b><d><b><c/></b></d>"
                "<c>tail</c></a>")
        document = parse_document(text, name="nested.xml")
        decoded = roundtrip(document)
        summary = decoded.structural_summary()
        reference = StructuralSummary.build(document)
        originals = list(walk(document))
        twins = list(walk(decoded))
        for origin, twin in zip(originals, twins):
            if not isinstance(origin, Element):
                continue
            for tag in ("b", "c", "d", "nope"):
                expect = [el.order_key for el in
                          reference.descendants_with_tag(origin, tag)]
                got = [el.order_key for el in
                       summary.descendants_with_tag(twin, tag)]
                assert got == expect

    def test_mutation_invalidates_binary_summary(self):
        document = parse_document("<a><b/><b/></a>", name="mut.xml")
        decoded = roundtrip(document)
        assert len(decoded.structural_summary()
                   .descendants_with_tag(decoded, "b")) == 2
        decoded.children[0].append(Element("b"))
        decoded.refresh_order()
        decoded.invalidate_summary()
        summary = decoded.structural_summary()
        assert not isinstance(summary, BinarySummary)
        assert len(summary.descendants_with_tag(decoded, "b")) == 3


class TestEncodedDocument:
    def test_len_is_encoded_size_and_header_counts(self):
        document = parse_document("<a x=\"1\"><b>t</b></a>",
                                  name="h.xml")
        payload = encode_document(document)
        wrapper = EncodedDocument("h.xml", payload)
        assert len(wrapper) == len(payload)
        # document, a, @x, b, text
        assert wrapper.node_count() == 5
        assert wrapper.intern_count() >= 3
        assert serialize(wrapper.to_document()) == serialize(document)
        assert wrapper.to_text() == serialize(document)

    def test_pickle_roundtrip(self):
        document = parse_document("<a><b/></a>", name="p.xml")
        wrapper = EncodedDocument("p.xml",
                                  encode_document(document))
        clone = pickle.loads(pickle.dumps(wrapper))
        assert clone.name == "p.xml"
        assert serialize(clone.to_document()) == serialize(document)

    def test_materialize_and_payload_text(self):
        text = "<a><b>x</b></a>"
        document = parse_document(text, name="m.xml")
        wrapper = EncodedDocument("m.xml", encode_document(document))
        assert serialize(materialize("m.xml", text)) == text
        assert serialize(materialize("m.xml", wrapper)) == text
        assert payload_text(text) == text
        assert payload_text(wrapper) == text


class TestQueryEquivalence:
    """An engine loaded from encoded payloads answers every workload
    query exactly as one loaded from XML text."""

    @pytest.mark.parametrize("class_key", sorted(CLASSES_BY_KEY))
    def test_native_results_match(self, class_key, small_corpora):
        corpus = small_corpora[class_key]
        encoded = [(name, EncodedDocument(
                        name, encode_document(parse_document(
                            text, name=name))))
                   for name, text in corpus["texts"]]
        from_text = create("native")
        from_text.timed_load(corpus["class"], list(corpus["texts"]))
        from_encoded = create("native")
        from_encoded.timed_load(corpus["class"], encoded)
        try:
            for query in workload_for_class(class_key):
                params = bind_params(query.qid, class_key,
                                     corpus["units"])
                assert (from_encoded.execute(query.qid, params)
                        == from_text.execute(query.qid, params)), (
                    f"{query.qid} on {class_key} differs when loaded "
                    "from encoded node arrays")
        finally:
            from_text.close()
            from_encoded.close()


# -- snapshots ---------------------------------------------------------------


class TestSnapshots:
    def build(self, tmp_path, class_key="dcmd", units=3, seed=11):
        db_class = CLASSES_BY_KEY[class_key]
        documents = db_class.generate(units, seed=seed)
        path = tmp_path / snapshot_filename(class_key, units)
        meta = write_snapshot(path, documents,
                              meta={"class": class_key,
                                    "units": units, "seed": seed})
        return path, documents, meta

    def test_write_open_roundtrip(self, tmp_path):
        path, documents, meta = self.build(tmp_path)
        assert meta["documents"] == len(documents)
        with Snapshot.open(path) as snapshot:
            corpus = snapshot.corpus()
            assert len(corpus) == len(documents)
            assert corpus.total_bytes() == meta["payload_bytes"]
            for (name, payload), document in zip(corpus, documents):
                assert name == document.name
                assert (serialize(payload.to_document())
                        == serialize(document))

    def test_open_snapshot_corpus_validates_identity(self, tmp_path):
        self.build(tmp_path, units=3, seed=11)
        assert open_snapshot_corpus(tmp_path, "dcmd", 3, 11) is not None
        assert open_snapshot_corpus(tmp_path, "dcmd", 3, 99) is None
        assert open_snapshot_corpus(tmp_path, "dcmd", 4, 11) is None
        assert open_snapshot_corpus(tmp_path, "missing", 3, 11) is None

    def test_rejects_corrupt_header(self, tmp_path):
        from repro.errors import BenchmarkError
        bogus = tmp_path / "bogus.rxs"
        bogus.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(BenchmarkError):
            Snapshot.open(bogus)

    def test_benchmark_warm_start_uses_snapshot(self, tmp_path):
        from repro.core.benchmark import BenchmarkConfig, CorpusCache
        config = BenchmarkConfig(scale_divisor=20000,
                                 snapshot_dir=str(tmp_path))
        cold = CorpusCache(config)
        scenario = cold._build("dcmd", "small")
        db_class = CLASSES_BY_KEY["dcmd"]
        documents = db_class.generate(scenario.units, seed=config.seed)
        write_snapshot(
            tmp_path / snapshot_filename("dcmd", scenario.units),
            documents,
            meta={"class": "dcmd", "units": scenario.units,
                  "seed": config.seed})
        warm = CorpusCache(config).scenario("dcmd", "small")
        assert warm.texts.__class__.__name__ == "SnapshotCorpus"
        engine = create("native")
        try:
            engine.timed_load(warm.db_class, warm.texts)
            params = bind_params("Q17", "dcmd", warm.units)
            oracle = create("native")
            oracle.timed_load(scenario.db_class, scenario.texts)
            try:
                assert (engine.execute("Q17", params)
                        == oracle.execute("Q17", params))
            finally:
                oracle.close()
        finally:
            engine.close()

    def test_sharded_load_from_snapshot_corpus(self, tmp_path):
        from repro.core.shard import ShardedEngine
        path, documents, __ = self.build(tmp_path, units=4, seed=5)
        corpus = open_snapshot_corpus(tmp_path, "dcmd", 4, 5)
        db_class = CLASSES_BY_KEY["dcmd"]
        oracle = create("native")
        oracle.timed_load(db_class,
                          [(d.name, serialize(d)) for d in documents])
        sharded = ShardedEngine("native", shards=2)
        try:
            sharded.timed_load(db_class, corpus)
            assert sharded.last_load_report["transport"] == "shm"
            got = sharded.adhoc("collection()/order/@id")
            expect = oracle.adhoc("collection()/order/@id")
            assert sorted(got.values) == sorted(expect.values)
        finally:
            oracle.close()
            sharded.close()
