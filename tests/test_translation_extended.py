"""Extended translation tests: reconstruction + the eight extra plans."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import (
    NativeEngine,
    SqlServerEngine,
    XCollectionEngine,
    XColumnEngine,
    make_engines,
)
from repro.engines.translation import PLANS, has_plan
from repro.errors import UnsupportedConfiguration
from repro.workload import bind_params
from repro.xml.serializer import serialize


def load(factory, corpus):
    engine = factory()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestReconstruction:
    def test_dcsd_item_round_trips_exactly(self, small_corpora):
        """DC documents have no mixed content, so reconstruction can be
        (and is) byte-exact against the original."""
        corpus = small_corpora["dcsd"]
        engine = load(XCollectionEngine, corpus)
        plan = engine.store.plans["catalog"]
        item_record = next(r for r in plan.records
                           if r.table_name == "item")
        original_items = list(
            corpus["documents"][0].root_element.child_elements("item"))
        for row in list(engine.store.database.scan("item"))[:5]:
            rebuilt = engine.store.reconstruct(plan, item_record, row)
            original = original_items[int(row["id_c"]) - 1]
            assert serialize(rebuilt) == serialize(original)

    def test_dcmd_order_document_round_trips(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(SqlServerEngine, corpus)
        plan = engine.store.plans["order"]
        record = plan.records[0]
        row = next(iter(engine.store.database.scan("order")))
        rebuilt = engine.store.reconstruct(plan, record, row)
        original = next(d for d in corpus["documents"]
                        if d.name == f"order{row['id_c']}.xml")
        assert serialize(rebuilt) == serialize(original.root_element)

    def test_tcsd_reconstruction_loses_mixed_markup(self, small_corpora):
        """TC reconstruction is lossy exactly where the paper says."""
        corpus = small_corpora["tcsd"]
        engine = load(XCollectionEngine, corpus)
        plan = engine.store.plans["dictionary"]
        entry_record = next(r for r in plan.records
                            if r.table_name == "entry")
        lossy = 0
        originals = list(
            corpus["documents"][0].root_element.child_elements("entry"))
        for row in engine.store.database.scan("entry"):
            rebuilt = engine.store.reconstruct(plan, entry_record, row)
            original = originals[int(row["id_c"][1:]) - 1]
            rebuilt_text = serialize(rebuilt)
            if rebuilt_text != serialize(original):
                lossy += 1
                # The mixed qt column stores the element's *full* text
                # while inline children are shredded separately, so the
                # rebuilt fragment duplicates emphasis text and loses its
                # position - the redundancy the paper attributes to
                # combined storage approaches.
                for emphasis in original.descendant_elements("emphasis"):
                    assert rebuilt_text.count(
                        emphasis.text_content()) >= 1
        assert lossy > 0


EXTENDED = [("Q1", "dcsd"), ("Q1", "dcmd"), ("Q2", "dcsd"),
            ("Q2", "tcmd"), ("Q3", "dcmd"), ("Q4", "tcmd"),
            ("Q7", "dcsd"), ("Q9", "dcmd"), ("Q10", "dcmd"),
            ("Q11", "tcsd"), ("Q13", "tcmd"), ("Q16", "dcmd"),
            ("Q19", "dcmd"), ("Q20", "dcsd")]

# (qid, class) pairs where SQL Server's dropped mixed content makes its
# result legitimately diverge from the oracle (paper problem #3).
SQLSERVER_LOSSY = {("Q6", "tcmd"), ("Q18", "tcmd")}


class TestExtendedPlans:
    def test_plan_registry_covers_extended_set(self):
        for qid, class_key in EXTENDED:
            assert has_plan(qid, class_key), (qid, class_key)

    def test_core_five_cover_all_classes(self):
        for qid in ("Q5", "Q8", "Q12", "Q14", "Q17"):
            for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
                assert has_plan(qid, class_key)

    @pytest.mark.parametrize("qid,class_key", EXTENDED)
    def test_extended_plans_match_oracle(self, qid, class_key,
                                         small_corpora):
        corpus = small_corpora[class_key]
        params = bind_params(qid, class_key, corpus["units"])
        oracle = load(NativeEngine, corpus).execute(qid, params)
        for factory in (XCollectionEngine, SqlServerEngine):
            engine = load(factory, corpus)
            assert engine.execute(qid, params) == oracle, factory.key

    @pytest.mark.parametrize("qid,class_key", sorted(SQLSERVER_LOSSY))
    def test_lossy_plans_xcollection_exact_sqlserver_subset(
            self, qid, class_key, small_corpora):
        """Where mixed text matters, Xcollection still matches the
        oracle while SQL Server returns a subset."""
        corpus = small_corpora[class_key]
        params = bind_params(qid, class_key, corpus["units"])
        oracle = load(NativeEngine, corpus).execute(qid, params)
        assert load(XCollectionEngine, corpus).execute(qid, params) == \
            oracle
        sql_result = load(SqlServerEngine, corpus).execute(qid, params)
        assert len(sql_result) <= len(oracle)

    @pytest.mark.parametrize("qid", ["Q1", "Q9", "Q16", "Q19"])
    def test_xcolumn_extended_plans_match_oracle(self, qid,
                                                 small_corpora):
        corpus = small_corpora["dcmd"]
        params = bind_params(qid, "dcmd", corpus["units"])
        oracle = load(NativeEngine, corpus).execute(qid, params)
        engine = load(XColumnEngine, corpus)
        assert engine.execute(qid, params) == oracle

    def test_xcolumn_q16_serves_clob_directly(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(XColumnEngine, corpus)
        params = bind_params("Q16", "dcmd", corpus["units"])
        (value,) = engine.execute("Q16", params)
        assert value.startswith("<order ")
