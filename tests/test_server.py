"""Query-server tests: protocol framing, admission-control policy
(transport-free), and end-to-end serving over real sockets.

The policy contracts under test: a bounded queue sheds the burst
beyond its capacity with a typed ``ServerOverloaded``; a request whose
deadline cannot survive the predicted queue wait is rejected at
admission (microseconds, not after a doomed queue ride); a request
whose deadline expires *while* queued fails fast instead of executing;
stride scheduling splits service between tenants in proportion to
their weights; and a draining server finishes every admitted query
before exiting.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import ServerError, ServerOverloaded
from repro.faults.deadline import Deadline
from repro.loadgen import ServingClient
from repro.server import (
    AdmissionController,
    QueryServer,
    Request,
    ServerConfig,
    encode_frame,
    error_response,
    recv_message,
    send_message,
)

# -- protocol framing ---------------------------------------------------------


def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"op": "query", "qid": "Q5", "params": {"id": "3"}}
        send_message(left, message)
        assert recv_message(right) == message
        left.close()
        assert recv_message(right) is None      # clean EOF
    finally:
        right.close()


def test_frame_rejects_oversized_length():
    left, right = socket.socketpair()
    try:
        left.sendall((16 * 1024 * 1024 + 1).to_bytes(4, "big"))
        with pytest.raises(ServerError):
            recv_message(right)
    finally:
        left.close()
        right.close()


def test_frame_mid_frame_eof_is_an_error():
    left, right = socket.socketpair()
    try:
        left.sendall(encode_frame({"op": "ping"})[:-2])
        left.close()
        with pytest.raises(ServerError):
            recv_message(right)
    finally:
        right.close()


def test_error_response_names_the_exception_type():
    reply = error_response(ServerOverloaded("queue full"))
    assert reply == {"ok": False, "error": "ServerOverloaded",
                     "message": "queue full"}


# -- admission policy (no sockets) --------------------------------------------


def test_bounded_queue_sheds_burst_beyond_capacity():
    admission = AdmissionController(capacity=2)
    admission.submit(Request(tenant="t"))
    admission.submit(Request(tenant="t"))
    with pytest.raises(ServerOverloaded):
        admission.submit(Request(tenant="t"))
    assert admission.counters["admitted"] == 2
    assert admission.counters["rejected_capacity"] == 1
    assert admission.size == 2


def test_doomed_deadline_rejected_at_admission():
    admission = AdmissionController(capacity=16, executors=1)
    admission.note_service_time(1.0)
    admission.submit(Request(tenant="t"))
    admission.submit(Request(tenant="t"))
    # Predicted wait: 2 queued x 1.0s EWMA / 1 executor = 2s.
    with pytest.raises(ServerOverloaded):
        admission.submit(Request(tenant="t",
                                 deadline=Deadline(0.5)))
    assert admission.counters["rejected_deadline"] == 1
    # A generous deadline still gets in.
    admission.submit(Request(tenant="t", deadline=Deadline(60.0)))
    assert admission.counters["admitted"] == 3


def test_in_flight_work_counts_toward_predicted_wait():
    admission = AdmissionController(capacity=16, executors=1)
    admission.note_service_time(1.0)
    admission.in_flight = 3
    assert admission.predicted_wait() == pytest.approx(3.0)
    with pytest.raises(ServerOverloaded):
        admission.submit(Request(tenant="t", deadline=Deadline(1.0)))


def test_deadline_expired_in_queue_fails_fast():
    admission = AdmissionController(capacity=16)
    doomed = Request(tenant="t", deadline=Deadline(0.001))
    admission.submit(doomed)
    admission.submit(Request(tenant="t"))
    time.sleep(0.01)
    ready = admission.next_ready()
    assert ready is not None and ready.deadline is None
    assert admission.drain_expired() == [doomed]
    assert admission.counters["expired_in_queue"] == 1
    assert admission.drain_expired() == []      # cleared on read


def test_weighted_fair_split_is_proportional():
    admission = AdmissionController(
        capacity=64, weights={"gold": 2.0, "bronze": 1.0})
    for __ in range(20):
        admission.submit(Request(tenant="gold"))
        admission.submit(Request(tenant="bronze"))
    served = [admission.next_ready().tenant for __ in range(15)]
    assert served.count("gold") == 10
    assert served.count("bronze") == 5


def test_idle_tenant_cannot_bank_credit():
    admission = AdmissionController(
        capacity=64, weights={"gold": 1.0, "late": 1.0})
    for __ in range(10):
        admission.submit(Request(tenant="gold"))
    for __ in range(6):
        admission.next_ready()
    # "late" arrives after gold already consumed 6 slots; equal
    # weights must now alternate rather than let late catch up 6-0.
    for __ in range(6):
        admission.submit(Request(tenant="late"))
    served = [admission.next_ready().tenant for __ in range(4)]
    assert served.count("late") == 2


# -- end-to-end over sockets --------------------------------------------------

UNITS = 4


def start_server(**overrides) -> QueryServer:
    config = ServerConfig(class_key="dcmd", units=UNITS, **overrides)
    return QueryServer(config).start_background()


@pytest.fixture(scope="module")
def server():
    instance = start_server(executors=2)
    yield instance
    instance.stop_background()


def test_roundtrip_and_warm_engine_reuse(server):
    with ServingClient(port=server.port) as client:
        hello = client.hello()
        assert hello["ok"] and hello["warm"]    # preloaded at startup
        reply = client.query("Q5")
        assert reply["ok"] and reply["qid"] == "Q5"
        assert reply["rows"] >= 1
        assert reply["seconds"] >= 0.0
        assert reply["tenant"] == "default"
    with ServingClient(port=server.port) as client:
        assert client.hello()["warm"]           # cache survived
        stats = client.stats()
        assert stats["completed"] >= 1
        assert stats["unhandled"] == 0


def test_query_before_hello_is_a_bad_request(server):
    with ServingClient(port=server.port) as client:
        reply = client.query("Q5")
        assert not reply["ok"]
        assert reply["error"] == "BadRequest"


def test_unknown_query_is_typed_unsupported(server):
    with ServingClient(port=server.port) as client:
        client.hello()
        reply = client.query("Q99")
        assert not reply["ok"]
        assert reply["error"] == "UnsupportedQuery"


def test_burst_beyond_queue_is_shed_with_typed_rejection():
    server = start_server(executors=1, max_queue=2,
                          throttle_seconds=0.2)
    try:
        replies: list[dict] = []
        lock = threading.Lock()

        def one_query() -> None:
            with ServingClient(port=server.port) as client:
                client.hello()
                reply = client.query("Q5")
            with lock:
                replies.append(reply)

        workers = [threading.Thread(target=one_query)
                   for __ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        ok = [reply for reply in replies if reply["ok"]]
        shed = [reply for reply in replies
                if reply.get("error") == "ServerOverloaded"]
        assert len(ok) + len(shed) == 8         # every burst answered
        assert ok and shed                      # some of each
        assert server.counters["rejected"] == len(shed)
        assert server.counters["unhandled"] == 0
    finally:
        server.stop_background()


def test_doomed_deadline_rejected_without_queueing():
    server = start_server(executors=1, throttle_seconds=0.3)
    try:
        server.admission.note_service_time(0.3)
        with ServingClient(port=server.port) as client:
            client.hello()
            # Occupy the single executor with a throttled query.
            occupied = threading.Thread(target=_one_slow_query,
                                        args=(server,))
            occupied.start()
            time.sleep(0.05)
            start = time.monotonic()
            reply = client.query("Q5", deadline=0.05)
            elapsed = time.monotonic() - start
            occupied.join()
        assert not reply["ok"]
        assert reply["error"] == "ServerOverloaded"
        assert elapsed < 0.15                   # no doomed queue ride
        assert "deadline" in reply["message"]
    finally:
        server.stop_background()


def _one_slow_query(server: QueryServer) -> None:
    with ServingClient(port=server.port) as client:
        client.hello()
        client.query("Q5")


def test_weighted_fair_tenants_split_under_contention():
    server = start_server(executors=1, throttle_seconds=0.02,
                          tenant_weights={"gold": 4.0, "bronze": 1.0})
    try:
        stop = time.monotonic() + 1.2

        def hammer(tenant: str) -> None:
            with ServingClient(port=server.port) as client:
                client.hello(tenant=tenant)
                while time.monotonic() < stop:
                    client.query("Q5")

        workers = [threading.Thread(target=hammer, args=(tenant,))
                   for tenant in ("gold", "bronze") for __ in range(3)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        gold = server.per_tenant.get("gold", 0)
        bronze = server.per_tenant.get("bronze", 0)
        assert gold and bronze                  # nobody starved
        assert gold > bronze * 1.5              # 4:1 weights bite
        assert server.counters["unhandled"] == 0
    finally:
        server.stop_background()


def test_graceful_drain_completes_in_flight_queries():
    server = start_server(executors=1, throttle_seconds=0.3)
    try:
        replies: list[dict] = []

        def slow_query() -> None:
            with ServingClient(port=server.port) as client:
                client.hello()
                replies.append(client.query("Q5"))

        worker = threading.Thread(target=slow_query)
        worker.start()
        time.sleep(0.1)                         # query now in flight
        server.stop_background()
        worker.join(timeout=10.0)
        assert replies and replies[0]["ok"]     # finished, not dropped
        assert server.counters["completed"] >= 1
        # The drained server no longer accepts connections.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port),
                                     timeout=1.0).close()
    finally:
        server.stop_background()
