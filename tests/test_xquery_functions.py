"""Built-in function library tests (evaluated through full queries)."""

from __future__ import annotations

import pytest

from repro.errors import XQueryEvalError, XQueryTypeError
from repro.xml.parser import parse_document
from repro.xquery import run_query


def q(text: str, **variables):
    return run_query(text, variables=variables or None)


class TestAggregates:
    def test_count(self):
        assert q("count((1,2,3))") == [3]
        assert q("count(())") == [0]

    def test_sum(self):
        assert q("sum((1,2,3))") == [6]
        assert q("sum(())") == [0]

    def test_sum_with_zero_arg(self):
        assert q("sum((), 99)") == [99]

    def test_avg(self):
        assert q("avg((2, 4))") == [3.0]
        assert q("avg(())") == []

    def test_min_max_numeric(self):
        assert q("min((3,1,2))") == [1]
        assert q("max((3,1,2))") == [3]

    def test_min_max_strings(self):
        assert q("min(('b','a'))") == ["a"]
        assert q("max(('b','a'))") == ["b"]

    def test_sum_non_numeric_raises(self):
        with pytest.raises(XQueryTypeError):
            q("sum(('a','b'))")


class TestStrings:
    def test_concat(self):
        assert q("concat('a', 'b', 'c')") == ["abc"]

    def test_string_join(self):
        assert q("string-join(('a','b'), '-')") == ["a-b"]
        assert q("string-join(('a','b'))") == ["ab"]

    def test_string_length(self):
        assert q("string-length('abcd')") == [4]

    def test_contains(self):
        assert q("contains('hello world', 'lo w')") == [True]
        assert q("contains('x', 'y')") == [False]

    def test_starts_ends_with(self):
        assert q("starts-with('abc', 'ab')") == [True]
        assert q("ends-with('abc', 'bc')") == [True]

    def test_substring(self):
        assert q("substring('hello', 2)") == ["ello"]
        assert q("substring('hello', 2, 3)") == ["ell"]

    def test_substring_before_after(self):
        assert q("substring-before('a=b', '=')") == ["a"]
        assert q("substring-after('a=b', '=')") == ["b"]
        assert q("substring-before('ab', 'z')") == [""]

    def test_normalize_space(self):
        assert q("normalize-space('  a   b  ')") == ["a b"]

    def test_case_functions(self):
        assert q("lower-case('AbC')") == ["abc"]
        assert q("upper-case('AbC')") == ["ABC"]

    def test_tokenize(self):
        assert q("tokenize('a,b,,c', ',')") == ["a", "b", "", "c"]
        assert q("tokenize('', ',')") == []

    def test_matches_replace(self):
        assert q("matches('abc123', '[0-9]+')") == [True]
        assert q("replace('a1b2', '[0-9]', '#')") == ["a#b#"]

    def test_translate(self):
        assert q("translate('abcа', 'abc', 'xy')") == ["xyа"]

    def test_string_of_number(self):
        assert q("string(3.0)") == ["3"]


class TestNumerics:
    def test_number(self):
        assert q("number('4')") == [4.0]

    def test_round_floor_ceiling_abs(self):
        assert q("round(2.5)") == [3]
        assert q("floor(2.9)") == [2]
        assert q("ceiling(2.1)") == [3]
        assert q("abs(-7)") == [7]

    def test_empty_propagates(self):
        assert q("round(())") == []


class TestBooleansSequences:
    def test_not(self):
        assert q("not(1)") == [False]
        assert q("not(())") == [True]

    def test_true_false(self):
        assert q("true()") == [True]
        assert q("false()") == [False]

    def test_empty_exists(self):
        assert q("empty(())") == [True]
        assert q("exists((1))") == [True]

    def test_boolean_function(self):
        assert q("boolean('x')") == [True]
        assert q("boolean(0)") == [False]

    def test_distinct_values(self):
        # Numbers dedupe numerically; strings stay distinct from numbers
        # (untyped '2' is compared as a string per the XQuery rules).
        assert q("distinct-values((1, 2, 1, '2', 'a'))") == [1, 2, "2", "a"]
        assert q("distinct-values((1, 1.0))") == [1]

    def test_reverse(self):
        assert q("reverse((1,2,3))") == [3, 2, 1]

    def test_index_of(self):
        assert q("index-of((10, 20, 10), 10)") == [1, 3]

    def test_subsequence(self):
        assert q("subsequence((1,2,3,4), 2, 2)") == [2, 3]
        assert q("subsequence((1,2,3,4), 3)") == [3, 4]

    def test_cardinality_checks(self):
        assert q("zero-or-one(())") == []
        assert q("exactly-one((5))") == [5]
        assert q("one-or-more((1,2))") == [1, 2]
        with pytest.raises(XQueryTypeError):
            q("exactly-one((1,2))")
        with pytest.raises(XQueryTypeError):
            q("one-or-more(())")

    def test_data(self):
        doc = parse_document("<a>5</a>")
        assert run_query("data(/a)", [doc]) == ["5"]


class TestNodeFunctions:
    def test_name_and_local_name(self):
        doc = parse_document("<a><b:c xmlns:b='u'/></a>") if False else \
            parse_document("<a><c/></a>")
        assert run_query("name(/a/c)", [doc]) == ["c"]
        assert run_query("local-name(/a/c)", [doc]) == ["c"]

    def test_root_function(self):
        doc = parse_document("<a><b/></a>")
        result = run_query("root(/a/b)", [doc])
        assert result == [doc]

    def test_deep_equal_function(self):
        doc = parse_document("<a><b>x</b><b>x</b><b>y</b></a>")
        assert run_query("deep-equal(/a/b[1], /a/b[2])", [doc]) == [True]
        assert run_query("deep-equal(/a/b[1], /a/b[3])", [doc]) == [False]


class TestDocumentAccess:
    def test_doc_by_name(self):
        doc = parse_document("<a/>", name="one.xml")
        assert run_query("doc('one.xml')", [doc]) == [doc]

    def test_doc_missing_raises(self):
        with pytest.raises(XQueryEvalError):
            run_query("doc('missing.xml')", [])

    def test_collection(self):
        docs = [parse_document("<a/>", name="1"),
                parse_document("<b/>", name="2")]
        assert run_query("count(collection())", docs) == [2]

    def test_input_alias(self):
        docs = [parse_document("<a/>", name="1")]
        assert run_query("count(input())", docs) == [1]


class TestArityChecks:
    def test_too_few_arguments(self):
        with pytest.raises(XQueryEvalError):
            q("contains('x')")

    def test_too_many_arguments(self):
        with pytest.raises(XQueryEvalError):
            q("not(1, 2)")

    def test_unknown_function(self):
        with pytest.raises(XQueryEvalError):
            q("no-such-function()")

    def test_variadic_concat(self):
        assert q("concat('a','b','c','d','e')") == ["abcde"]


class TestSequenceEditing:
    def test_insert_before(self):
        assert q("insert-before((1,2,3), 2, (9,9))") == [1, 9, 9, 2, 3]
        assert q("insert-before((1,2), 99, 5)") == [1, 2, 5]
        assert q("insert-before((1,2), 0, 5)") == [5, 1, 2]

    def test_remove(self):
        assert q("remove((1,2,3), 2)") == [1, 3]
        assert q("remove((1,2,3), 99)") == [1, 2, 3]
        assert q("remove((1,2,3), 0)") == [1, 2, 3]


class TestStringCodepoints:
    def test_compare(self):
        assert q("compare('a', 'b')") == [-1]
        assert q("compare('b', 'a')") == [1]
        assert q("compare('a', 'a')") == [0]
        assert q("compare((), 'a')") == []

    def test_string_to_codepoints(self):
        assert q("string-to-codepoints('AB')") == [65, 66]
        assert q("string-to-codepoints('')") == []

    def test_codepoints_to_string(self):
        assert q("codepoints-to-string((72, 105))") == ["Hi"]
        with pytest.raises(XQueryEvalError):
            q("codepoints-to-string(-5)")

    def test_roundtrip(self):
        assert q("codepoints-to-string("
                 "string-to-codepoints('xyz'))") == ["xyz"]


class TestDateComponents:
    def test_components_from_string(self):
        assert q("year-from-date('2003-05-09')") == [2003]
        assert q("month-from-date('2003-05-09')") == [5]
        assert q("day-from-date('2003-05-09')") == [9]

    def test_components_from_cast_date(self):
        assert q("year-from-date(xs:date('1999-12-31'))") == [1999]

    def test_empty_propagates(self):
        assert q("year-from-date(())") == []

    def test_invalid_date_raises(self):
        with pytest.raises(XQueryEvalError):
            q("year-from-date('not-a-date')")

    def test_windowing_by_year(self):
        doc = parse_document(
            "<r><d>2001-03-04</d><d>2002-05-06</d><d>2001-09-09</d></r>")
        assert run_query(
            "count(/r/d[year-from-date(.) = 2001])", [doc]) == [2]
