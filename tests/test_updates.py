"""Update-workload tests (paper planned extension #2).

Invariant checked throughout: after any mix of inserts, value updates
and deletes, every engine must answer the experiment queries identically
to a freshly-loaded native engine holding the equivalent final corpus.
"""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import NativeEngine, SqlServerEngine, \
    XCollectionEngine, XColumnEngine, make_engines
from repro.errors import BenchmarkError, UnsupportedOperation
from repro.workload import bind_params
from repro.workload.updates import (
    UPDATE_TARGETS,
    make_update_stream,
    run_update_stream,
)

ENGINE_FACTORIES = (NativeEngine, XColumnEngine, XCollectionEngine,
                    SqlServerEngine)


def load(factory, corpus):
    engine = factory()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestStreamGeneration:
    def test_deterministic(self):
        first = make_update_stream("dcmd", 30, count=20, seed=3)
        second = make_update_stream("dcmd", 30, count=20, seed=3)
        assert first == second

    def test_mix_of_kinds(self):
        stream = make_update_stream("dcmd", 30, count=40)
        kinds = {op.kind for op in stream}
        assert kinds == {"insert", "update", "delete"}

    def test_inserts_renumbered_past_existing(self):
        stream = make_update_stream("dcmd", 30, count=40)
        for op in stream:
            if op.kind == "insert":
                number = int(op.name.removeprefix("order")
                             .removesuffix(".xml"))
                assert number > 30

    def test_single_document_class_rejected(self):
        with pytest.raises(BenchmarkError):
            make_update_stream("tcsd", 30)

    def test_tcmd_stream(self):
        stream = make_update_stream("tcmd", 30, count=10)
        inserts = [op for op in stream if op.kind == "insert"]
        assert all(op.name.startswith("article") for op in inserts)
        assert all("<article" in op.text for op in inserts)


@pytest.mark.parametrize("factory", ENGINE_FACTORIES,
                         ids=lambda f: f.key)
class TestInsertDelete:
    def test_insert_makes_document_queryable(self, factory,
                                             small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(factory, corpus)
        insert = next(op for op in
                      make_update_stream("dcmd", 30, count=10, seed=1)
                      if op.kind == "insert")
        name, text = insert.name, insert.text
        engine.insert_document(name, text)
        new_id = name.removeprefix("order").removesuffix(".xml")
        params = dict(bind_params("Q5", "dcmd", 30), id=new_id)
        assert engine.execute("Q5", params), factory.key

    def test_delete_makes_document_invisible(self, factory,
                                             small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(factory, corpus)
        params = bind_params("Q5", "dcmd", 30)
        assert engine.execute("Q5", params)
        engine.delete_document(f"order{params['id']}.xml")
        assert engine.execute("Q5", params) == []

    def test_update_changes_query_result(self, factory, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(factory, corpus)
        id_path, target, new_value = UPDATE_TARGETS["dcmd"]
        changed = engine.update_value(id_path, "7", target, new_value)
        assert changed >= 1
        # Q8 reads ship_type, untouched; read status through Q12 / raw.
        if isinstance(engine, NativeEngine):
            status = engine.run_xquery(
                "string(collection()/order[@id='7']//order_status)")
            assert status == [new_value]


class TestCrossEngineConsistencyAfterStream:
    def test_all_engines_agree_after_update_stream(self, small_corpora):
        corpus = small_corpora["dcmd"]
        stream = make_update_stream("dcmd", 30, count=25, seed=9)
        results = {}
        for factory in ENGINE_FACTORIES:
            engine = load(factory, corpus)
            run_update_stream(engine, "dcmd", stream)
            snapshot = []
            for probe_id in ("3", "7", "15", "31", "33"):
                params = dict(bind_params("Q5", "dcmd", 30), id=probe_id)
                snapshot.append(tuple(engine.execute("Q5", params)))
                params = dict(bind_params("Q8", "dcmd", 30), id=probe_id)
                snapshot.append(tuple(engine.execute("Q8", params)))
            results[factory.key] = snapshot
        assert len(set(map(tuple, results.values()))) == 1, results

    def test_stats_cover_all_kinds(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(NativeEngine, corpus)
        stream = make_update_stream("dcmd", 30, count=25, seed=9)
        stats = run_update_stream(engine, "dcmd", stream)
        assert sum(stats.counts.values()) == 25
        for kind in stats.counts:
            assert stats.mean_ms(kind) >= 0.0

    def test_tcmd_stream_runs_on_native(self, small_corpora):
        corpus = small_corpora["tcmd"]
        engine = load(NativeEngine, corpus)
        stream = make_update_stream("tcmd", 30, count=15, seed=4)
        stats = run_update_stream(engine, "tcmd", stream)
        assert sum(stats.counts.values()) == 15


class TestIndexMaintenance:
    def test_native_index_follows_inserts(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(NativeEngine, corpus)
        inserts = [op for op in
                   make_update_stream("dcmd", 30, count=10, seed=2)
                   if op.kind == "insert"]
        engine.insert_document(inserts[0].name, inserts[0].text)
        new_id = inserts[0].name.removeprefix("order") \
                                .removesuffix(".xml")
        assert new_id in engine._indexes["order/@id"]

    def test_shredded_value_index_follows_updates(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(SqlServerEngine, corpus)
        index = engine.store.database.index_for("order", "id_c")
        before = len(index)
        engine.delete_document("order5.xml")
        assert len(engine.store.database.index_for("order", "id_c")) == \
            before - 1

    def test_xcolumn_side_rows_follow_deletes(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(XColumnEngine, corpus)
        before = len(engine.database.table("side_order_id"))
        engine.delete_document("order5.xml")
        assert len(engine.database.table("side_order_id")) == before - 1

    def test_unsupported_on_base(self, small_corpora):
        corpus = small_corpora["dcmd"]

        class Stub(NativeEngine):
            insert_document = NativeEngine.__bases__[0].insert_document

        engine = Stub()
        engine.timed_load(corpus["class"], corpus["texts"])
        with pytest.raises(UnsupportedOperation):
            engine.insert_document("x.xml", "<order/>")
