"""TPC-W substrate tests: population invariants and XML mappings."""

from __future__ import annotations

import pytest

from repro.tpcw import (
    ALL_TABLES,
    TABLES_BY_NAME,
    build_catalog,
    build_order_documents,
    flat_documents,
    flat_translation,
    populate,
)
from repro.xml.serializer import serialize


@pytest.fixture(scope="module")
def population():
    return populate(num_items=40, num_orders=60, seed=5)


class TestSchema:
    def test_all_tables_present(self):
        names = {table.name for table in ALL_TABLES}
        assert {"ITEM", "AUTHOR", "AUTHOR_2", "PUBLISHER", "ADDRESS",
                "COUNTRY", "CUSTOMER", "ORDERS", "ORDER_LINE",
                "CC_XACTS", "ITEM_AUTHOR"} == names

    def test_primary_keys_in_columns(self):
        for table in ALL_TABLES:
            assert table.primary_key in table.columns

    def test_foreign_keys_reference_real_tables(self):
        for table in ALL_TABLES:
            for fk in table.foreign_keys:
                assert fk.column in table.columns
                target = TABLES_BY_NAME[fk.table]
                assert fk.target_column in target.columns


class TestPopulation:
    def test_cardinalities(self, population):
        assert len(population.item) == 40
        assert len(population.orders) == 60
        assert len(population.cc_xacts) == 60

    def test_ids_sequential(self, population):
        assert [row["i_id"] for row in population.item] == \
            list(range(1, 41))

    def test_every_item_has_authors(self, population):
        linked = {link["ia_i_id"] for link in population.item_author}
        assert linked == set(range(1, 41))

    def test_foreign_keys_resolve(self, population):
        author_ids = {row["a_id"] for row in population.author}
        for link in population.item_author:
            assert link["ia_a_id"] in author_ids
        address_ids = {row["addr_id"] for row in population.address}
        for customer in population.customer:
            assert customer["c_addr_id"] in address_ids

    def test_order_lines_cover_all_orders(self, population):
        orders_with_lines = {line["ol_o_id"]
                             for line in population.order_line}
        assert orders_with_lines == set(range(1, 61))

    def test_one_cc_xact_per_order(self, population):
        assert sorted(x["cx_o_id"] for x in population.cc_xacts) == \
            list(range(1, 61))

    def test_some_publishers_missing_fax(self, population):
        faxes = [row["pub_fax"] for row in population.publisher]
        assert any(fax is None for fax in faxes)

    def test_deterministic(self):
        assert populate(num_items=10, num_orders=10, seed=3).item == \
            populate(num_items=10, num_orders=10, seed=3).item

    def test_seed_changes_data(self):
        first = populate(num_items=10, num_orders=10, seed=3)
        second = populate(num_items=10, num_orders=10, seed=4)
        assert first.item != second.item

    def test_rows_accessor(self, population):
        assert population.rows("ORDER_LINE") is population.order_line


class TestCatalogMapping:
    def test_one_item_element_per_item(self, population):
        catalog = build_catalog(population)
        items = list(catalog.root_element.child_elements("item"))
        assert len(items) == 40

    def test_item_attributes_and_depth(self, population):
        catalog = build_catalog(population)
        item = catalog.root_element.first_child("item")
        assert item.get("id") == "1"
        # nested join mapping adds depth: item/authors/author/
        # contact_information/mailing_address/country/name
        country_name = item.find(
            "authors/author/contact_information/mailing_address/"
            "country/name")
        assert country_name is not None

    def test_publisher_folded_into_item(self, population):
        catalog = build_catalog(population)
        item = catalog.root_element.first_child("item")
        publisher = item.first_child("publisher")
        assert publisher.first_child("name") is not None

    def test_null_columns_omitted(self, population):
        catalog = build_catalog(population)
        faxes = list(catalog.root_element.descendant_elements("fax"))
        publishers = list(
            catalog.root_element.descendant_elements("publisher"))
        assert len(faxes) < len(publishers)

    def test_authors_in_rank_order(self, population):
        catalog = build_catalog(population)
        by_item = {}
        for link in population.item_author:
            by_item.setdefault(link["ia_i_id"], []).append(link)
        for item in catalog.root_element.child_elements("item"):
            links = sorted(by_item[int(item.get("id"))],
                           key=lambda l: l["ia_rank"])
            ids = [author.get("id") for author in
                   item.find_all("authors/author")]
            assert ids == [str(l["ia_a_id"]) for l in links]

    def test_document_named_catalog(self, population):
        assert build_catalog(population).name == "catalog.xml"


class TestFlatTranslation:
    def test_row_per_tuple(self, population):
        document = flat_translation("CUSTOMER", population.customer)
        rows = list(document.root_element.child_elements("customer"))
        assert len(rows) == len(population.customer)

    def test_columns_become_elements(self, population):
        document = flat_translation("COUNTRY", population.country)
        row = document.root_element.first_child("country")
        assert row.first_child("co_name") is not None

    def test_flat_structure_is_flat(self, population):
        document = flat_translation("ADDRESS", population.address)
        row = document.root_element.first_child("address")
        assert all(not child.has_element_children()
                   for child in row.child_elements())

    def test_null_column_omitted(self, population):
        document = flat_translation("ADDRESS", population.address)
        rows = list(document.root_element.child_elements("address"))
        street2_counts = [len(list(row.child_elements("addr_street2")))
                          for row in rows]
        assert 0 in street2_counts      # some NULL street2 rows

    def test_flat_documents_bundle(self, population):
        documents = flat_documents(population)
        assert {doc.name for doc in documents} == {
            "customer.xml", "item.xml", "author.xml", "address.xml",
            "country.xml"}


class TestOrderDocuments:
    def test_one_document_per_order(self, population):
        documents = build_order_documents(population)
        assert len(documents) == 60
        assert documents[0].name == "order1.xml"

    def test_order_contains_lines_in_order(self, population):
        documents = build_order_documents(population)
        document = documents[4]
        ids = [line.get("id") for line in document.root_element.find_all(
            "order_lines/order_line")]
        assert ids == sorted(ids, key=int)
        assert len(ids) >= 1

    def test_status_nested_two_levels(self, population):
        document = build_order_documents(population)[0]
        status = document.root_element.find(
            "shipping_information/delivery/order_status")
        assert status is not None

    def test_credit_card_embedded(self, population):
        document = build_order_documents(population)[0]
        card = document.root_element.find(
            "billing_information/credit_card")
        assert card.first_child("cc_number") is not None
        assert "XXXX" in card.first_child("cc_number").text_content()

    def test_serializes_well_formed(self, population):
        from repro.xml.parser import parse_document
        document = build_order_documents(population)[7]
        text = serialize(document)
        assert parse_document(text).root_element.get("id") == \
            document.root_element.get("id")
