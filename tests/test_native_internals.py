"""Native engine internals: index building, acceleration, retargeting."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import NativeEngine
from repro.workload import bind_params


def load(corpus):
    engine = NativeEngine()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestValueIndexes:
    def test_attribute_index_keys_are_values(self, small_corpora):
        engine = load(small_corpora["dcmd"])
        index = engine._indexes["order/@id"]
        assert "1" in index and "30" in index
        assert all(node.tag == "order"
                   for nodes in index.values() for node in nodes)

    def test_element_index_keys_are_text(self, small_corpora):
        engine = load(small_corpora["tcsd"])
        index = engine._indexes["hw"]
        assert "word_1" in index
        assert all(node.tag == "hw"
                   for nodes in index.values() for node in nodes)

    def test_index_covers_every_document(self, small_corpora):
        engine = load(small_corpora["tcmd"])
        index = engine._indexes["article/@id"]
        assert len(index) == 30

    def test_root_element_attribute_indexed(self, small_corpora):
        # order/@id: the root element itself carries the attribute.
        engine = load(small_corpora["dcmd"])
        (node,) = engine._indexes["order/@id"]["5"]
        assert node.parent.kind == "document"


class TestAcceleratedPlans:
    def test_planner_probe_used_for_sd_point_query(self, small_corpora,
                                                   monkeypatch):
        engine = load(small_corpora["dcsd"])
        calls = {"probe": 0}
        original = engine._run_index_plan

        def counting(*args, **kwargs):
            calls["probe"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(engine, "_run_index_plan", counting)
        engine.execute("Q5", bind_params("Q5", "dcsd", 30))
        assert calls["probe"] == 1

    def test_md_classes_never_accelerate(self, small_corpora,
                                         monkeypatch):
        """Collection iteration is the architectural cost being modeled
        for multi-document classes (see module docstring)."""
        engine = load(small_corpora["dcmd"])
        monkeypatch.setattr(
            engine, "_run_index_plan",
            lambda *a, **k: pytest.fail("MD class used a planner probe"))
        monkeypatch.setattr(
            engine, "_run_accelerated",
            lambda *a, **k: pytest.fail("MD class used acceleration"))
        engine.execute("Q5", bind_params("Q5", "dcmd", 30))

    def test_same_named_tags_at_different_paths_index_separately(self):
        """Regression: a slashed index path must match the full relative
        path, not just the last segment (two ``name`` tags here)."""
        from repro.xml.parser import parse_document

        engine = NativeEngine()
        text = ("<catalog>"
                "<item><authors><author><name>A. Author</name>"
                "</author></authors>"
                "<publisher><name>Pub House</name></publisher>"
                "</item></catalog>")
        document = parse_document(text, name="cat.xml")
        engine._collection.add(document)
        index: dict = {}
        engine._index_document("publisher/name", index, document)
        assert list(index) == ["Pub House"]
        index = {}
        engine._index_document("author/name", index, document)
        assert list(index) == ["A. Author"]
        # A bare tag still matches anywhere (backward compatible).
        index = {}
        engine._index_document("name", index, document)
        assert sorted(index) == ["A. Author", "Pub House"]


class TestUpdateRetargeting:
    def test_element_index_follows_value_update(self, small_corpora):
        """Updating an indexed element's text must move its index entry
        (the hw index after a headword change)."""
        engine = load(small_corpora["tcsd"])
        # TC/SD is single-document; drive update_value directly against
        # the hw anchor itself.
        changed = engine.update_value("hw", "word_1", "hw",
                                      "renamed_word")
        assert changed >= 1
        index = engine._indexes["hw"]
        assert "word_1" not in index
        assert "renamed_word" in index
        # and the accelerated plan sees the new key
        params = dict(bind_params("Q5", "tcsd", 30),
                      word="renamed_word")
        assert engine.execute("Q5", params)

    def test_update_returns_zero_for_missing_key(self, small_corpora):
        engine = load(small_corpora["dcmd"])
        assert engine.update_value("order/@id", "99999",
                                   "order_status", "X") == 0

    def test_unindexed_update_scans_documents(self, small_corpora):
        engine = NativeEngine()
        corpus = small_corpora["dcmd"]
        engine.timed_load(corpus["class"], corpus["texts"])
        # no indexes created: _match_anchors builds a scratch index
        changed = engine.update_value("order/@id", "7", "order_status",
                                      "SHIPPED")
        assert changed == 1
        assert engine.run_xquery(
            "string(collection()/order[@id='7']//order_status)") == \
            ["SHIPPED"]
