"""Crash-recovery tests for the durable sharded engine.

The contract under test: every write acknowledged before a kill -9
(simulated by :meth:`ShardedEngine.abort`) is readable under ``strong``
after a cold start from the data directory, and recovery lands on the
*exact* committed sequence — via newest-valid checkpoint + WAL replay,
falling back past damaged checkpoints and skipping corrupt WAL records
with typed incidents instead of crashing.
"""

from __future__ import annotations

import random
import re
import struct

import pytest

from repro.core.shard import ShardedEngine
from repro.errors import RecoveryError, ShardError

UPDATE = ("order/@id", "order_status")

_HEADER_SIZE = struct.calcsize("<4sIIQ")
_FRAME_HEADER = struct.Struct("<II")


@pytest.fixture
def corpus(small_corpora):
    return small_corpora["dcmd"]


def durable_engine(corpus, data_dir, **kwargs):
    kwargs.setdefault("fsync", "always")
    engine = ShardedEngine("native", shards=2, data_dir=data_dir,
                           **kwargs)
    engine.timed_load(corpus["class"], list(corpus["texts"]))
    return engine


def recovered_engine(data_dir, **kwargs):
    return ShardedEngine("native", shards=2, recover_dir=data_dir,
                         **kwargs)


def put(engine, order_id: str, token: str) -> int:
    """One acknowledged write; returns the committed sequence."""
    matched = engine.update_value(UPDATE[0], order_id, UPDATE[1],
                                  token)
    assert matched == 1
    return engine.durability_state()["committed_seq"]


def status_of(engine, order_id: str) -> str:
    values = engine.adhoc(
        "collection()/order[@id = $id]//order_status",
        {"id": order_id}).values
    assert len(values) == 1
    return values[0]


def ids_of(engine, order_id: str) -> list:
    return engine.adhoc("collection()/order[@id = $id]",
                        {"id": order_id}).values


def wal_segments(data_dir, shard=0):
    return sorted((data_dir / f"shard-{shard}" / "wal")
                  .glob("seg-*.wal"))


class TestKill9Recovery:
    def test_acked_writes_survive_kill9(self, corpus, tmp_path):
        engine = durable_engine(corpus, tmp_path)
        try:
            put(engine, "1", "tokA")
            put(engine, "2", "tokB")
            committed = engine.durability_state()["committed_seq"]
            assert committed == 2
        finally:
            engine.abort()
        assert ShardedEngine.can_recover(tmp_path)

        recovered = recovered_engine(tmp_path)
        try:
            report = recovered.last_recovery_report
            assert report["committed_seq"] == committed
            assert "tokA" in status_of(recovered, "1")
            assert "tokB" in status_of(recovered, "2")
            # The recovered engine keeps writing: seq continues, no
            # renumbering.
            assert put(recovered, "3", "tokC") == committed + 1
        finally:
            recovered.close()

    def test_structural_writes_survive_kill9(self, corpus, tmp_path):
        name, text = corpus["texts"][0]
        victim_id = re.search(r'id="([^"]+)"', text).group(1)
        extra = re.sub(r'id="[^"]+"', 'id="ZZZ9"', text, count=1)
        engine = durable_engine(corpus, tmp_path)
        try:
            engine.insert_document("zzz9.xml", extra)
            engine.delete_document(name)
            put(engine, "ZZZ9", "tokZ")
        finally:
            engine.abort()

        recovered = recovered_engine(tmp_path)
        try:
            assert len(ids_of(recovered, "ZZZ9")) == 1
            assert ids_of(recovered, victim_id) == []
            assert "tokZ" in status_of(recovered, "ZZZ9")
        finally:
            recovered.close()

    def test_double_recovery_is_stable(self, corpus, tmp_path):
        engine = durable_engine(corpus, tmp_path)
        try:
            put(engine, "4", "tokD")
        finally:
            engine.abort()
        once = recovered_engine(tmp_path)
        once.abort()
        twice = recovered_engine(tmp_path)
        try:
            assert twice.last_recovery_report["committed_seq"] == 1
            assert "tokD" in status_of(twice, "4")
        finally:
            twice.close()

    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_fsync_policy_matrix(self, corpus, tmp_path, fsync):
        # abort() models a process kill: under every policy the frames
        # already left the process (write + flush), so nothing acked is
        # lost.  The policies differ only in machine-crash exposure.
        engine = durable_engine(corpus, tmp_path, fsync=fsync)
        try:
            put(engine, "5", "tokE")
            put(engine, "6", "tokF")
        finally:
            engine.abort()
        recovered = recovered_engine(tmp_path, fsync=fsync)
        try:
            assert recovered.last_recovery_report["committed_seq"] == 2
            assert "tokE" in status_of(recovered, "5")
            assert "tokF" in status_of(recovered, "6")
        finally:
            recovered.close()

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ShardError):
            ShardedEngine("native", shards=2, data_dir=tmp_path,
                          fsync="sometimes")

    def test_recover_requires_manifest(self, tmp_path):
        assert not ShardedEngine.can_recover(tmp_path)
        with pytest.raises(RecoveryError):
            recovered_engine(tmp_path)

    @pytest.mark.parametrize("seed", [3, 7])
    def test_restart_lands_exactly_at_committed_seq(self, corpus,
                                                    tmp_path, seed):
        """Property: across random writes and repeated kill -9 +
        recover cycles, the recovered sequence equals the last acked
        sequence and the last acked value per id is the one read."""
        rng = random.Random(seed)
        mirror: dict[str, str] = {}
        last_seq = 0
        engine = durable_engine(corpus, tmp_path)
        try:
            for step in range(1, 13):
                order_id = str(rng.randint(1, corpus["units"]))
                token = f"tok{seed}x{step}"
                last_seq = put(engine, order_id, token)
                mirror[order_id] = token
                if step in (4, 8):
                    engine.abort()
                    engine = recovered_engine(tmp_path)
                    report = engine.last_recovery_report
                    assert report["committed_seq"] == last_seq
            engine.abort()
            engine = recovered_engine(tmp_path)
            assert (engine.last_recovery_report["committed_seq"]
                    == last_seq)
            assert engine.durability_state()["committed_seq"] \
                == last_seq == 12
            for order_id, token in mirror.items():
                assert token in status_of(engine, order_id)
        finally:
            engine.close()


class TestCorruptionHandling:
    def corrupt_frame(self, path, frame_index):
        """CRC-break one frame of a segment in place."""
        data = bytearray(path.read_bytes())
        offset = _HEADER_SIZE
        for __ in range(frame_index):
            length, __crc = _FRAME_HEADER.unpack_from(data, offset)
            offset += _FRAME_HEADER.size + length
        data[offset + _FRAME_HEADER.size] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_midlog_crc_reported_replay_continues(self, corpus,
                                                  tmp_path):
        engine = durable_engine(corpus, tmp_path)
        try:
            for seq in range(1, 5):
                put(engine, str(seq), f"tok{seq}")
        finally:
            engine.abort()
        # Damage the second record of shard 0's log.  Every shard's
        # WAL carries every update (updates scatter), so shard 1's
        # intact copy still replays the write.
        self.corrupt_frame(wal_segments(tmp_path, shard=0)[-1], 1)

        recovered = recovered_engine(tmp_path)
        try:
            report = recovered.last_recovery_report
            assert report["corrupt_records"] >= 1
            assert report["committed_seq"] == 4
            assert any("WalCorruption" in incident
                       for incident in recovered.incidents)
            assert "tok4" in status_of(recovered, "4")
        finally:
            recovered.close()

    def test_deleted_snapshot_falls_back_to_previous(self, corpus,
                                                     tmp_path):
        engine = durable_engine(corpus, tmp_path)
        try:
            put(engine, "1", "tokA")
            first = engine.checkpoint()
            put(engine, "2", "tokB")
            second = engine.checkpoint()
            assert second["seq"] > first["seq"]
        finally:
            engine.abort()
        for path in (tmp_path / "checkpoints").glob(
                f"ckpt-{second['seq']:012d}-shard*.rxs"):
            path.unlink()

        recovered = recovered_engine(tmp_path)
        try:
            report = recovered.last_recovery_report
            assert report["checkpoint_fallbacks"] == 1
            assert report["checkpoint_seq"] == first["seq"]
            # The WAL suffix above the fallback checkpoint survives
            # compaction (KEEP=2), so nothing acked is lost.
            assert report["committed_seq"] == 2
            assert "tokA" in status_of(recovered, "1")
            assert "tokB" in status_of(recovered, "2")
        finally:
            recovered.close()


class TestCheckpointBounds:
    def test_checkpoint_truncates_journal_and_wal(self, corpus,
                                                  tmp_path):
        engine = durable_engine(corpus, tmp_path,
                                wal_segment_bytes=4096)
        try:
            for seq in range(1, 9):
                put(engine, str(seq), f"tok{seq}")
            before = engine.journal_bytes()
            assert before > 0
            report = engine.checkpoint()
            assert report["seq"] == 8
            assert engine.journal_bytes() == 0
            # One more checkpoint moves the compaction cutoff up to
            # seq 8: the WAL shrinks to (near) empty live segments.
            put(engine, "9", "tok9")
            engine.checkpoint()
            assert engine.wal_disk_bytes() \
                <= engine.shards * 2 * 4096
        finally:
            engine.close()

    def test_replicated_recovery_stamps_replicas(self, corpus,
                                                 tmp_path):
        engine = durable_engine(corpus, tmp_path, replicas=1)
        try:
            put(engine, "1", "tokA")
        finally:
            engine.abort()
        recovered = recovered_engine(tmp_path, replicas=1)
        try:
            staleness = recovered.staleness_by_tier()
            assert staleness["committed_seq"] == 1
            assert staleness["live_rows"] == staleness["replicas"]
            strong = staleness["tiers"]["strong"]
            assert strong["max_staleness"] == 0
        finally:
            recovered.close()
