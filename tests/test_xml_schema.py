"""Schema description tests: structure, diagrams, conformance checks."""

from __future__ import annotations

from repro.xml.parser import parse_document
from repro.xml.schema import SchemaElement, conforms, render_diagram


def sample_schema() -> SchemaElement:
    root = SchemaElement("lib")
    book = root.child("book", repeated=True)
    book.attributes.append("id")
    book.child("title")
    book.child("year", optional=True)
    return root


class TestSchemaElement:
    def test_child_returns_new_node(self):
        root = SchemaElement("r")
        child = root.child("c", optional=True)
        assert child.optional
        assert root.children == [child]

    def test_find_depth_first(self):
        schema = sample_schema()
        assert schema.find("title").name == "title"
        assert schema.find("nope") is None

    def test_walk_yields_all_types(self):
        names = [node.name for node in sample_schema().walk()]
        assert names == ["lib", "book", "title", "year"]

    def test_element_count(self):
        assert sample_schema().element_count() == 4

    def test_max_depth(self):
        assert sample_schema().max_depth() == 3

    def test_recursive_schema_walk_terminates(self):
        root = SchemaElement("sec")
        root.children.append(root)
        assert [n.name for n in root.walk()] == ["sec"]

    def test_recursive_schema_depth_terminates(self):
        root = SchemaElement("sec")
        root.children.append(root)
        assert root.max_depth() >= 1


class TestRenderDiagram:
    def test_mandatory_brackets_optional_parens(self):
        diagram = render_diagram(sample_schema())
        assert "[title]" in diagram
        assert "(year)" in diagram

    def test_repeated_star_and_attributes(self):
        diagram = render_diagram(sample_schema())
        assert "[book]* @id" in diagram

    def test_title_header(self):
        diagram = render_diagram(sample_schema(), "Figure X")
        assert diagram.startswith("Figure X\n========")

    def test_recursion_marker(self):
        root = SchemaElement("sec")
        root.children.append(root)
        assert "(recursive)" in render_diagram(root)

    def test_mixed_marker(self):
        root = SchemaElement("p", mixed=True)
        assert "~" in render_diagram(root)


class TestConforms:
    def test_valid_document(self):
        doc = parse_document(
            '<lib><book id="1"><title>t</title></book></lib>')
        assert conforms(doc, sample_schema()) == []

    def test_wrong_root(self):
        doc = parse_document("<shop/>")
        violations = conforms(doc, sample_schema())
        assert any("root element" in v for v in violations)

    def test_unknown_element(self):
        doc = parse_document(
            '<lib><book id="1"><title>t</title><isbn/></book></lib>')
        assert any("isbn" in v for v in conforms(doc, sample_schema()))

    def test_missing_mandatory_child(self):
        doc = parse_document('<lib><book id="1"/></lib>')
        assert any("missing mandatory" in v
                   for v in conforms(doc, sample_schema()))

    def test_optional_child_may_be_absent(self):
        doc = parse_document(
            '<lib><book id="1"><title>t</title></book></lib>')
        assert conforms(doc, sample_schema()) == []

    def test_repetition_of_nonrepeated_flagged(self):
        doc = parse_document(
            '<lib><book id="1"><title>a</title><title>b</title>'
            "</book></lib>")
        assert any("occurs 2 times" in v
                   for v in conforms(doc, sample_schema()))

    def test_unknown_attribute_flagged(self):
        doc = parse_document(
            '<lib><book id="1" zz="9"><title>t</title></book></lib>')
        assert any("@zz" in v for v in conforms(doc, sample_schema()))

    def test_repeated_child_allowed(self):
        doc = parse_document(
            '<lib><book id="1"><title>a</title></book>'
            '<book id="2"><title>b</title></book></lib>')
        assert conforms(doc, sample_schema()) == []
