"""Per-shard read replicas, consistency tiers and the typed API.

The contracts under test:

* the typed surface (`repro.api`) validates and round-trips through
  the wire forms, and old-style dicts stay accepted via the shims;
* replica rows answer byte-identically to the primaries once the
  journal has shipped, and each consistency tier sees exactly the
  staleness it promises;
* journal shipping survives the edge cases: duplicate sequence
  batches, replica death mid-ship, and primary failover that must
  first catch the promoted replica up from the journal;
* the server threads consistency and write sequences end to end
  through ``Session``.
"""

from __future__ import annotations

import pytest

from repro.api import (
    Consistency,
    QueryRequest,
    QueryResponse,
    SessionOptions,
    bounded_staleness,
    consistency_scope,
    current_consistency,
    read_your_writes,
)
from repro.core.shard import ShardedEngine
from repro.engines import create
from repro.errors import ConsistencyError, ServerError
from repro.workload.params import bind_params
from repro.workload.queries import workload_for_class

UPDATE = ("order/@id", "order_status")


def load_replicated(corpus, shards=2, replicas=1, **kwargs):
    engine = ShardedEngine("native", shards=shards, replicas=replicas,
                           **kwargs)
    engine.timed_load(corpus["class"], list(corpus["texts"]))
    return engine


def status_of(engine, order_id: str, consistency="strong") -> str:
    with consistency_scope(consistency):
        values = engine.adhoc(
            "collection()/order[@id = $id]//order_status",
            {"id": order_id}).values
    assert len(values) == 1
    return values[0]


class TestConsistencyType:
    def test_parse_tier_strings(self):
        assert Consistency.parse("strong").tier == "strong"
        assert Consistency.parse("eventual").tier == "eventual"
        parsed = Consistency.parse("bounded_staleness:5")
        assert parsed.tier == "bounded_staleness"
        assert parsed.max_lag == 5
        parsed = Consistency.parse("read_your_writes:7")
        assert parsed.min_seq == 7

    def test_parse_passthrough_none_and_wire(self):
        assert Consistency.parse(None).tier == "strong"
        original = bounded_staleness(3)
        assert Consistency.parse(original) is original
        assert Consistency.parse(original.to_wire()) == original

    def test_invalid_tiers_raise_typed(self):
        with pytest.raises(ConsistencyError):
            Consistency(tier="linearizable")
        with pytest.raises(ConsistencyError):
            Consistency.parse("bounded_staleness:abc")
        with pytest.raises(ConsistencyError):
            Consistency.parse("eventual:3")
        with pytest.raises(ConsistencyError):
            Consistency(tier="bounded_staleness", max_lag=-1)

    def test_scope_is_nested_and_restored(self):
        assert current_consistency() is None
        with consistency_scope("eventual") as outer:
            assert current_consistency() is outer
            with consistency_scope(read_your_writes(4)) as inner:
                assert current_consistency() is inner
            assert current_consistency() is outer
        assert current_consistency() is None


class TestTypedWireForms:
    def test_session_options_round_trip(self):
        options = SessionOptions(engine="native", class_key="dcmd",
                                 units=12, shards=2, replicas=2,
                                 tenant="acme",
                                 consistency="bounded_staleness:2")
        wire = options.to_wire()
        assert wire["op"] == "hello"
        assert wire["replicas"] == 2
        assert SessionOptions.from_wire(wire) == options

    def test_session_options_validation(self):
        with pytest.raises(ConsistencyError):
            SessionOptions(replicas=1, shards=0)
        with pytest.raises(ConsistencyError):
            SessionOptions(replicas=-1, shards=2)

    def test_query_request_round_trip(self):
        request = QueryRequest(qid="Q1", params={"id": "3"},
                               deadline=0.5, tenant="acme",
                               consistency=read_your_writes(9))
        wire = request.to_wire()
        assert wire["op"] == "query"
        assert QueryRequest.from_wire(wire) == request
        # Old-style dicts without the typed fields still parse.
        legacy = QueryRequest.from_wire({"op": "query", "qid": "q1"})
        assert legacy.qid == "q1"
        assert legacy.consistency is None

    def test_query_response_round_trip(self):
        ok = QueryResponse(ok=True, qid="Q1", rows=4, seconds=0.01,
                           queued_ms=1.5, tenant="acme", seq=3)
        assert QueryResponse.from_wire(ok.to_wire()) == ok
        error = QueryResponse(ok=False, error="QueryTimeout",
                              message="boom")
        decoded = QueryResponse.from_wire(error.to_wire())
        assert not decoded.ok
        assert decoded.error == "QueryTimeout"


class TestReplicaReads:
    def test_replica_row_matches_oracle(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = create("native")
        oracle.timed_load(corpus["class"], list(corpus["texts"]))
        engine = load_replicated(corpus)
        try:
            for query in workload_for_class("dcmd")[:6]:
                params = bind_params(query.qid, "dcmd",
                                     corpus["units"])
                expected = oracle.execute(query.qid, dict(params))
                with consistency_scope("eventual"):
                    assert engine.execute(query.qid,
                                          dict(params)) == expected
        finally:
            engine.close()
            oracle.close()

    def test_strong_reads_never_touch_replicas(self, small_corpora):
        from repro.obs import Recorder, observing
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus)
        recorder = Recorder(name="test")
        try:
            with observing(recorder):
                params = bind_params("Q1", "dcmd", corpus["units"])
                with consistency_scope("strong"):
                    engine.execute("Q1", dict(params))
                with consistency_scope("eventual"):
                    engine.execute("Q1", dict(params))
            counters = recorder.counters.snapshot()
            assert counters.get("shard.replica_reads", 0) == 1
        finally:
            engine.close()

    def test_row_label_and_state_advertise_replicas(self,
                                                    small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus, shards=2, replicas=2)
        try:
            assert "+2r" in engine.row_label
            state = engine.replication_state()
            assert state["replicas"] == 2
            assert len(state["rows"]) == 2
            assert all(row["alive"] for row in state["rows"])
            # 2 primaries + 4 replica workers report PIDs.
            assert len(engine.worker_pids()) == 6
        finally:
            engine.close()


class TestJournalShipping:
    def test_sync_ship_keeps_replicas_current(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokA")
            state = engine.replication_state()
            assert state["committed_seq"] == 1
            assert state["rows"][0]["applied_seq"] == 1
            assert state["rows"][0]["lag"] == 0
            assert status_of(engine, "3", "eventual") \
                == "<order_status>tokA</order_status>"
        finally:
            engine.close()

    def test_staleness_is_visible_per_tier(self, small_corpora):
        corpus = small_corpora["dcmd"]
        # A huge ship interval means nothing ships until flushed.
        engine = load_replicated(corpus, ship_interval=3600.0)
        try:
            before = status_of(engine, "3", "eventual")
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokB")
            # Strong sees the write; eventual still sees the old value.
            assert status_of(engine, "3", "strong") \
                == "<order_status>tokB</order_status>"
            assert status_of(engine, "3", "eventual") == before
            state = engine.replication_state()
            assert state["rows"][0]["lag"] == 1
            # Tiers demanding freshness fall back to the primary.
            assert status_of(engine, "3", "bounded_staleness:0") \
                == "<order_status>tokB</order_status>"
            assert status_of(engine, "3", read_your_writes(1)) \
                == "<order_status>tokB</order_status>"
            # bounded_staleness:1 tolerates the single-write lag and
            # may serve the stale replica.
            assert status_of(engine, "3", "bounded_staleness:1") \
                == before
            engine.flush_replication()
            assert status_of(engine, "3", "eventual") \
                == "<order_status>tokB</order_status>"
            assert engine.replication_state()["rows"][0]["lag"] == 0
        finally:
            engine.close()

    def test_duplicate_sequences_are_suppressed(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus, ship_interval=3600.0)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokC")
            engine.flush_replication()
            # Re-ship the same journal batch by hand: the worker must
            # skip the already-applied sequence, not re-apply it.
            worker = engine._replica_rows[0][0]
            entries = list(engine._states[0].journal)
            entries.extend(engine._states[1].journal)
            applied = engine._call_worker(
                worker, ("replay", engine.committed_seq,
                         sorted(entries)))
            assert applied == engine.committed_seq
            assert status_of(engine, "3", "eventual") \
                == "<order_status>tokC</order_status>"
        finally:
            engine.close()

    def test_replica_death_mid_ship_is_repaired(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus, ship_interval=3600.0)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokD")
            # Kill one replica slot between the write and the ship.
            engine._replica_rows[0][0].process.kill()
            engine.flush_replication()
            state = engine.replication_state()
            assert state["rows"][0]["alive"]
            assert state["rows"][0]["applied_seq"] \
                == state["committed_seq"]
            assert status_of(engine, "3", "eventual") \
                == "<order_status>tokD</order_status>"
        finally:
            engine.close()


class TestFailover:
    def test_dead_primary_promotes_freshest_replica(self,
                                                    small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus, breaker_cooldown=0.2)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokE")
            engine._workers[0].process.kill()
            # A strong read must fail over, not fail.
            assert status_of(engine, "3", "strong") \
                == "<order_status>tokE</order_status>"
            assert engine.failovers == 1
            # The promoted worker now serves as a primary; the
            # consumed replica slot is repaired on the next flush.
            engine.flush_replication()
            state = engine.replication_state()
            assert state["rows"][0]["alive"]
        finally:
            engine.close()

    def test_promotion_catches_up_lagging_replica(self,
                                                  small_corpora):
        corpus = small_corpora["dcmd"]
        # Replicas lag (nothing ships), then the primary dies: the
        # promoted replica must be caught up from the journal before
        # serving, or the acknowledged write would be lost.
        engine = load_replicated(corpus, ship_interval=3600.0,
                                 breaker_cooldown=0.2)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokF")
            assert engine.replication_state()["rows"][0]["lag"] == 1
            for worker in engine._workers:
                worker.process.kill()
            assert status_of(engine, "3", "strong") \
                == "<order_status>tokF</order_status>"
            assert engine.failovers == 2
        finally:
            engine.close()

    def test_update_after_failover_keeps_sequencing(self,
                                                    small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_replicated(corpus, breaker_cooldown=0.2)
        try:
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokG")
            engine._workers[1].process.kill()
            engine.update_value(UPDATE[0], "3", UPDATE[1], "tokH")
            assert engine.committed_seq == 2
            assert status_of(engine, "3", "strong") \
                == "<order_status>tokH</order_status>"
            engine.flush_replication()
            assert status_of(engine, "3", "eventual") \
                == "<order_status>tokH</order_status>"
        finally:
            engine.close()


class TestServingSessions:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.server import QueryServer, ServerConfig
        server = QueryServer(ServerConfig(
            units=10, shards=2, replicas=1, preload=False,
            executors=2, sample_resources=False)).start_background()
        yield server
        server.stop_background()

    def _session(self, server, **fields):
        from repro.loadgen import ServingClient
        client = ServingClient(port=server.port)
        return client.session(
            engine="native", class_key="dcmd", units=10, shards=2,
            replicas=1, **fields)

    def test_session_threads_consistency_and_seq(self, server):
        with self._session(server,
                           consistency="read_your_writes") as session:
            assert session.hello_reply["replicas"] == 1
            assert session.hello_reply["consistency"] \
                == "read_your_writes"
            write = session.update("3", "tokS")
            assert write.ok and write.rows == 1
            assert write.seq >= 1
            assert session.last_write_seq == write.seq
            read = session.query("Q1")
            assert read.ok and read.rows >= 1
            # Per-request override is honored without touching the
            # session default.
            stale = session.query("Q1",
                                  consistency=bounded_staleness(5))
            assert stale.ok

    def test_second_write_advances_sequence(self, server):
        with self._session(server) as session:
            first = session.update("2", "tokT")
            second = session.update("4", "tokU")
            assert second.seq > first.seq
            assert session.last_write_seq == second.seq

    def test_legacy_wire_dicts_still_accepted(self, server):
        from repro.loadgen import ServingClient
        with ServingClient(port=server.port) as client:
            hello = client.call({"op": "hello", "engine": "native",
                                 "class": "dcmd", "units": 10,
                                 "shards": 2})
            assert hello["ok"]
            reply = client.call({"op": "query", "qid": "Q1"})
            assert reply["ok"]

    def test_update_requires_id(self, server):
        from repro.loadgen import ServingClient
        with ServingClient(port=server.port) as client:
            client.hello(engine="native", class_key="dcmd", units=10,
                         shards=2)
            reply = client.call({"op": "update"})
            assert not reply["ok"]
            assert reply["error"] == "BadRequest"

    def test_session_kwargs_conflict_is_typed(self, server):
        from repro.loadgen import ServingClient
        with ServingClient(port=server.port) as client:
            with pytest.raises(ServerError):
                client.session(SessionOptions(class_key="dcmd"),
                               units=10)
            client.close()


class TestTypedErrorAudit:
    def test_admission_capacity_error_is_typed(self):
        from repro.server.admission import AdmissionController
        with pytest.raises(ServerError):
            AdmissionController(capacity=0)

    def test_unknown_scenario_error_is_typed(self):
        from repro.errors import BenchmarkError
        from repro.faults.scenarios import build_scenario
        with pytest.raises(BenchmarkError):
            build_scenario("nope")

    def test_replication_scenarios_are_registered(self):
        from repro.faults.scenarios import build_scenario
        storm = build_scenario("failover-storm")
        assert storm.replicas == 2
        assert storm.write_every > 0
        assert storm.consistency == "eventual"
        lag = build_scenario("replica-lag")
        assert lag.replicas == 1
        assert lag.ship_interval > 0
