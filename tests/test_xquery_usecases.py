"""W3C XML Query Use Cases (XMP sample) against the XQuery engine.

XBench claims to cover "all of XQuery functionality as captured by XML
Query Use Cases".  This module runs a representative slice of the W3C
use case "XMP" queries (the classic bibliography examples Q1-Q12,
adapted to this engine's dialect) and checks their documented results —
independent evidence that the engine implements the functionality the
workload relies on.
"""

from __future__ import annotations

import pytest

from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xquery import run_query

BIB_XML = """\
<bib>
 <book year="1994">
  <title>TCP/IP Illustrated</title>
  <author><last>Stevens</last><first>W.</first></author>
  <publisher>Addison-Wesley</publisher>
  <price>65.95</price>
 </book>
 <book year="1992">
  <title>Advanced Programming in the Unix environment</title>
  <author><last>Stevens</last><first>W.</first></author>
  <publisher>Addison-Wesley</publisher>
  <price>65.95</price>
 </book>
 <book year="2000">
  <title>Data on the Web</title>
  <author><last>Abiteboul</last><first>Serge</first></author>
  <author><last>Buneman</last><first>Peter</first></author>
  <author><last>Suciu</last><first>Dan</first></author>
  <publisher>Morgan Kaufmann Publishers</publisher>
  <price>39.95</price>
 </book>
 <book year="1999">
  <title>The Economics of Technology and Content for Digital TV</title>
  <editor><last>Gerbarg</last><first>Darcy</first>
   <affiliation>CITI</affiliation></editor>
  <publisher>Kluwer Academic Publishers</publisher>
  <price>129.95</price>
 </book>
</bib>
"""


@pytest.fixture(scope="module")
def bib():
    return parse_document(BIB_XML, name="bib.xml")


class TestXmpUseCases:
    def test_q1_books_after_1991_by_publisher(self, bib):
        """XMP Q1: titles of Addison-Wesley books published after 1991."""
        result = run_query(
            "for $b in /bib/book "
            "where $b/publisher = 'Addison-Wesley' and $b/@year > 1991 "
            "return <book year=\"{ $b/@year }\">{ $b/title }</book>",
            [bib])
        assert [r.get("year") for r in result] == ["1994", "1992"]

    def test_q2_flat_title_author_pairs(self, bib):
        """XMP Q2: one result pair per author of each book."""
        result = run_query(
            "for $b in /bib/book, $t in $b/title, $a in $b/author "
            "return <result>{ $t }{ $a }</result>", [bib])
        assert len(result) == 5        # 1 + 1 + 3 authors

    def test_q3_titles_with_all_authors(self, bib):
        """XMP Q3: each book's title with its authors."""
        result = run_query(
            "for $b in /bib/book "
            "return <result>{ $b/title }{ $b/author }</result>", [bib])
        assert len(result) == 4
        third = serialize(result[2])
        assert third.count("<author>") == 3

    def test_q4_books_per_author(self, bib):
        """XMP Q4: group titles under each distinct author surname."""
        result = run_query(
            "for $last in distinct-values(//author/last) "
            "order by $last "
            "return <result><last>{ $last }</last>"
            "{ /bib/book[author/last = $last]/title }</result>", [bib])
        names = [r.first_child("last").text_content() for r in result]
        assert names == ["Abiteboul", "Buneman", "Stevens", "Suciu"]
        stevens = result[2]
        assert len(list(stevens.child_elements("title"))) == 2

    def test_q5_join_like_pairing(self, bib):
        """XMP Q5 (single-source variant): titles with prices."""
        result = run_query(
            "for $b in /bib/book "
            "return <book-with-price>{ $b/title }"
            "<price>{ string($b/price) }</price></book-with-price>",
            [bib])
        assert len(result) == 4

    def test_q6_books_with_multiple_authors(self, bib):
        """XMP Q6: books with more than one author."""
        result = run_query(
            "for $b in /bib/book where count($b/author) > 1 "
            "return $b/title", [bib])
        assert [t.text_content() for t in result] == ["Data on the Web"]

    def test_q7_sorted_by_title(self, bib):
        """XMP Q7: books after 1991 sorted by title."""
        result = run_query(
            "for $b in /bib/book where $b/@year > 1991 "
            "order by $b/title return string($b/title)", [bib])
        assert result == sorted(result)
        assert len(result) == 4

    def test_q8_text_mention(self, bib):
        """XMP Q8: find books whose title mentions a word."""
        result = run_query(
            "for $b in /bib/book "
            "where contains(string($b/title), 'Web') "
            "return string($b/title)", [bib])
        assert result == ["Data on the Web"]

    def test_q10_prices_by_title(self, bib):
        """XMP Q10-style: min/max/avg price."""
        assert run_query("min(/bib/book/xs:decimal(price))",
                         [bib]) == [39.95]
        assert run_query("max(/bib/book/xs:decimal(price))",
                         [bib]) == [129.95]
        (avg,) = run_query("avg(/bib/book/xs:decimal(price))", [bib])
        assert abs(avg - 75.45) < 0.01

    def test_q11_books_with_editors(self, bib):
        """XMP Q11: books with an editor but no author."""
        result = run_query(
            "for $b in /bib/book "
            "where exists($b/editor) and empty($b/author) "
            "return <reference>{ $b/title }"
            "{ $b/editor/affiliation }</reference>", [bib])
        assert len(result) == 1
        assert "CITI" in serialize(result[0])

    def test_q12_pairs_of_books_with_same_authors(self, bib):
        """XMP Q12: distinct book pairs sharing their author set."""
        result = run_query(
            "for $a in /bib/book, $c in /bib/book "
            "where $a << $c "
            "and deep-equal($a/author, $c/author) "
            "and exists($a/author) "
            "return <pair>{ $a/title }{ $c/title }</pair>", [bib])
        assert len(result) == 1
        assert "TCP/IP" in serialize(result[0])

    def test_computed_summary(self, bib):
        """Computed constructors over the use-case data."""
        (summary,) = run_query(
            "element summary { attribute books { count(/bib/book) }, "
            "for $p in distinct-values(/bib/book/publisher) "
            "order by $p return element publisher { $p } }", [bib])
        assert summary.get("books") == "4"
        assert len(list(summary.child_elements("publisher"))) == 3
