"""Benchmark driver, report and figure tests."""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkConfig,
    XBench,
    class_by_key,
    format_suite,
    format_table,
    indexes_for,
    render_all_figures,
    render_figure,
)
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def tiny_suite():
    """A full suite at very small scale (shared across tests)."""
    config = BenchmarkConfig(scale_divisor=10_000,
                             scale_names=("small",), seed=3)
    bench = XBench(config)
    return bench, bench.run_suite()


class TestConfig:
    def test_defaults(self):
        config = BenchmarkConfig()
        assert config.scale_names == ("small", "normal", "large")
        assert set(config.query_ids) == {"Q5", "Q8", "Q12", "Q14", "Q17"}

    def test_class_by_key(self):
        assert class_by_key("tcsd").label == "TC/SD"
        with pytest.raises(BenchmarkError):
            class_by_key("nope")

    def test_table3_indexes(self):
        assert indexes_for("dcsd") == ("item/@id", "date_of_release")
        assert indexes_for("tcsd") == ("hw",)
        assert indexes_for("unknown") == ()


class TestCorpusCache:
    def test_scenario_cached(self):
        bench = XBench(BenchmarkConfig(scale_divisor=10_000))
        first = bench.corpus.scenario("tcmd", "small")
        second = bench.corpus.scenario("tcmd", "small")
        assert first is second

    def test_scenario_name_paper_style(self):
        bench = XBench(BenchmarkConfig(scale_divisor=10_000))
        assert bench.corpus.scenario("tcsd", "small").name == "TCSDS"
        assert bench.corpus.scenario("dcmd", "normal").name == "DCMDN"

    def test_scales_differ(self):
        bench = XBench(BenchmarkConfig(scale_divisor=2_000))
        small = bench.corpus.scenario("tcmd", "small").bytes
        normal = bench.corpus.scenario("tcmd", "normal").bytes
        assert normal > 3 * small


class TestSuite:
    def test_load_cells_populated(self, tiny_suite):
        __, suite = tiny_suite
        cell = suite.load.cell("X-Hive", "dcmd", "small")
        assert cell.seconds is not None and cell.seconds > 0

    def test_unsupported_cells_marked(self, tiny_suite):
        __, suite = tiny_suite
        assert suite.load.cell("Xcolumn", "dcsd", "small").seconds is None
        assert suite.load.cell("Xcolumn", "dcsd",
                               "small").detail != ""

    def test_query_tables_present(self, tiny_suite):
        __, suite = tiny_suite
        assert set(suite.queries) == {"Q5", "Q8", "Q12", "Q14", "Q17"}

    def test_native_marked_correct(self, tiny_suite):
        __, suite = tiny_suite
        for qid, result in suite.queries.items():
            cell = result.cell("X-Hive", "tcmd", "small")
            assert cell.correct is True

    def test_supported_engines_timed(self, tiny_suite):
        __, suite = tiny_suite
        for engine_label in ("Xcollection", "SQL Server", "X-Hive"):
            cell = suite.queries["Q5"].cell(engine_label, "dcsd", "small")
            if engine_label == "Xcollection":
                assert cell.seconds is not None
            else:
                assert cell.seconds is not None

    def test_run_single_query(self):
        bench = XBench(BenchmarkConfig(scale_divisor=10_000,
                                       scale_names=("small",),
                                       class_keys=("tcmd",)))
        result = bench.run_query("Q8")
        assert result.cell("X-Hive", "tcmd", "small").seconds is not None


class TestReport:
    def test_format_table_layout(self, tiny_suite):
        __, suite = tiny_suite
        text = format_table(suite.load, scale_names=("small",))
        assert "Table 4" in text
        assert "X-Hive" in text and "SQL Server" in text
        assert "-" in text            # unsupported cells

    def test_format_suite_contains_all_tables(self, tiny_suite):
        __, suite = tiny_suite
        text = format_suite(suite, scale_names=("small",))
        for table in ("Table 4", "Table 5", "Table 6", "Table 7",
                      "Table 8", "Table 9"):
            assert table in text

    def test_units_noted(self, tiny_suite):
        __, suite = tiny_suite
        assert "(in Seconds)" in format_table(suite.load,
                                              scale_names=("small",))
        assert "(in Milliseconds)" in format_table(
            suite.queries["Q5"], scale_names=("small",))


class TestFigures:
    def test_four_figures(self):
        text = render_all_figures()
        for number in (1, 2, 3, 4):
            assert f"Figure {number}" in text

    def test_figure_1_dictionary(self):
        text = render_figure(1)
        assert "dictionary" in text and "[hw]" in text

    def test_figure_2_recursive_sec(self):
        text = render_figure(2)
        assert "(recursive)" in text

    def test_figure_3_catalog_depth(self):
        text = render_figure(3)
        assert "mailing_address" in text

    def test_figure_4_order(self):
        text = render_figure(4)
        assert "order_line" in text and "@id" in text


class TestHugeScale:
    def test_huge_scale_configurable(self):
        """The paper's 10 GB 'huge' scale is available behind the same
        divisor knob (here divided down to stay test-sized)."""
        from repro.core import BenchmarkConfig, XBench
        config = BenchmarkConfig(scale_divisor=200_000,
                                 scale_names=("huge",),
                                 class_keys=("tcmd",))
        bench = XBench(config)
        scenario = bench.corpus.scenario("tcmd", "huge")
        assert scenario.name == "TCMDH"
        assert scenario.bytes > 0
        suite = bench.run_suite(("Q8",))
        cell = suite.queries["Q8"].cells[("X-Hive", "tcmd", "huge")]
        assert cell.seconds is not None


class TestExportFormats:
    def test_suite_records_cover_all_cells(self, tiny_suite):
        from repro.core.report import suite_records
        __, suite = tiny_suite
        records = suite_records(suite)
        tables = {record["table"] for record in records}
        assert tables == {"load", "Q5", "Q8", "Q12", "Q14", "Q17"}
        loads = [r for r in records if r["table"] == "load"]
        assert len(loads) == 16            # 4 engines x 4 classes

    def test_csv_shape(self, tiny_suite):
        from repro.core.report import format_csv
        __, suite = tiny_suite
        csv_text = format_csv(suite)
        lines = csv_text.splitlines()
        assert lines[0] == "table,system,class,scale,seconds,correct"
        assert all(line.count(",") == 5 for line in lines)

    def test_json_round_trips(self, tiny_suite):
        import json
        from repro.core.report import format_json
        __, suite = tiny_suite
        records = json.loads(format_json(suite))
        assert isinstance(records, list) and records
        unsupported = [r for r in records
                       if r["system"] == "Xcolumn"
                       and r["class"] == "DC/SD"]
        assert all(r["seconds"] is None for r in unsupported)
