"""Load-harness tests: seeded request mixes, closed- and open-loop
trials against a live server, and the rate-sweep curve.

The driver contracts under test: the request mix and the open-loop
arrival schedule are functions of the seed alone; only requests
scheduled inside the measurement window are scored; a healthy server
under modest closed-loop load yields 100% success; and the sweep
emits one curve point per rate with the percentile fields the
``BENCH_serving.json`` artifact promises.
"""

from __future__ import annotations

import random

import pytest

from repro.loadgen import (
    LoadConfig,
    run_open_loop,
    run_rate_sweep,
    run_trial,
    sweep_curve,
)
from repro.loadgen.driver import _RequestMix
from repro.server import QueryServer, ServerConfig

UNITS = 4


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(class_key="dcmd", units=UNITS, executors=2)
    instance = QueryServer(config).start_background()
    yield instance
    instance.stop_background()


def make_config(server, **overrides) -> LoadConfig:
    settings = dict(port=server.port, class_key="dcmd", units=UNITS,
                    streams=2, warmup_seconds=0.2,
                    measure_seconds=0.8, seed=23)
    settings.update(overrides)
    return LoadConfig(**settings)


def test_request_mix_is_seed_deterministic():
    config = LoadConfig(class_key="dcmd", units=UNITS)
    first = _RequestMix(config, seed=5)
    second = _RequestMix(config, seed=5)
    draws = [first.next() for __ in range(20)]
    assert draws == [second.next() for __ in range(20)]
    assert {qid for __, qid, ___ in draws} <= set(config.query_ids)


def test_request_mix_rejects_inapplicable_query_set():
    from repro.errors import BenchmarkError
    config = LoadConfig(class_key="dcsd", query_ids=("Q16",))
    with pytest.raises(BenchmarkError):
        _RequestMix(config, seed=1)


def test_open_loop_arrival_schedule_is_seeded():
    # The schedule derives from the seed exactly as the driver builds
    # it: expovariate steps until the horizon.
    def offsets(seed: int, rate: float, horizon: float) -> list[float]:
        rng = random.Random(seed)
        out, clock = [], rng.expovariate(rate)
        while clock < horizon:
            out.append(clock)
            clock += rng.expovariate(rate)
        return out

    assert offsets(23, 50.0, 1.0) == offsets(23, 50.0, 1.0)
    assert offsets(23, 50.0, 1.0) != offsets(24, 50.0, 1.0)


def test_closed_loop_trial_succeeds_on_healthy_server(server):
    result = run_trial(make_config(server, mode="closed"))
    assert result.mode == "closed"
    assert result.completed > 0
    assert result.success_pct == 100.0
    assert result.errors == 0 and result.rejected == 0
    assert result.latencies.count == result.completed
    record = result.record()
    assert record["seed"] == 23
    assert record["latency"]["count"] == result.completed
    assert "default" in record["per_tenant"]


def test_closed_loop_measurement_window_excludes_warmup(server):
    result = run_trial(make_config(server, mode="closed"))
    # Warm-up traffic ran but was not scored.
    assert result.total_requests > result.offered


def test_open_loop_trial_measures_from_scheduled_arrival(server):
    result = run_open_loop(make_config(server, mode="open", rate=25.0,
                                       streams=4))
    assert result.mode == "open"
    assert result.target_rate == 25.0
    assert result.completed > 0
    assert result.errors == 0
    # ~25/s over a 0.8s window, Poisson-noisy.
    assert 5 <= result.offered <= 50


def test_rate_sweep_emits_one_curve_point_per_rate(server):
    config = make_config(server, mode="open", streams=4,
                         warmup_seconds=0.1, measure_seconds=0.5)
    results = run_rate_sweep(config, [10.0, 40.0])
    curve = sweep_curve(results)
    assert [point["target_rate"] for point in curve] == [10.0, 40.0]
    for point in curve:
        assert {"throughput_qps", "p50_ms", "p95_ms", "p99_ms",
                "rejected", "timeouts", "success_pct"} <= set(point)
    assert server.counters["unhandled"] == 0


def test_tenant_mix_reaches_the_server(server):
    config = make_config(server, mode="open", rate=30.0, streams=4,
                         tenants=(("gold", 3.0), ("bronze", 1.0)))
    result = run_open_loop(config)
    assert result.completed > 0
    assert set(result.per_tenant) <= {"gold", "bronze"}
