"""Serializer tests: escaping, pretty printing, node kinds."""

from __future__ import annotations

from io import StringIO

from repro.xml.nodes import Attribute, Comment, Document, Element, Text
from repro.xml.parser import parse_document
from repro.xml.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    write_document,
)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_text_noop(self):
        assert escape_text("plain") == "plain"

    def test_escape_attribute(self):
        assert escape_attribute('a"b&c<d') == "a&quot;b&amp;c&lt;d"

    def test_escape_attribute_keeps_gt(self):
        assert escape_attribute("a>b") == "a>b"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attributes_in_order(self):
        element = Element("a", {"b": "1", "a": "2"})
        assert serialize(element) == '<a b="1" a="2"/>'

    def test_text_node(self):
        assert serialize(Text("x<y")) == "x&lt;y"

    def test_comment_node(self):
        assert serialize(Comment(" hi ")) == "<!-- hi -->"

    def test_attribute_node(self):
        assert serialize(Attribute("n", 'v"w')) == 'n="v&quot;w"'

    def test_document_with_root(self):
        doc = Document(Element("r"))
        assert serialize(doc) == "<r/>"

    def test_xml_declaration(self):
        doc = Document(Element("r"))
        assert serialize(doc, xml_declaration=True) == \
            '<?xml version="1.0" encoding="UTF-8"?><r/>'

    def test_write_document_stream(self):
        doc = Document(Element("r"))
        out = StringIO()
        write_document(doc, out)
        assert out.getvalue().endswith("<r/>")


class TestPrettyPrint:
    def test_indents_element_only_content(self):
        doc = parse_document("<a><b><c/></b></a>")
        pretty = serialize(doc, indent=2)
        assert "<a>\n  <b>\n    <c/>\n  </b>\n</a>" in pretty

    def test_does_not_indent_text_content(self):
        doc = parse_document("<a><b>keep me intact</b></a>")
        pretty = serialize(doc, indent=2)
        assert "<b>keep me intact</b>" in pretty

    def test_pretty_round_trip_preserves_text(self):
        doc = parse_document("<a><b>x y  z</b><c/></a>")
        reparsed = parse_document(serialize(doc, indent=2))
        assert reparsed.root_element.find("b").text_content() == "x y  z"
