"""Lexer tests: token kinds, the '<' constructor heuristic, comments."""

from __future__ import annotations

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.lexer import Lexer
from repro.xquery.tokens import (
    DECIMAL,
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    TAG_START,
    VARIABLE,
)


def all_tokens(text: str) -> list:
    lexer = Lexer(text)
    tokens = []
    while True:
        token = lexer.next()
        if token.kind == EOF:
            return tokens
        tokens.append(token)


class TestBasicTokens:
    def test_name(self):
        (token,) = all_tokens("foo")
        assert token.kind == NAME and token.value == "foo"

    def test_qualified_name(self):
        (token,) = all_tokens("xs:integer")
        assert token.value == "xs:integer"

    def test_name_with_hyphen(self):
        (token,) = all_tokens("distinct-values")
        assert token.value == "distinct-values"

    def test_variable(self):
        (token,) = all_tokens("$var")
        assert token.kind == VARIABLE and token.value == "var"

    def test_integer(self):
        (token,) = all_tokens("123")
        assert token.kind == INTEGER and token.value == "123"

    def test_decimal(self):
        (token,) = all_tokens("1.5")
        assert token.kind == DECIMAL

    def test_scientific(self):
        (token,) = all_tokens("1e3")
        assert token.kind == DECIMAL

    def test_string_double(self):
        (token,) = all_tokens('"hi"')
        assert token.kind == STRING and token.value == "hi"

    def test_string_single(self):
        (token,) = all_tokens("'hi'")
        assert token.value == "hi"

    def test_string_doubled_quote_escape(self):
        (token,) = all_tokens('"a""b"')
        assert token.value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            all_tokens('"oops')

    def test_positions_recorded(self):
        tokens = all_tokens("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestSymbols:
    @pytest.mark.parametrize("symbol", [
        "(", ")", "[", "]", ",", "=", "!=", "<=", ">=", ":=", "//",
        "..", "::", "|", "+", "-", "*", "/", "@",
    ])
    def test_symbol(self, symbol):
        (token,) = all_tokens(symbol)
        assert token.kind == SYMBOL and token.value == symbol

    def test_double_slash_vs_slash(self):
        tokens = all_tokens("a//b")
        assert [t.value for t in tokens] == ["a", "//", "b"]

    def test_range_dots_not_decimal(self):
        tokens = all_tokens("a/..")
        assert tokens[-1].value == ".."


class TestComments:
    def test_comment_skipped(self):
        tokens = all_tokens("a (: comment :) b")
        assert [t.value for t in tokens] == ["a", "b"]

    def test_nested_comment(self):
        tokens = all_tokens("a (: outer (: inner :) :) b")
        assert len(tokens) == 2

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            all_tokens("a (: oops")


class TestConstructorHeuristic:
    def test_lt_after_operand_is_comparison(self):
        tokens = all_tokens("price < 10")
        assert tokens[1].kind == SYMBOL and tokens[1].value == "<"

    def test_lt_at_start_is_constructor(self):
        tokens = all_tokens("<tag")
        assert tokens[0].kind == TAG_START and tokens[0].value == "tag"

    def test_lt_after_return_is_constructor(self):
        lexer = Lexer("return <r")
        assert lexer.next().value == "return"
        assert lexer.next().kind == TAG_START

    def test_lt_after_paren_close_is_comparison(self):
        tokens = all_tokens("(1) < 2")
        assert any(t.kind == SYMBOL and t.value == "<" for t in tokens)

    def test_lt_after_comma_is_constructor(self):
        lexer = Lexer(", <x")
        lexer.next()
        assert lexer.next().kind == TAG_START

    def test_lt_before_nonname_is_comparison(self):
        tokens = all_tokens("< 5")
        assert tokens[0].kind == SYMBOL
