"""Sharded multi-process execution service tests.

The contract under test: scatter-gather execution over N worker
processes returns byte-identical (post-merge) results to the
single-process native oracle for every workload query on every class,
survives worker death via respawn + replay, and routes update
operations to the owning shard.
"""

from __future__ import annotations

import time

import pytest

from repro.core.benchmark import BenchmarkConfig, XBench
from repro.core.shard import ShardedEngine, shard_of
from repro.core.verification import verify_scenario
from repro.engines import create
from repro.errors import EngineError, ShardError
from repro.workload.params import bind_params
from repro.workload.queries import QUERIES_BY_ID, workload_for_class


def load_sharded(corpus, shards=3, **kwargs):
    engine = ShardedEngine("native", shards=shards, **kwargs)
    engine.timed_load(corpus["class"], list(corpus["texts"]))
    return engine


def load_oracle(corpus):
    engine = create("native")
    engine.timed_load(corpus["class"], list(corpus["texts"]))
    return engine


class TestPartitioning:
    def test_shard_of_is_deterministic_across_processes(self):
        # crc32, not the per-process-salted builtin hash.
        assert shard_of("order1.xml", 4) == shard_of("order1.xml", 4)
        assert 0 <= shard_of("anything.xml", 3) < 3

    def test_replicated_documents_on_every_shard(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_sharded(corpus, shards=3)
        try:
            # Every worker must resolve doc('customer.xml') (Q19 join).
            for state in engine._states:
                assert all(entry[1] != "customer.xml"
                           for entry in state.mains)
            replicated = {name for name, __ in engine._replicated}
            assert "customer.xml" in replicated
        finally:
            engine.close()

    def test_single_document_class_has_home_shard(self, small_corpora):
        corpus = small_corpora["dcsd"]
        engine = load_sharded(corpus, shards=3)
        try:
            assert engine._home is not None
            populated = [state for state in engine._states
                         if state.mains]
            assert len(populated) == 1
        finally:
            engine.close()

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardError):
            ShardedEngine("native", shards=0)

    def test_rejects_unknown_engine_key(self):
        with pytest.raises(EngineError):
            ShardedEngine("no-such-engine", shards=2)


class TestResultEquivalence:
    """Acceptance: sharded results byte-identical to the oracle for all
    20 queries across all four classes."""

    @pytest.mark.parametrize("class_key",
                             ["dcsd", "dcmd", "tcsd", "tcmd"])
    def test_all_queries_match_oracle(self, class_key, small_corpora):
        corpus = small_corpora[class_key]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=3)
        try:
            for query in workload_for_class(class_key):
                params = bind_params(query.qid, class_key,
                                     corpus["units"])
                expect = oracle.execute(query.qid, params)
                got = sharded.execute(query.qid, params)
                assert got == expect, (
                    f"{query.qid} on {class_key}: sharded merge "
                    f"({len(got)} items) differs from oracle "
                    f"({len(expect)} items)")
        finally:
            oracle.close()
            sharded.close()

    def test_matches_with_indexes(self, small_corpora):
        from repro.core.indexes import indexes_for
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=2)
        try:
            paths = list(indexes_for("dcmd"))
            oracle.create_indexes(paths)
            sharded.create_indexes(paths)
            for qid in ("Q1", "Q5", "Q19"):
                params = bind_params(qid, "dcmd", corpus["units"])
                assert (sharded.execute(qid, params)
                        == oracle.execute(qid, params))
        finally:
            oracle.close()
            sharded.close()

    def test_merge_metadata_covers_order_sensitive_queries(self):
        # Q10's order-by and Q3's grouped aggregate cannot be plain
        # concat merges.
        assert QUERIES_BY_ID["Q10"].merge_for("dcmd")["kind"] == "sorted"
        assert QUERIES_BY_ID["Q3"].merge_for("dcmd")["kind"] == "regroup"
        assert QUERIES_BY_ID["Q16"].merge_for("dcmd")["kind"] == "route"
        # Default: per-document concat.
        assert QUERIES_BY_ID["Q17"].merge_for("dcmd")["kind"] == "concat"

    def test_adhoc_fans_out(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=2)
        try:
            got = sharded.adhoc("collection()/order/@id")
            expect = oracle.adhoc("collection()/order/@id")
            assert sorted(got.values) == sorted(expect.values)
        finally:
            oracle.close()
            sharded.close()


class TestRobustness:
    def test_killed_worker_respawns_and_answers(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=3)
        try:
            params = bind_params("Q17", "dcmd", corpus["units"])
            expect = oracle.execute("Q17", params)
            sharded._workers[1].process.kill()
            time.sleep(0.05)
            assert sharded.execute("Q17", params) == expect
            assert sharded.incidents, "incident must be surfaced"
            assert "respawned" in sharded.incidents[0]
        finally:
            oracle.close()
            sharded.close()

    def test_respawn_replays_updates_journal(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=2)
        try:
            changed = sharded.update_value("order/@id", "15",
                                           "order_status", "SHIPPED")
            assert changed == oracle.update_value(
                "order/@id", "15", "order_status", "SHIPPED")
            for worker in list(sharded._workers):
                worker.process.kill()
            time.sleep(0.05)
            params = bind_params("Q9", "dcmd", corpus["units"])
            assert (sharded.execute("Q9", params)
                    == oracle.execute("Q9", params))
        finally:
            oracle.close()
            sharded.close()

    def test_retries_exhausted_raises_shard_error(self, small_corpora):
        corpus = small_corpora["dcmd"]
        sharded = load_sharded(corpus, shards=2, retries=0)
        try:
            sharded._workers[0].process.kill()
            time.sleep(0.05)
            params = bind_params("Q17", "dcmd", corpus["units"])
            with pytest.raises(ShardError):
                sharded.execute("Q17", params)
        finally:
            sharded.close()

    def test_application_errors_keep_their_type(self, small_corpora):
        from repro.errors import XQuerySyntaxError
        corpus = small_corpora["dcmd"]
        sharded = load_sharded(corpus, shards=2)
        try:
            with pytest.raises(XQuerySyntaxError):
                sharded.adhoc("for $x in (((")
            # The service is still healthy afterwards (not retried,
            # not respawned, pipes aligned).
            assert not sharded.incidents
            params = bind_params("Q5", "dcmd", corpus["units"])
            assert sharded.execute("Q5", params)
        finally:
            sharded.close()

    def test_context_manager_stops_workers(self, small_corpora):
        corpus = small_corpora["dcmd"]
        with ShardedEngine("native", shards=2) as engine:
            engine.timed_load(corpus["class"], list(corpus["texts"]))
            processes = [worker.process
                         for worker in engine._workers]
            assert all(process.is_alive() for process in processes)
        deadline = time.monotonic() + 5.0
        while (any(process.is_alive() for process in processes)
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert not any(process.is_alive() for process in processes)
        assert not engine.loaded


class TestShmTransport:
    """Bulk-load corpora ship via shared memory by default; the pipe
    carries only (segment, offset, length) triples."""

    def test_shm_matches_pipe_transport(self, small_corpora):
        corpus = small_corpora["dcmd"]
        via_shm = load_sharded(corpus, shards=2, transport="shm")
        via_pipe = load_sharded(corpus, shards=2, transport="pipe")
        try:
            assert via_shm.last_load_report["transport"] == "shm"
            assert via_pipe.last_load_report["transport"] == "pipe"
            assert via_shm.last_load_report["segment_bytes"] > 0
            for worker in via_shm.last_load_report["workers"]:
                assert worker["attach_seconds"] >= 0
                assert worker["load_seconds"] > 0
            params = bind_params("Q17", "dcmd", corpus["units"])
            assert (via_shm.execute("Q17", params)
                    == via_pipe.execute("Q17", params))
        finally:
            via_shm.close()
            via_pipe.close()

    def test_rejects_unknown_transport(self):
        with pytest.raises(ShardError):
            ShardedEngine("native", shards=2, transport="carrier-pigeon")

    def test_segment_unlinked_on_close(self, small_corpora):
        from multiprocessing import shared_memory
        corpus = small_corpora["dcmd"]
        engine = load_sharded(corpus, shards=2, transport="shm")
        segment_name = engine._segment.name
        shared_memory.SharedMemory(name=segment_name).close()
        engine.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment_name)

    def test_respawn_reattaches_segment(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=2, transport="shm")
        try:
            # Post-load insert rides inline as a respawn-replayed
            # extra; the original corpus is re-read from the segment.
            name, text = next(
                (doc_name, doc_text)
                for doc_name, doc_text in corpus["texts"]
                if doc_name.startswith("order"))
            oracle.insert_document("order901.xml", text)
            sharded.insert_document("order901.xml", text)
            for worker in list(sharded._workers):
                worker.process.kill()
            time.sleep(0.05)
            params = bind_params("Q17", "dcmd", corpus["units"])
            assert (sharded.execute("Q17", params)
                    == oracle.execute("Q17", params))
            assert any("respawned" in note
                       for note in sharded.incidents)
        finally:
            oracle.close()
            sharded.close()

    def test_worker_crash_does_not_unlink_segment(self, small_corpora):
        from multiprocessing import shared_memory
        corpus = small_corpora["dcmd"]
        sharded = load_sharded(corpus, shards=2, transport="shm")
        try:
            segment_name = sharded._segment.name
            for worker in list(sharded._workers):
                worker.process.kill()
            time.sleep(0.1)
            # The parent still owns the segment (workers attach
            # untracked, so their death cannot reap it).
            probe = shared_memory.SharedMemory(name=segment_name)
            probe.close()
        finally:
            sharded.close()

    def test_shm_ships_fewer_pipe_bytes(self, small_corpora):
        from repro.obs import Recorder, observing
        corpus = small_corpora["dcmd"]

        def load_bytes(transport):
            with observing(Recorder()) as recorder:
                engine = load_sharded(corpus, shards=2,
                                      transport=transport)
                engine.close()
                return recorder.counters.get("shard.pipe_bytes")

        shm_bytes = load_bytes("shm")
        pipe_bytes = load_bytes("pipe")
        assert shm_bytes > 0 and pipe_bytes > 0
        assert shm_bytes * 10 <= pipe_bytes, (
            f"shm load shipped {shm_bytes} pipe bytes vs "
            f"{pipe_bytes} inline — expected >= 10x reduction")


class TestUpdates:
    def test_insert_delete_route_to_owner(self, small_corpora):
        corpus = small_corpora["dcmd"]
        oracle = load_oracle(corpus)
        sharded = load_sharded(corpus, shards=3)
        try:
            name, text = next(
                (doc_name, doc_text)
                for doc_name, doc_text in corpus["texts"]
                if doc_name.startswith("order"))
            oracle.insert_document("order900.xml", text)
            sharded.insert_document("order900.xml", text)
            oracle.delete_document(name)
            sharded.delete_document(name)
            params = bind_params("Q17", "dcmd", corpus["units"])
            assert (sharded.execute("Q17", params)
                    == oracle.execute("Q17", params))
        finally:
            oracle.close()
            sharded.close()


class TestIntegration:
    def test_xbench_suite_with_shards(self):
        config = BenchmarkConfig(scale_divisor=20000,
                                 scale_names=("small",),
                                 class_keys=("dcmd",),
                                 engine_keys=("native",),
                                 query_ids=("Q5", "Q17"),
                                 shards=2)
        suite = XBench(config).run_suite()
        row = "X-Hive x2"
        cell = suite.load.cell(row, "dcmd", "small")
        assert cell.seconds is not None and cell.seconds > 0
        for qid in ("Q5", "Q17"):
            qcell = suite.queries[qid].cell(row, "dcmd", "small")
            assert qcell.seconds is not None
            # The sharded native row is the oracle of its own run.
            assert qcell.correct is True
        from repro.core.report import format_suite
        rendered = format_suite(suite, scale_names=("small",))
        assert row in rendered, "sharded rows must render in tables"

    def test_verification_includes_sharded_row(self):
        bench = XBench(BenchmarkConfig(scale_divisor=20000))
        report = verify_scenario(bench, "dcmd", "small", shards=2)
        sharded_label = "X-Hive x2"
        assert sharded_label in report.engine_labels
        statuses = {report.status(sharded_label, qid)
                    for qid in report.query_ids}
        assert statuses == {"ok"}, (
            "sharded native must be byte-identical to the oracle")
