"""Edge/interval-encoding engine tests (ablation extra)."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import NativeEngine
from repro.engines.edge import EdgeEngine, EdgeStore
from repro.errors import UnsupportedQuery
from repro.workload import bind_params
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize


def load(factory, corpus):
    engine = factory()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestEdgeStore:
    @pytest.fixture
    def store(self):
        store = EdgeStore()
        store.load_document(parse_document(
            "<a x='1'><b>one</b><c><b>two</b></c>tail</a>", name="d"))
        store.build_key_indexes()
        return store

    def test_pre_post_containment(self, store):
        rows = {row["tag"]: row for row in store.database.scan("nodes")
                if row["tag"] in ("a", "c")}
        a, c = rows["a"], rows["c"]
        assert a["pre"] < c["pre"] < c["post"] <= a["post"]

    def test_children_in_document_order(self, store):
        root = next(row for row in store.database.scan("nodes")
                    if row["tag"] == "a")
        tags = [child["tag"] for child in store.children(root["pre"])]
        assert tags == ["b", "c"]

    def test_descendants_by_tag(self, store):
        root = next(row for row in store.database.scan("nodes")
                    if row["tag"] == "a")
        assert len(store.descendants(root, "b")) == 2

    def test_attr_lookup(self, store):
        rows = store.by_attr("a", "x", "1")
        assert len(rows) == 1 and rows[0]["tag"] == "a"

    def test_tag_text_lookup(self, store):
        rows = store.by_tag_text("b", "two")
        assert len(rows) == 1

    def test_ancestor_walk(self, store):
        inner = store.by_tag_text("b", "two")[0]
        assert store.ancestor_with_tag(inner, "a")["tag"] == "a"
        assert store.ancestor_with_tag(inner, "zzz") is None

    def test_subtree_text(self, store):
        root = next(row for row in store.database.scan("nodes")
                    if row["tag"] == "a")
        text = store.subtree_text(root)
        assert "one" in text and "two" in text and "tail" in text

    def test_reconstruct(self, store):
        root = next(row for row in store.database.scan("nodes")
                    if row["tag"] == "a")
        rebuilt = store.reconstruct(root)
        assert rebuilt.get("x") == "1"
        assert [c.tag for c in rebuilt.child_elements()] == ["b", "c"]


class TestEdgeEngine:
    def test_schema_agnostic_load(self, small_corpora):
        """One loader handles every class — no per-class mapping."""
        for corpus in small_corpora.values():
            engine = EdgeEngine()
            stats = engine.timed_load(corpus["class"], corpus["texts"])
            assert stats.rows > 0

    EXPECTED_LOSSY = {("Q8", "tcsd"), ("Q12", "tcsd")}

    @pytest.mark.parametrize("qid", ["Q5", "Q8", "Q12", "Q14", "Q17"])
    @pytest.mark.parametrize("key", ["dcsd", "dcmd", "tcsd", "tcmd"])
    def test_matches_oracle_except_mixed_content(self, qid, key,
                                                 small_corpora):
        corpus = small_corpora[key]
        params = bind_params(qid, key, corpus["units"])
        oracle = load(NativeEngine, corpus).execute(qid, params)
        got = load(EdgeEngine, corpus).execute(qid, params)
        if (qid, key) in self.EXPECTED_LOSSY:
            # mixed-content interleaving is not representable in the
            # edge encoding; counts must still agree
            assert len(got) == len(oracle)
        else:
            assert got == oracle

    def test_unplanned_noncompilable_query_rejected(self, small_corpora):
        # Q10 is a FLWOR with sorting: no handwritten plan and outside
        # the pure-path subset the generic compiler accepts.
        engine = load(EdgeEngine, small_corpora["dcmd"])
        with pytest.raises(UnsupportedQuery):
            engine.execute("Q10", {})

    def test_unplanned_path_query_compiles_generically(self,
                                                       small_corpora):
        engine = load(EdgeEngine, small_corpora["dcmd"])
        params = bind_params("Q1", "dcmd", small_corpora["dcmd"]["units"])
        (value,) = engine.execute("Q1", params)
        assert value.startswith("<order ")

    def test_indexes_used_for_anchor_lookup(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(EdgeEngine, corpus)
        engine.store.database.reset_scan_counters()
        params = bind_params("Q8", "dcmd", corpus["units"])
        engine.execute("Q8", params)
        # anchor found via the namevalue index: no attrs-table scan
        attrs_table = engine.store.database.table("attrs")
        assert attrs_table.rows_scanned == 0

    def test_drop_indexes_falls_back_to_scan(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(EdgeEngine, corpus)
        params = bind_params("Q5", "dcmd", corpus["units"])
        indexed = engine.execute("Q5", params)
        engine.drop_indexes()
        assert engine.execute("Q5", params) == indexed
