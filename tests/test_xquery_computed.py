"""Computed constructor tests (element/attribute/text { ... })."""

from __future__ import annotations

import pytest

from repro.errors import XQuerySyntaxError, XQueryTypeError
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xquery import run_query


class TestComputedElement:
    def test_fixed_name(self):
        (result,) = run_query("element r { 'body' }")
        assert serialize(result) == "<r>body</r>"

    def test_computed_name(self):
        (result,) = run_query("element { concat('a', 'b') } { 1 }")
        assert result.tag == "ab"

    def test_empty_content(self):
        (result,) = run_query("element r {}")
        assert serialize(result) == "<r/>"

    def test_nested_computed(self):
        (result,) = run_query(
            "element outer { element inner { 'x' } }")
        assert serialize(result) == "<outer><inner>x</inner></outer>"

    def test_sequence_content(self):
        (result,) = run_query("element r { 1, 2, 3 }")
        assert result.text_content() == "1 2 3"

    def test_node_content_copied(self, catalog_doc):
        (result,) = run_query(
            "element wrap { /catalog/item[1]/title }", [catalog_doc])
        assert serialize(result) == "<wrap><title>Alpha</title></wrap>"

    def test_multi_item_name_rejected(self):
        with pytest.raises(XQueryTypeError):
            run_query("element { ('a', 'b') } { 1 }")

    def test_constructed_tree_navigable(self):
        result = run_query("element r { element c { 5 } }/c")
        assert result[0].text_content() == "5"

    def test_in_flwor_return(self):
        results = run_query(
            "for $i in 1 to 3 return element n { $i * 10 }")
        assert [r.text_content() for r in results] == ["10", "20", "30"]


class TestComputedAttribute:
    def test_attribute_in_element(self):
        (result,) = run_query(
            "element r { attribute id { 42 }, 'body' }")
        assert result.get("id") == "42"
        assert result.text_content() == "body"

    def test_computed_attribute_name(self):
        (result,) = run_query(
            "element r { attribute { concat('a','b') } { 'v' } }")
        assert result.get("ab") == "v"

    def test_standalone_attribute_node(self):
        (attr,) = run_query("attribute n { 'v' }")
        assert attr.name == "n" and attr.value == "v"

    def test_sequence_value_space_joined(self):
        (result,) = run_query(
            "element r { attribute ks { (1, 2) } }")
        assert result.get("ks") == "1 2"

    def test_empty_value(self):
        (result,) = run_query("element r { attribute x {} }")
        assert result.get("x") == ""


class TestTextConstructor:
    def test_simple(self):
        (node,) = run_query("text { 'abc' }")
        assert node.text == "abc"

    def test_numeric_content(self):
        (node,) = run_query("text { 6 * 7 }")
        assert node.text == "42"

    def test_empty_yields_empty_sequence(self):
        assert run_query("text {()}") == []
        assert run_query("text {}") == []

    def test_inside_element(self):
        (result,) = run_query("element r { text { 'x' } }")
        assert serialize(result) == "<r>x</r>"


class TestNoRegressions:
    """Keywords stay usable as element names and kind tests."""

    def test_element_named_text(self):
        doc = parse_document("<a><text>t</text></a>")
        assert run_query("string(/a/text)", [doc]) == ["t"]

    def test_text_kind_test_still_works(self):
        doc = parse_document("<a>raw<b/></a>")
        nodes = run_query("/a/text()", [doc])
        assert nodes[0].text == "raw"

    def test_element_named_element(self):
        doc = parse_document("<a><element>e</element></a>")
        assert run_query("string(/a/element)", [doc]) == ["e"]

    def test_attribute_step_unaffected(self, catalog_doc):
        values = run_query("/catalog/item/@id", [catalog_doc])
        assert len(values) == 3

    def test_element_keyword_without_braces_is_path(self):
        doc = parse_document("<element><x>1</x></element>")
        assert run_query("count(/element/x)", [doc]) == [1]
