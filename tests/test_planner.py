"""Index-aware planner tests: override-table subsumption, eligibility."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import NativeEngine
from repro.engines.native import _ACCELERATED
from repro.engines.planner import IndexProbePlan, QueryPlanner, ScanPlan
from repro.workload import bind_params
from repro.workload.queries import QUERIES_BY_ID
from repro.xml.parser import parse_document
from repro.xquery.engine import XQueryEngine


def load(corpus):
    engine = NativeEngine()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


def plan_text(text: str, index_paths, documents):
    compiled = XQueryEngine().compile(text)
    planner = QueryPlanner(
        index_paths,
        lambda: [document.structural_summary()
                 for document in documents])
    return planner.plan(compiled.expression)


class TestOverrideTableSubsumption:
    """The planner must derive every legacy `_ACCELERATED` entry on its
    own — same index, same parameter — without consulting the table."""

    @pytest.mark.parametrize("qid,class_key", sorted(_ACCELERATED))
    def test_planner_reproduces_entry(self, qid, class_key,
                                      small_corpora):
        engine = load(small_corpora[class_key])
        expected_path, expected_param, _ = _ACCELERATED[(qid, class_key)]
        text = QUERIES_BY_ID[qid].text_for(class_key)
        compiled = XQueryEngine().compile(text)
        planner = QueryPlanner(
            engine._indexes.keys(),
            lambda: [document.structural_summary()
                     for document in engine._collection.collection()])
        plan = planner.plan(compiled.expression)
        assert isinstance(plan, IndexProbePlan), \
            f"planner declined {qid}/{class_key}: " \
            f"{getattr(plan, 'reason', '?')}"
        assert plan.index_path == expected_path
        assert plan.param == expected_param

    @pytest.mark.parametrize("qid,class_key", sorted(_ACCELERATED))
    def test_index_plan_matches_collection_scan(self, qid, class_key,
                                                small_corpora):
        """Probing + residual must return exactly what the full
        evaluation returns."""
        engine = load(small_corpora[class_key])
        params = bind_params(qid, class_key, 30)
        indexed = engine.execute(qid, params)
        engine.drop_indexes()
        scanned = engine.execute(qid, params)
        assert indexed == scanned


class TestEligibility:
    def test_collection_queries_never_eligible(self, small_corpora):
        text = QUERIES_BY_ID["Q5"].text_for("dcmd")
        plan = plan_text(text, ["order/@id"], [])
        assert isinstance(plan, ScanPlan)
        assert "collection()" in plan.reason

    def test_collection_queries_skip_summary_construction(self):
        text = QUERIES_BY_ID["Q5"].text_for("dcmd")
        compiled = XQueryEngine().compile(text)
        planner = QueryPlanner(
            ["order/@id"],
            lambda: pytest.fail("summaries built for a collection() "
                                "query"))
        assert isinstance(planner.plan(compiled.expression), ScanPlan)

    def test_range_predicates_decline(self):
        document = parse_document(
            "<catalog><item><date_of_release>1999-01-01"
            "</date_of_release></item></catalog>")
        plan = plan_text(
            "/catalog/item[date_of_release >= $low]",
            ["date_of_release"], [document])
        assert isinstance(plan, ScanPlan)
        assert "range predicate" in plan.reason

    def test_over_matching_tag_declines(self):
        document = parse_document(
            "<catalog><item><name>x</name>"
            "<publisher><name>y</name></publisher></item></catalog>")
        plan = plan_text("/catalog/item[name = 'x']", ["name"],
                         [document])
        assert isinstance(plan, ScanPlan)
        assert "also occurs at" in plan.reason

    def test_missing_index_declines(self):
        document = parse_document(
            "<catalog><item id='1'><title>t</title></item></catalog>")
        plan = plan_text("/catalog/item[@id = $id]/title", [],
                         [document])
        assert isinstance(plan, ScanPlan)
        assert "no declared index" in plan.reason

    def test_literal_probe_is_eligible(self):
        document = parse_document(
            "<dictionary><entry><hw>word_1</hw>"
            "<definition><def_text>d</def_text></definition>"
            "</entry></dictionary>")
        plan = plan_text(
            "/dictionary/entry[hw = 'word_1']/definition[1]/def_text",
            ["hw"], [document])
        assert isinstance(plan, IndexProbePlan)
        assert plan.param is None
        assert plan.literal == "word_1"
        assert plan.probe_desc == "hw = 'word_1'"

    def test_probe_plan_explains_itself(self):
        document = parse_document(
            "<catalog><item id='1'><title>t</title></item></catalog>")
        plan = plan_text("/catalog/item[@id = $id]/title",
                         ["item/@id"], [document])
        assert isinstance(plan, IndexProbePlan)
        assert plan.anchor_path == "catalog/item"
        assert plan.residual_desc == "title"
        assert "item/@id" in plan.reason
