"""Structural path summary tests: maps, matching, invalidation."""

from __future__ import annotations

from repro.xml.nodes import Document, Element, Text
from repro.xml.parser import parse_document
from repro.xml.summary import (
    StructuralSummary,
    fast_descendant_elements,
    summaries_of,
)

CATALOG = """
<catalog>
  <item id="I1">
    <title>First</title>
    <authors>
      <author><name>A. Author</name></author>
      <author><name>B. Author</name></author>
    </authors>
    <publisher><name>Pub House</name></publisher>
  </item>
  <item id="I2">
    <title>Second</title>
    <publisher><name>Other House</name></publisher>
  </item>
</catalog>
"""


def catalog_document() -> Document:
    return parse_document(CATALOG)


class TestBuild:
    def test_tag_map_partitions_in_document_order(self):
        summary = StructuralSummary.build(catalog_document())
        assert [e.tag for e in summary.tag_map["item"]] == ["item", "item"]
        names = summary.tag_map["name"]
        assert [e.text_content() for e in names] == \
            ["A. Author", "B. Author", "Pub House", "Other House"]

    def test_path_map_uses_root_relative_paths(self):
        summary = StructuralSummary.build(catalog_document())
        assert summary.count_at("catalog/item") == 2
        assert summary.count_at("catalog/item/authors/author/name") == 2
        assert summary.count_at("catalog/item/publisher/name") == 2
        assert summary.count_at("name") == 0     # paths are absolute

    def test_paths_by_tag_lists_distinct_paths(self):
        summary = StructuralSummary.build(catalog_document())
        assert set(summary.paths_of("name")) == {
            "catalog/item/authors/author/name",
            "catalog/item/publisher/name",
        }
        assert summary.paths_of("item") == ("catalog/item",)
        assert summary.paths_of("nope") == ()

    def test_empty_document_builds_empty_summary(self):
        summary = StructuralSummary.build(Document())
        assert summary.tag_map == {}
        assert summary.path_map == {}


class TestMatching:
    def test_bare_tag_matches_anywhere(self):
        summary = catalog_document().structural_summary()
        assert len(summary.elements_matching("name")) == 4

    def test_slashed_path_is_suffix_match(self):
        summary = catalog_document().structural_summary()
        publisher_names = summary.elements_matching("publisher/name")
        assert [e.text_content() for e in publisher_names] == \
            ["Pub House", "Other House"]
        author_names = summary.elements_matching("author/name")
        assert [e.text_content() for e in author_names] == \
            ["A. Author", "B. Author"]

    def test_multi_path_suffix_merges_in_document_order(self):
        summary = catalog_document().structural_summary()
        # "item/..." suffixes both name paths? No — use a suffix hitting
        # both name paths: the bare last segment via slashed form.
        matched = summary.elements_matching("author/name") \
            + summary.elements_matching("publisher/name")
        everything = summary.elements_matching("name")
        assert set(id(e) for e in matched) == set(id(e) for e in everything)

    def test_descendants_with_tag_scopes_to_origin(self):
        document = catalog_document()
        summary = document.structural_summary()
        root = document.root_element
        items = summary.elements_at_path("catalog/item")
        first_item = items[0]
        assert len(summary.descendants_with_tag(document, "name")) == 4
        assert len(summary.descendants_with_tag(root, "name")) == 4
        assert [e.text_content()
                for e in summary.descendants_with_tag(first_item, "name")] \
            == ["A. Author", "B. Author", "Pub House"]

    def test_descendants_exclude_the_origin_itself(self):
        document = catalog_document()
        summary = document.structural_summary()
        root = document.root_element
        assert summary.descendants_with_tag(root, "catalog") == []


class TestFastPath:
    def test_descendant_elements_uses_summary(self):
        document = catalog_document()
        names = list(document.root_element.descendant_elements("name"))
        assert len(names) == 4

    def test_fast_lookup_none_for_detached_nodes(self):
        orphan = Element("solo")
        orphan.append(Element("child"))
        assert fast_descendant_elements(orphan, "child") is None
        # ...but the tree walk still works on detached subtrees.
        assert [e.tag for e in orphan.descendant_elements("child")] \
            == ["child"]

    def test_fast_lookup_none_for_text_nodes(self):
        assert fast_descendant_elements(Text("hi"), "name") is None


class TestCaching:
    def test_summary_is_cached_until_invalidated(self):
        document = catalog_document()
        first = document.structural_summary()
        assert document.structural_summary() is first
        document.invalidate_summary()
        second = document.structural_summary()
        assert second is not first
        assert len(second.tag_map["name"]) == 4

    def test_rebuild_after_element_mutation_sees_new_nodes(self):
        document = catalog_document()
        stale = document.structural_summary()
        item = stale.elements_at_path("catalog/item")[0]
        extra = Element("name")
        extra.append(Text("Added"))
        item.append(extra)
        document.invalidate_summary()
        fresh = document.structural_summary()
        assert len(fresh.tag_map["name"]) == 5
        assert len(stale.tag_map["name"]) == 4   # old object untouched

    def test_summaries_of_returns_cached_objects(self):
        documents = [catalog_document(), catalog_document()]
        built = summaries_of(documents)
        assert built[0] is documents[0].structural_summary()
        assert built[1] is documents[1].structural_summary()
