"""XQuery engine facade tests: compilation cache, collections, context."""

from __future__ import annotations

import pytest

from repro.errors import XQueryEvalError
from repro.xml.parser import parse_document
from repro.xquery.context import Context, EmptyProvider
from repro.xquery.engine import (
    CompiledQuery,
    StaticCollection,
    XQueryEngine,
    run_query,
)


class TestCompiledQuery:
    def test_compile_once_run_many(self):
        query = CompiledQuery("1 + $x")
        assert query.run(variables={"x": 1}) == [2]
        assert query.run(variables={"x": 41}) == [42]

    def test_plain_value_wrapped_as_sequence(self):
        query = CompiledQuery("count($s)")
        assert query.run(variables={"s": "one"}) == [1]
        assert query.run(variables={"s": ["a", "b"]}) == [2]

    def test_context_item(self):
        doc = parse_document("<a><b>x</b></a>")
        query = CompiledQuery("string(b)")
        assert query.run(context_item=doc.root_element) == ["x"]


class TestEngineCache:
    def test_same_text_reuses_compilation(self):
        engine = XQueryEngine()
        first = engine.compile("1 + 1")
        second = engine.compile("1 + 1")
        assert first is second

    def test_cache_eviction(self):
        engine = XQueryEngine(cache_size=2)
        first = engine.compile("1")
        engine.compile("2")
        engine.compile("3")          # evicts "1"
        assert engine.compile("1") is not first

    def test_execute_shortcut(self):
        assert XQueryEngine().execute("2 * 3") == [6]

    def test_hit_refreshes_recency(self):
        """True LRU: a hit must move the entry to the back so the
        victim is the *least recently used*, not the oldest insert."""
        engine = XQueryEngine(cache_size=2)
        first = engine.compile("1")
        engine.compile("2")
        assert engine.compile("1") is first   # refresh "1"
        engine.compile("3")                   # must evict "2", not "1"
        assert engine.compile("1") is first
        assert list(engine._cache) == ["3", "1"]

    def test_cache_counters(self):
        from repro.obs import Recorder, observing

        engine = XQueryEngine(cache_size=2)
        recorder = Recorder()
        with observing(recorder):
            engine.compile("1")               # miss
            engine.compile("1")               # hit
            engine.compile("2")               # miss
            engine.compile("3")               # miss (evicts "1")
            engine.compile("1")               # miss again
        counters = recorder.counters.snapshot()
        assert counters["xquery.cache.hit"] == 1
        assert counters["xquery.cache.miss"] == 4


class TestStaticCollection:
    def test_doc_lookup_by_name(self):
        doc = parse_document("<a/>", name="x.xml")
        collection = StaticCollection([doc])
        assert collection.doc("x.xml") is doc
        with pytest.raises(KeyError):
            collection.doc("missing.xml")

    def test_collection_lists_all(self):
        docs = [parse_document(f"<d{i}/>", name=f"{i}.xml")
                for i in range(3)]
        collection = StaticCollection(docs)
        assert collection.collection() == docs
        assert len(collection) == 3

    def test_remove(self):
        doc = parse_document("<a/>", name="x.xml")
        collection = StaticCollection([doc])
        assert collection.remove("x.xml") is doc
        assert len(collection) == 0
        with pytest.raises(KeyError):
            collection.doc("x.xml")

    def test_unnamed_documents_not_addressable(self):
        doc = parse_document("<a/>")
        collection = StaticCollection([doc])
        assert len(collection) == 1
        with pytest.raises(KeyError):
            collection.doc("")


class TestRunQueryConvenience:
    def test_single_document_becomes_context(self):
        doc = parse_document("<a><b/></a>")
        assert run_query("count(/a/b)", [doc]) == [1]

    def test_multi_document_requires_collection(self):
        docs = [parse_document("<a/>", name="1"),
                parse_document("<a/>", name="2")]
        assert run_query("count(collection())", docs) == [2]
        with pytest.raises(XQueryEvalError):
            run_query("/a", docs)       # no context item with 2 docs


class TestContext:
    def test_bind_is_persistent_style(self):
        context = Context()
        child = context.bind("x", [1])
        assert child.variable("x") == [1]
        with pytest.raises(XQueryEvalError):
            context.variable("x")

    def test_focus_creates_child(self):
        context = Context()
        focused = context.focus("item", 2, 5)
        assert (focused.item, focused.position, focused.size) == \
            ("item", 2, 5)
        assert context.item is None

    def test_require_item_raises_when_absent(self):
        with pytest.raises(XQueryEvalError):
            Context().require_item()

    def test_empty_provider(self):
        provider = EmptyProvider()
        assert provider.collection() == []
        with pytest.raises(KeyError):
            provider.doc("x")
