"""Mini relational engine tests: tables, types, indexes, operators."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.relstore import (
    Column,
    ColumnType,
    Database,
    HashIndex,
    SortedIndex,
    Table,
    coerce,
    distinct,
    group_by,
    hash_join,
    left_outer_hash_join,
    limit,
    nested_loop_join,
    order_by,
    project,
    select,
    seq_scan,
    sort_key,
)


def people_table() -> Table:
    table = Table("people", [
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("name", ColumnType.TEXT),
        Column("age", ColumnType.INTEGER),
        Column("city", ColumnType.TEXT),
    ])
    rows = [
        {"id": 1, "name": "ann", "age": 34, "city": "waterloo"},
        {"id": 2, "name": "bob", "age": 28, "city": "toronto"},
        {"id": 3, "name": "cid", "age": None, "city": "waterloo"},
        {"id": 4, "name": "dee", "age": 41, "city": "boston"},
    ]
    table.insert_many(iter(rows))
    return table


class TestTypes:
    def test_coerce_integer(self):
        assert coerce("5", ColumnType.INTEGER) == 5
        assert coerce(5.0, ColumnType.INTEGER) == 5

    def test_coerce_integer_rejects_fraction(self):
        with pytest.raises(SchemaError):
            coerce(5.5, ColumnType.INTEGER)

    def test_coerce_integer_rejects_bool(self):
        with pytest.raises(SchemaError):
            coerce(True, ColumnType.INTEGER)

    def test_coerce_decimal(self):
        assert coerce("2.5", ColumnType.DECIMAL) == 2.5

    def test_coerce_text_stringifies(self):
        assert coerce(7, ColumnType.TEXT) == "7"

    def test_coerce_date_validates(self):
        assert coerce("2003-01-02", ColumnType.DATE) == "2003-01-02"
        with pytest.raises(SchemaError):
            coerce("not a date", ColumnType.DATE)

    def test_null_passes_through(self):
        assert coerce(None, ColumnType.INTEGER) is None

    def test_sort_key_nulls_first(self):
        values = ["b", None, "a", None]
        assert sorted(values, key=sort_key)[:2] == [None, None]

    def test_sort_key_type_buckets(self):
        values = ["a", 2, None]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 2, "a"]


class TestTable:
    def test_insert_and_get(self):
        table = people_table()
        assert table.value(0, "name") == "ann"
        assert len(table) == 4

    def test_insert_enforces_not_null(self):
        table = people_table()
        with pytest.raises(SchemaError):
            table.insert({"name": "x"})

    def test_unknown_column_rejected_on_access(self):
        table = people_table()
        with pytest.raises(SchemaError):
            table.offset("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", ColumnType.TEXT),
                        Column("a", ColumnType.TEXT)])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_scan_counts_rows(self):
        table = people_table()
        list(table.scan())
        assert table.rows_scanned == 4

    def test_as_dict(self):
        table = people_table()
        assert table.as_dict(1)["city"] == "toronto"


class TestIndexes:
    def test_sorted_lookup(self):
        table = people_table()
        index = SortedIndex(table, "city")
        assert sorted(index.lookup("waterloo")) == [0, 2]
        assert index.lookup("nowhere") == []

    def test_sorted_range(self):
        table = people_table()
        index = SortedIndex(table, "age")
        ids = index.range(30, 45)
        assert sorted(ids) == [0, 3]

    def test_sorted_range_open_ends(self):
        table = people_table()
        index = SortedIndex(table, "age")
        assert len(index.range(None, None)) == 3   # NULL age not indexed

    def test_sorted_range_exclusive(self):
        table = people_table()
        index = SortedIndex(table, "age")
        assert index.range(28, 41, include_low=False,
                           include_high=False) == [0]

    def test_nulls_not_indexed(self):
        table = people_table()
        index = SortedIndex(table, "age")
        assert len(index) == 3

    def test_first(self):
        table = people_table()
        index = SortedIndex(table, "age")
        assert table.value(index.first(), "age") == 28

    def test_unique_violation(self):
        table = people_table()
        with pytest.raises(SchemaError):
            SortedIndex(table, "city", unique=True)

    def test_hash_lookup(self):
        table = people_table()
        index = HashIndex(table, "name")
        assert index.lookup("bob") == [1]
        assert index.lookup("zzz") == []

    def test_hash_unique_violation(self):
        table = people_table()
        with pytest.raises(SchemaError):
            HashIndex(table, "city", unique=True)

    def test_hash_len(self):
        table = people_table()
        assert len(HashIndex(table, "city")) == 4


class TestIndexEdgeCases:
    """Range-bound, NULL-key, violation-message and maintenance cases."""

    # row ids by insertion order: ann=0 (34), bob=1 (28), cid=2 (NULL),
    # dee=3 (41)

    def test_range_half_open_low(self):
        index = SortedIndex(people_table(), "age")
        assert index.range(28, None, include_low=False) == [0, 3]

    def test_range_half_open_high(self):
        index = SortedIndex(people_table(), "age")
        assert index.range(None, 41, include_high=False) == [1, 0]

    def test_range_degenerate_point(self):
        index = SortedIndex(people_table(), "age")
        assert index.range(34, 34) == [0]
        assert index.range(34, 34, include_low=False,
                           include_high=False) == []

    def test_range_inverted_bounds_is_empty(self):
        index = SortedIndex(people_table(), "age")
        assert index.range(50, 20) == []

    def test_incremental_insert_skips_null_keys(self):
        index = SortedIndex(people_table(), "age")
        index.insert(None, 99)
        assert len(index) == 3
        index.remove(None, 99)            # no-op, no error
        assert len(index) == 3
        hash_index = HashIndex(people_table(), "age")
        hash_index.insert(None, 99)
        assert len(hash_index) == 3

    def test_unique_violation_message_names_table_column_key(self):
        with pytest.raises(SchemaError) as excinfo:
            HashIndex(people_table(), "city", unique=True)
        message = str(excinfo.value)
        assert "unique index people.city" in message
        assert "duplicate key" in message
        assert "waterloo" in message

    def test_sorted_unique_violation_message(self):
        with pytest.raises(SchemaError) as excinfo:
            SortedIndex(people_table(), "city", unique=True)
        message = str(excinfo.value)
        assert "unique index people.city" in message
        assert "duplicate key" in message

    def test_incremental_maintenance_mirrors_value_update(self):
        # What the engines' update workload does to an index entry:
        # remove the old key, insert the new one for the same row.
        index = SortedIndex(people_table(), "age")
        index.remove(34, 0)
        index.insert(52, 0)
        assert index.lookup(34) == []
        assert index.range(45, None) == [0]
        index.remove(28, 1)                  # row deleted
        assert index.range(None, None) == [3, 0]
        index.insert(30, 9)                  # row inserted
        assert index.range(29, 31) == [9]

    def test_database_indexes_follow_dml(self):
        database = Database()
        database.create_table("side", [
            Column("doc", ColumnType.TEXT, nullable=False),
            Column("value", ColumnType.TEXT),
        ])
        database.create_index("side", "value", "sorted")
        database.insert_row("side", {"doc": "a.xml", "value": "10"})
        database.insert_row("side", {"doc": "b.xml", "value": "20"})
        database.insert_row("side", {"doc": "c.xml", "value": None})
        assert [row["doc"] for row in
                database.lookup("side", "value", "20")] == ["b.xml"]
        index = database.index_for("side", "value")
        assert len(index) == 2               # NULL key not indexed
        for row_id in list(index.lookup("10")):
            database.delete_row("side", row_id)
        assert list(database.lookup("side", "value", "10")) == []
        assert [row["doc"] for row in
                database.range_scan("side", "value", "00", "99")] == \
            ["b.xml"]


class TestOperators:
    def test_seq_scan_with_predicate(self):
        table = people_table()
        rows = list(seq_scan(table, lambda r: r["city"] == "waterloo"))
        assert [row["id"] for row in rows] == [1, 3]

    def test_select_project(self):
        table = people_table()
        rows = project(select(seq_scan(table), lambda r: r["id"] > 2),
                       ["name"])
        assert list(rows) == [{"name": "cid"}, {"name": "dee"}]

    def test_order_by_with_nulls_first(self):
        table = people_table()
        rows = order_by(seq_scan(table), [("age", False)])
        assert rows[0]["name"] == "cid"

    def test_order_by_descending(self):
        table = people_table()
        rows = order_by(seq_scan(table), [("age", True)])
        assert rows[0]["age"] == 41

    def test_order_by_two_keys(self):
        table = people_table()
        rows = order_by(seq_scan(table), [("city", False), ("id", True)])
        cities = [row["city"] for row in rows]
        assert cities == sorted(cities)
        waterloo = [row["id"] for row in rows
                    if row["city"] == "waterloo"]
        assert waterloo == [3, 1]

    def test_hash_join(self):
        people = people_table()
        orders = Table("orders", [
            Column("o_id", ColumnType.INTEGER),
            Column("person", ColumnType.INTEGER),
        ])
        orders.insert({"o_id": 10, "person": 1})
        orders.insert({"o_id": 11, "person": 1})
        orders.insert({"o_id": 12, "person": 4})
        joined = list(hash_join(seq_scan(people), seq_scan(orders),
                                "id", "person"))
        assert len(joined) == 3
        assert {row["name"] for row in joined} == {"ann", "dee"}

    def test_left_outer_join_keeps_unmatched(self):
        people = people_table()
        empty = Table("x", [Column("person", ColumnType.INTEGER)])
        joined = list(left_outer_hash_join(
            seq_scan(people), seq_scan(empty), "id", "person"))
        assert len(joined) == 4

    def test_nested_loop_join(self):
        table = people_table()
        pairs = list(nested_loop_join(
            seq_scan(table), lambda: seq_scan(table),
            lambda a, b: a["id"] == b["id"]))
        assert len(pairs) == 4

    def test_group_by_aggregates(self):
        table = people_table()
        groups = {row["city"]: row["n"] for row in group_by(
            seq_scan(table), ["city"], {"n": len})}
        assert groups == {"waterloo": 2, "toronto": 1, "boston": 1}

    def test_limit(self):
        table = people_table()
        assert len(list(limit(seq_scan(table), 2))) == 2
        assert len(list(limit(seq_scan(table), 99))) == 4

    def test_distinct(self):
        table = people_table()
        cities = list(distinct(seq_scan(table), ["city"]))
        assert len(cities) == 3


class TestDatabase:
    def test_create_and_lookup_with_index(self):
        db = Database()
        db.create_table("t", [Column("k", ColumnType.TEXT)])
        db.table("t").insert({"k": "a"})
        db.table("t").insert({"k": "b"})
        db.create_index("t", "k", "hash")
        assert [row["k"] for row in db.lookup("t", "k", "b")] == ["b"]

    def test_lookup_without_index_scans(self):
        db = Database()
        db.create_table("t", [Column("k", ColumnType.TEXT)])
        db.table("t").insert({"k": "a"})
        assert list(db.lookup("t", "k", "a"))
        assert db.rows_scanned() == 1

    def test_lookup_with_index_avoids_scan(self):
        db = Database()
        db.create_table("t", [Column("k", ColumnType.TEXT)])
        for value in "abcde":
            db.table("t").insert({"k": value})
        db.create_index("t", "k", "sorted")
        db.reset_scan_counters()
        list(db.lookup("t", "k", "c"))
        assert db.rows_scanned() == 0

    def test_range_scan_with_sorted_index(self):
        db = Database()
        db.create_table("t", [Column("d", ColumnType.TEXT)])
        for day in ("2001-01-01", "2002-01-01", "2003-01-01"):
            db.table("t").insert({"d": day})
        db.create_index("t", "d", "sorted")
        rows = list(db.range_scan("t", "d", "2001-06-01", "2002-06-01"))
        assert [row["d"] for row in rows] == ["2002-01-01"]

    def test_range_scan_fallback(self):
        db = Database()
        db.create_table("t", [Column("n", ColumnType.INTEGER)])
        for n in (1, 5, 9, None):
            db.table("t").insert({"n": n})
        rows = list(db.range_scan("t", "n", 2, 9))
        assert [row["n"] for row in rows] == [5, 9]

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", [Column("a", ColumnType.TEXT)])
        with pytest.raises(SchemaError):
            db.create_table("t", [Column("a", ColumnType.TEXT)])

    def test_missing_table_rejected(self):
        with pytest.raises(SchemaError):
            Database().table("nope")

    def test_unknown_index_kind(self):
        db = Database()
        db.create_table("t", [Column("a", ColumnType.TEXT)])
        with pytest.raises(SchemaError):
            db.create_index("t", "a", "btree2000")

    def test_drop_indexes(self):
        db = Database()
        db.create_table("t", [Column("a", ColumnType.TEXT)])
        db.create_index("t", "a", "hash")
        db.drop_indexes()
        assert db.index_for("t", "a") is None

    def test_total_rows(self):
        db = Database()
        db.create_table("t", [Column("a", ColumnType.TEXT)])
        db.table("t").insert({"a": "x"})
        assert db.total_rows() == 1
