"""Workload tests: the 20 query types, applicability, parameters."""

from __future__ import annotations

import pytest

from repro.errors import BenchmarkError
from repro.workload import (
    ALL_QUERIES,
    EXPERIMENT_QUERIES,
    QUERIES_BY_ID,
    bind_params,
    workload_for_class,
)
from repro.xquery.parser import parse_query


class TestQuerySet:
    def test_twenty_query_types(self):
        assert len(ALL_QUERIES) == 20
        assert [query.qid for query in ALL_QUERIES] == \
            [f"Q{i}" for i in range(1, 21)]

    def test_experiment_subset_matches_paper(self):
        assert set(EXPERIMENT_QUERIES) == {"Q5", "Q8", "Q12", "Q14",
                                           "Q17"}

    def test_canonical_classes_match_paper_examples(self):
        expected = {
            "Q1": "dcsd", "Q2": "tcmd", "Q3": "tcsd", "Q4": "tcmd",
            "Q5": "dcmd", "Q6": "tcmd", "Q7": "dcsd", "Q8": "tcsd",
            "Q9": "dcmd", "Q10": "dcmd", "Q11": "tcsd", "Q12": "dcsd",
            "Q13": "tcmd", "Q14": "dcsd", "Q15": "tcmd", "Q16": "dcmd",
            "Q17": "tcsd", "Q18": "tcmd", "Q19": "dcmd", "Q20": "dcsd",
        }
        for query in ALL_QUERIES:
            assert query.canonical_class == expected[query.qid]

    def test_canonical_class_always_applicable(self):
        for query in ALL_QUERIES:
            assert query.applies_to(query.canonical_class)

    def test_experiment_queries_cover_all_classes(self):
        for qid in EXPERIMENT_QUERIES:
            query = QUERIES_BY_ID[qid]
            for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
                assert query.applies_to(class_key), (qid, class_key)

    def test_every_query_text_parses(self):
        for query in ALL_QUERIES:
            for class_key, text in query.xquery.items():
                parse_query(text)        # must not raise

    def test_text_for_unknown_class_raises(self):
        with pytest.raises(KeyError):
            QUERIES_BY_ID["Q4"].text_for("dcsd")

    def test_workload_for_class_nonempty(self):
        for class_key in ("dcsd", "dcmd", "tcsd", "tcmd"):
            queries = workload_for_class(class_key)
            assert len(queries) >= 8

    def test_functionality_labels_distinct_enough(self):
        functionality = {query.functionality for query in ALL_QUERIES}
        assert len(functionality) == 20


class TestParams:
    def test_all_required_variables_bound(self):
        import re
        for query in ALL_QUERIES:
            for class_key, text in query.xquery.items():
                params = bind_params(query.qid, class_key, units=50)
                for variable in set(re.findall(r"\$([a-z_][a-z0-9_]*)",
                                               text)):
                    # skip FLWOR-bound locals (single letters + known)
                    if variable in ("i", "a", "o", "e", "q", "x", "c",
                                    "p", "s", "t", "au", "loc", "d"):
                        continue
                    assert variable in params, \
                        f"{query.qid}/{class_key}: ${variable} unbound"

    def test_mid_range_id(self):
        assert bind_params("Q1", "dcsd", 100)["id"] == "50"
        assert bind_params("Q1", "dcsd", 1)["id"] == "1"

    def test_tcsd_word_selection(self):
        assert bind_params("Q8", "tcsd", 10)["word"] == "word_1"
        assert bind_params("Q11", "tcsd", 10)["word"] == "word_2"
        assert bind_params("Q17", "tcsd", 10)["word"] == "word_3"

    def test_doc_name_derived_from_id(self):
        params = bind_params("Q16", "dcmd", 40)
        assert params["name"] == f"order{params['id']}.xml"

    def test_unknown_class_raises(self):
        with pytest.raises(BenchmarkError):
            bind_params("Q1", "zzz", 10)

    def test_deterministic(self):
        assert bind_params("Q5", "dcmd", 30) == \
            bind_params("Q5", "dcmd", 30)

    def test_date_windows_are_iso(self):
        params = bind_params("Q14", "dcsd", 30)
        assert params["from"] < params["to"]
        assert len(params["from"]) == 10
