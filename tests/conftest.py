"""Shared fixtures: small generated corpora, loaded engines."""

from __future__ import annotations

import pytest

from repro.databases import CLASSES_BY_KEY
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

CATALOG_XML = """\
<catalog>
  <item id="I1"><title>Alpha</title><price>12.5</price>
    <authors><author><name>Ann</name><country>CA</country></author></authors>
  </item>
  <item id="I2"><title>Beta</title><price>7</price>
    <authors><author><name>Bob</name><country>US</country></author>
             <author><name>Cid</name><country>US</country></author></authors>
  </item>
  <item id="I3"><title>Gamma</title><price>30</price>
    <authors><author><name>Dee</name><country>CA</country></author></authors>
  </item>
</catalog>
"""


@pytest.fixture
def catalog_doc():
    """A small hand-written catalog document."""
    return parse_document(CATALOG_XML, name="catalog.xml")


@pytest.fixture(scope="session")
def small_corpora():
    """Generated corpora for all four classes (30 units, fixed seed)."""
    corpora = {}
    for key, db_class in CLASSES_BY_KEY.items():
        documents = db_class.generate(30, seed=11)
        corpora[key] = {
            "class": db_class,
            "documents": documents,
            "texts": [(doc.name, serialize(doc)) for doc in documents],
            "units": 30,
        }
    return corpora
