"""Distributed-tracing tests: context propagation, cross-process span
reassembly, attribution, and the live-telemetry surfaces.

The contracts under test: a trace context survives every hop of the
serving stack (client wire field, server root span, shard pipe RPC,
fork-worker spans piggybacked on replies) and reassembles offline into
exactly one complete tree per request — including across a worker
respawn, whose new process generation must never collide with its
predecessor's span ids; timeouts and incidents carry the originating
trace id; span logs are written atomically; and the resource sampler
calibrates itself against its own measured cost.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs as _obs
from repro.errors import QueryTimeout
from repro.faults.deadline import Deadline, deadline_scope
from repro.loadgen import ServingClient
from repro.obs import Recorder, ResourceSampler, observing
from repro.obs import trace as trace_mod
from repro.obs.export import (
    read_ndjson,
    span_record,
    trace_records,
    write_ndjson,
)
from repro.obs.trace import (
    TraceContext,
    assemble,
    attribution,
    attribution_table,
    completeness,
    from_wire,
    to_wire,
)
from repro.server import QueryServer, ServerConfig
from repro.workload.params import bind_params


# -- context and wire form ----------------------------------------------------


class TestContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext("abcd1234abcd1234", parent_gid="p1:7",
                           baggage={"tenant": "gold"})
        back = from_wire(to_wire(ctx))
        assert back.trace_id == ctx.trace_id
        assert back.parent_gid == "p1:7"
        assert back.baggage == {"tenant": "gold"}

    @pytest.mark.parametrize("wire", [
        None, "nope", 7, [], {}, {"trace_id": ""}, {"trace_id": 3},
    ])
    def test_malformed_wire_is_none_not_an_error(self, wire):
        assert from_wire(wire) is None

    def test_scope_is_nested_and_thread_local(self):
        assert trace_mod.current() is None
        outer = TraceContext(trace_mod.new_trace_id())
        inner = TraceContext(trace_mod.new_trace_id())
        with trace_mod.trace_scope(outer):
            assert trace_mod.current_trace_id() == outer.trace_id
            with trace_mod.trace_scope(inner):
                assert trace_mod.current_trace_id() == inner.trace_id
            assert trace_mod.current_trace_id() == outer.trace_id
        assert trace_mod.current() is None

    def test_none_scope_is_a_noop(self):
        with trace_mod.trace_scope(None):
            assert trace_mod.current() is None

    def test_trace_ids_are_16_hex(self):
        tid = trace_mod.new_trace_id()
        assert len(tid) == 16
        int(tid, 16)


# -- tracer stamping ----------------------------------------------------------


class TestStamping:
    def test_spans_inherit_the_ambient_trace(self):
        recorder = Recorder()
        ctx = TraceContext("feed0000feed0000", parent_gid="px:9")
        with observing(recorder), trace_mod.trace_scope(ctx):
            with _obs.span("outer"):
                with _obs.span("inner"):
                    pass
        inner, outer = recorder.tracer.named("inner")[0], \
            recorder.tracer.named("outer")[0]
        assert outer.trace_id == inner.trace_id == ctx.trace_id
        # Only the stack root links to the remote parent.
        assert outer.remote_parent == "px:9"
        assert inner.remote_parent is None
        assert inner.parent_id == outer.span_id

    def test_untraced_spans_stay_unstamped(self):
        recorder = Recorder()
        with observing(recorder):
            with _obs.span("plain"):
                pass
        span = recorder.tracer.named("plain")[0]
        assert span.trace_id is None
        assert "trace_id" not in span_record(span)
        assert "gid" not in span_record(span)

    def test_manual_spans_bypass_the_thread_stack(self):
        recorder = Recorder()
        tracer = recorder.tracer
        root = tracer.start_span("server.request", trace_id="ab" * 8,
                                 parent_gid="pc:1")
        assert tracer.current_span() is None   # not on the stack
        tracer.record_span("server.queue", start=1.0, end=1.5,
                           parent_id=root.span_id,
                           trace_id="ab" * 8)
        tracer.end_span(root)
        assert root.end is not None
        queue = tracer.named("server.queue")[0]
        assert queue.seconds == pytest.approx(0.5)
        assert queue.parent_id == root.span_id


# -- offline reassembly -------------------------------------------------------


def _span(gid, name, parent=None, seconds=1.0, start=0.0, trace="t1",
          **attrs):
    process = gid.split(":")[0]
    return {"gid": gid, "parent_gid": parent, "name": name,
            "seconds": seconds, "start": start, "trace_id": trace,
            "process": process, "attrs": attrs}


class TestReassembly:
    def test_complete_tree_across_processes(self):
        records = [
            _span("c:1", "client.request", seconds=10.0),
            _span("s:1", "server.request", parent="c:1", seconds=9.0,
                  start=0.5),
            _span("s:2", "server.queue", parent="s:1", seconds=1.0,
                  start=0.5),
            _span("s:3", "server.execute", parent="s:1", seconds=7.0,
                  start=1.5),
            _span("s:4", "shard.fanout", parent="s:3", seconds=6.0,
                  start=2.0),
            _span("w0.g0:1", "shard.worker", parent="s:4",
                  seconds=4.0, start=2.5),
            _span("w1.g0:1", "shard.worker", parent="s:4",
                  seconds=3.0, start=2.5),
            _span("s:5", "shard.merge", parent="s:4", seconds=0.5,
                  start=8.0),
        ]
        trees = assemble(records)
        assert len(trees) == 1
        tree = trees[0]
        assert tree.complete
        assert tree.root["name"] == "client.request"
        path = [span["name"] for span in tree.critical_path()]
        assert path == ["client.request", "server.request",
                        "server.execute", "shard.fanout",
                        "shard.worker"]
        decomposed = attribution(tree)
        assert decomposed["total"] == pytest.approx(10.0)
        assert decomposed["queue"] == pytest.approx(1.0)
        assert decomposed["execute"] == pytest.approx(4.0)  # slowest
        assert decomposed["merge"] == pytest.approx(0.5)
        assert decomposed["pipe"] == pytest.approx(6.0 - 4.0 - 0.5)
        assert decomposed["client_net"] == pytest.approx(1.0)
        total = sum(decomposed[b] for b in trace_mod.BUCKETS)
        assert total == pytest.approx(decomposed["total"])

    def test_orphans_make_a_tree_incomplete(self):
        records = [
            _span("s:1", "server.request"),
            _span("w0.g1:1", "shard.worker", parent="s:99"),
        ]
        tree = assemble(records)[0]
        assert not tree.complete
        assert len(tree.orphans) == 1
        coverage = completeness([tree])
        assert coverage["complete"] == 0
        assert coverage["complete_pct"] == 0.0

    def test_untraced_records_are_ignored(self):
        assert assemble([{"name": "load", "seconds": 1.0}]) == []

    def test_attribution_table_skips_incomplete_trees(self):
        good = assemble([_span("s:1", "server.request", seconds=2.0,
                               ttfr_ms=5.0)])[0]
        bad = assemble([_span("s:1", "server.request", trace="t2"),
                        _span("w:1", "x", parent="s:9", trace="t2")])[0]
        table = attribution_table([good, bad])
        assert table["requests"] == 1
        assert table["total_seconds"] == pytest.approx(2.0)
        assert table["ttfr_ms_mean"] == pytest.approx(5.0)


# -- cross-process propagation through the sharded engine ---------------------


class TestShardedPropagation:
    def test_fork_workers_report_spans_under_the_trace(self,
                                                      small_corpora):
        from repro.core.shard import ShardedEngine
        corpus = small_corpora["dcmd"]
        recorder = Recorder()
        engine = ShardedEngine("native", shards=3)
        try:
            engine.timed_load(corpus["class"], list(corpus["texts"]))
            params = bind_params("Q5", "dcmd", corpus["units"])
            ctx = TraceContext(trace_mod.new_trace_id())
            with observing(recorder), trace_mod.trace_scope(ctx):
                engine.execute("Q5", params)
            assert engine.last_ttfr_seconds is not None
            assert engine.last_ttfr_seconds > 0.0
        finally:
            engine.close()
        trees = assemble(trace_records(recorder))
        assert len(trees) == 1
        tree = trees[0]
        assert tree.complete, (tree.roots, tree.orphans)
        workers = tree.named("shard.worker")
        assert len(workers) == 3
        tags = {span["process"] for span in workers}
        assert tags == {"w0.g0", "w1.g0", "w2.g0"}
        assert tree.named("shard.fanout") and tree.named("shard.merge")

    def test_trace_survives_worker_respawn_without_collisions(
            self, small_corpora):
        from repro.core.shard import ShardedEngine
        corpus = small_corpora["dcmd"]
        recorder = Recorder()
        engine = ShardedEngine("native", shards=3, retries=2)
        try:
            engine.timed_load(corpus["class"], list(corpus["texts"]))
            params = bind_params("Q1", "dcmd", corpus["units"])
            with observing(recorder):
                with trace_mod.trace_scope(
                        TraceContext(trace_mod.new_trace_id())):
                    engine.execute("Q1", params)
                engine._workers[1].process.kill()
                time.sleep(0.1)
                with trace_mod.trace_scope(
                        TraceContext(trace_mod.new_trace_id())):
                    engine.execute("Q1", params)
        finally:
            engine.close()
        trees = assemble(trace_records(recorder))
        assert len(trees) == 2
        for tree in trees:
            assert tree.complete, (tree.trace_id, tree.orphans)
        # The respawned worker reports under a bumped generation, so
        # its span gids can never collide with the dead worker's.
        processes = {span["process"]
                     for span in trees[1].named("shard.worker")}
        assert "w1.g1" in processes
        gids = [span["gid"] for tree in trees for span in tree.spans]
        assert len(gids) == len(set(gids))

    def test_untraced_execution_adopts_nothing(self, small_corpora):
        from repro.core.shard import ShardedEngine
        corpus = small_corpora["dcmd"]
        recorder = Recorder()
        engine = ShardedEngine("native", shards=2)
        try:
            engine.timed_load(corpus["class"], list(corpus["texts"]))
            params = bind_params("Q5", "dcmd", corpus["units"])
            with observing(recorder):
                engine.execute("Q5", params)
        finally:
            engine.close()
        assert recorder.foreign_spans == []
        assert trace_records(recorder) == []


# -- server end to end --------------------------------------------------------


class TestServerTracing:
    def test_traced_request_reassembles_and_reports_ttfr(self,
                                                         tmp_path):
        spans_path = tmp_path / "server.ndjson"
        config = ServerConfig(class_key="dcmd", units=4, shards=2,
                              executors=2, trace=True,
                              trace_spans=str(spans_path))
        server = QueryServer(config).start_background()
        try:
            with ServingClient(port=server.port) as client:
                client.hello(shards=2)
                wire = {"trace_id": "cafe0123cafe0123",
                        "parent": "loadgen:1"}
                reply = client.query(
                    "Q5", params=bind_params("Q5", "dcmd", 4),
                    trace=wire)
                assert reply["ok"]
                assert reply["trace_id"] == "cafe0123cafe0123"
                assert reply["ttfr_ms"] > 0.0
                assert reply["ttfr_ms"] <= reply["seconds"] * 1000.0

                stats = client.stats()
                assert stats["trace"]["enabled"]
                assert stats["engines"]["misses"] >= 1
                assert stats["admission"]["capacity"] == 64
                assert stats["uptime_seconds"] > 0.0
                warm = stats["engines"]["warm"][0]
                assert warm["shards"] == 2
                assert len(warm["worker_pids"]) == 2
                assert all(b["state"] == "closed"
                           for b in warm["breakers"])
        finally:
            server.stop_background()
        records = read_ndjson(spans_path)
        trees = assemble(records)
        by_id = {tree.trace_id: tree for tree in trees}
        tree = by_id["cafe0123cafe0123"]
        # The server's slice of the tree: its root is remote-parented
        # at the client's gid, which is absent from the server log.
        assert [span["name"] for span in tree.roots] == []
        assert len(tree.orphans) == 1
        root = tree.orphans[0]
        assert root["name"] == "server.request"
        assert root["parent_gid"] == "loadgen:1"
        names = {span["name"] for span in tree.spans}
        assert {"server.request", "server.queue", "server.execute",
                "shard.fanout", "shard.worker",
                "shard.merge"} <= names
        # Re-linking under a synthetic client root completes it.
        records.append({"gid": "loadgen:1", "name": "client.request",
                        "trace_id": "cafe0123cafe0123",
                        "parent_gid": None, "seconds": 1.0,
                        "start": 0.0, "process": "loadgen",
                        "attrs": {}})
        joined = [t for t in assemble(records)
                  if t.trace_id == "cafe0123cafe0123"][0]
        assert joined.complete

    def test_untraced_server_replies_have_no_trace_id(self):
        server = QueryServer(
            ServerConfig(class_key="dcmd", units=4)).start_background()
        try:
            with ServingClient(port=server.port) as client:
                client.hello()
                reply = client.query(
                    "Q5", params=bind_params("Q5", "dcmd", 4))
                assert reply["ok"]
                assert "trace_id" not in reply
                stats = client.stats()
                assert stats["trace"] == {"enabled": False,
                                          "spans_recorded": 0}
        finally:
            server.stop_background()


# -- error tagging ------------------------------------------------------------


class TestErrorTagging:
    def test_deadline_timeout_carries_the_trace_id(self):
        ctx = TraceContext(trace_mod.new_trace_id())
        deadline = Deadline(0.0)
        with trace_mod.trace_scope(ctx), deadline_scope(deadline):
            with pytest.raises(QueryTimeout) as caught:
                deadline.check("test")
        assert caught.value.trace_id == ctx.trace_id

    def test_timeout_without_scope_has_no_trace_id(self):
        deadline = Deadline(0.0)
        with deadline_scope(deadline):
            with pytest.raises(QueryTimeout) as caught:
                deadline.check("test")
        assert caught.value.trace_id is None

    def test_chaos_incidents_tagged_with_trace_id(self):
        from repro.faults.chaos import run_chaos
        result = run_chaos("worker-crash-storm", units=8, shards=2,
                           queries=8, seed=3)
        for incident in result.incidents:
            assert incident["trace_id"], incident


# -- export atomicity ---------------------------------------------------------


class TestExport:
    def test_ndjson_accepts_dict_records_and_is_atomic(self, tmp_path):
        target = tmp_path / "deep" / "spans.ndjson"
        records = [_span("a:1", "x"), _span("a:2", "y", parent="a:1")]
        write_ndjson(records, target)
        assert read_ndjson(target) == records
        # No temp droppings left beside the file.
        assert [p.name for p in target.parent.iterdir()] == \
            ["spans.ndjson"]

    def test_trace_records_orders_by_start(self):
        recorder = Recorder()
        # perf_counter values are unbounded; an impossibly-late start
        # keeps the foreign span last regardless of the local clock.
        recorder.adopt_spans([_span("w:1", "late", start=1e15)])
        with observing(recorder), trace_mod.trace_scope(
                TraceContext("aa" * 8)):
            with _obs.span("early"):
                pass
        names = [record["name"] for record in trace_records(recorder)]
        assert names == ["early", "late"]


# -- resource sampler ---------------------------------------------------------


class TestResourceSampler:
    def test_calibration_bounds_the_interval(self):
        import os
        sampler = ResourceSampler([os.getpid()])
        interval = sampler.calibrate(pilot=3)
        assert 0.05 <= interval <= 2.0
        assert sampler.sample_cost >= 0.0

    def test_sampling_collects_cpu_and_rss(self):
        import os
        sampler = ResourceSampler([os.getpid()], interval=0.01)
        sampler.start()
        deadline = time.monotonic() + 2.0
        try:
            while (sampler.samples < 3
                   and time.monotonic() < deadline):
                time.sleep(0.02)
        finally:
            sampler.stop()
        summary = sampler.summary()
        assert summary["samples"] >= 3
        assert summary["mode"] in ("proc", "rusage")
        assert summary["cpu_seconds_total"] >= 0.0
        assert summary["rss_max_kb_total"] > 0
        assert str(os.getpid()) in summary["pids"]

    def test_dead_pid_is_skipped_not_fatal(self):
        sampler = ResourceSampler([2 ** 22 + 12345], interval=0.01)
        sampler._sample_once()
        assert sampler.summary()["pids"] == {} \
            or sampler.summary()["mode"] == "rusage"
