"""Evaluator tests: paths, predicates, FLWOR, quantifiers, constructors."""

from __future__ import annotations

import pytest

from repro.errors import XQueryEvalError, XQueryTypeError
from repro.xml.nodes import Attribute, Element
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xquery import run_query


@pytest.fixture
def doc(catalog_doc):
    return catalog_doc


class TestArithmetic:
    def test_basic(self):
        assert run_query("1 + 2 * 3") == [7]
        assert run_query("(1 + 2) * 3") == [9]

    def test_div_produces_float(self):
        assert run_query("7 div 2") == [3.5]

    def test_idiv_truncates(self):
        assert run_query("7 idiv 2") == [3]
        assert run_query("-7 idiv 2") == [-3]

    def test_mod(self):
        assert run_query("7 mod 3") == [1]

    def test_division_by_zero(self):
        with pytest.raises(XQueryEvalError):
            run_query("1 div 0")

    def test_empty_operand_yields_empty(self):
        assert run_query("() + 1") == []

    def test_unary(self):
        assert run_query("-(2 + 3)") == [-5]
        assert run_query("--5") == [5]

    def test_string_concat_operator(self):
        assert run_query("'a' || 'b'") == ["ab"]

    def test_untyped_node_arithmetic(self):
        doc = parse_document("<a><n>4</n></a>")
        assert run_query("/a/n + 1", [doc]) == [5]


class TestComparisons:
    def test_general_existential(self):
        assert run_query("(1, 2, 3) = 2") == [True]
        assert run_query("(1, 2) = (3, 4)") == [False]

    def test_general_inequality_both_directions(self):
        # (1,5) != 1 is true because 5 != 1.
        assert run_query("(1, 5) != 1") == [True]

    def test_value_comparison_empty_is_empty(self):
        assert run_query("() eq 1") == []

    def test_value_comparison_multi_raises(self):
        with pytest.raises(XQueryTypeError):
            run_query("(1, 2) eq 1")

    def test_node_identity(self):
        doc = parse_document("<a><b/><b/></a>")
        assert run_query("/a/b[1] is /a/b[1]", [doc]) == [True]
        assert run_query("/a/b[1] is /a/b[2]", [doc]) == [False]

    def test_node_order_comparison(self):
        doc = parse_document("<a><b/><c/></a>")
        assert run_query("/a/b << /a/c", [doc]) == [True]
        assert run_query("/a/b >> /a/c", [doc]) == [False]

    def test_range_expression(self):
        assert run_query("1 to 4") == [1, 2, 3, 4]
        assert run_query("3 to 2") == []


class TestLogic:
    def test_short_circuit_and(self):
        # The right side would raise if evaluated.
        assert run_query("false() and no-such-fn()") == [False]

    def test_short_circuit_or(self):
        assert run_query("true() or no-such-fn()") == [True]

    def test_if(self):
        assert run_query("if (()) then 1 else 2") == [2]


class TestPaths:
    def test_child_steps(self, doc):
        titles = run_query("/catalog/item/title", [doc])
        assert [t.text_content() for t in titles] == \
            ["Alpha", "Beta", "Gamma"]

    def test_descendant(self, doc):
        assert len(run_query("//author", [doc])) == 4

    def test_attribute_axis(self, doc):
        ids = run_query("/catalog/item/@id", [doc])
        assert [a.value for a in ids] == ["I1", "I2", "I3"]
        assert all(isinstance(a, Attribute) for a in ids)

    def test_wildcard(self, doc):
        children = run_query("/catalog/item[1]/*", [doc])
        assert [c.tag for c in children] == ["title", "price", "authors"]

    def test_text_node_test(self, doc):
        texts = run_query("/catalog/item[1]/title/text()", [doc])
        assert texts[0].text == "Alpha"

    def test_parent_axis(self, doc):
        result = run_query("//name[. = 'Bob']/../..", [doc])
        assert [e.tag for e in result] == ["authors"]

    def test_self_axis(self, doc):
        result = run_query("//author/self::author", [doc])
        assert len(result) == 4

    def test_positional_predicate(self, doc):
        second = run_query("/catalog/item[2]", [doc])
        assert second[0].get("id") == "I2"

    def test_last_predicate(self, doc):
        result = run_query("/catalog/item[last()]", [doc])
        assert result[0].get("id") == "I3"

    def test_position_function_predicate(self, doc):
        result = run_query("/catalog/item[position() > 1]", [doc])
        assert len(result) == 2

    def test_boolean_predicate(self, doc):
        result = run_query("/catalog/item[price > 10]/@id", [doc])
        assert [a.value for a in result] == ["I1", "I3"]

    def test_predicate_on_attribute_value(self, doc):
        result = run_query("//item[@id = 'I2']/title", [doc])
        assert result[0].text_content() == "Beta"

    def test_path_result_deduplicated_in_doc_order(self, doc):
        # // over nested matches must not duplicate nodes.
        result = run_query("//author/.. | //authors", [doc])
        assert len(result) == 3

    def test_union_in_document_order(self, doc):
        result = run_query("//price | //title", [doc])
        assert [e.tag for e in result][:2] == ["title", "price"]

    def test_union_of_atoms_rejected(self):
        with pytest.raises(XQueryTypeError):
            run_query("1 | 2")

    def test_mixing_nodes_and_atoms_in_step_rejected(self, doc):
        with pytest.raises(XQueryTypeError):
            run_query("/catalog/item/(if (@id='I1') then 1 else title)",
                      [doc])

    def test_double_slash_midpath(self, doc):
        assert len(run_query("/catalog//country", [doc])) == 4

    def test_filter_on_sequence(self, doc):
        result = run_query("(//author)[2]/name", [doc])
        assert result[0].text_content() == "Bob"


class TestFLWOR:
    def test_for_iterates(self):
        assert run_query("for $x in (1,2,3) return $x * 2") == [2, 4, 6]

    def test_let_binds_sequence(self):
        assert run_query("let $s := (1,2,3) return count($s)") == [3]

    def test_where_filters(self):
        assert run_query(
            "for $x in 1 to 10 where $x mod 3 = 0 return $x") == [3, 6, 9]

    def test_at_position(self):
        result = run_query(
            "for $x at $i in ('a','b') return concat($i, $x)")
        assert result == ["1a", "2b"]

    def test_nested_for_cartesian(self):
        result = run_query(
            "for $x in (1,2) for $y in (10,20) return $x + $y")
        assert result == [11, 21, 12, 22]

    def test_order_by_ascending(self):
        result = run_query("for $x in (3,1,2) order by $x return $x")
        assert result == [1, 2, 3]

    def test_order_by_descending(self):
        result = run_query(
            "for $x in (3,1,2) order by $x descending return $x")
        assert result == [3, 2, 1]

    def test_order_by_string_key(self, doc):
        result = run_query(
            "for $i in //item order by $i/title descending "
            "return string($i/@id)", [doc])
        assert result == ["I3", "I2", "I1"]

    def test_order_by_multiple_keys(self):
        result = run_query(
            "for $x in ('bb','a','cc','d') "
            "order by string-length($x), $x return $x")
        assert result == ["a", "d", "bb", "cc"]

    def test_order_by_empty_least(self):
        result = run_query(
            "for $x in (1, 2, 3) "
            "order by (if ($x = 2) then () else $x) return $x")
        assert result == [2, 1, 3]

    def test_order_by_empty_greatest(self):
        result = run_query(
            "for $x in (1, 2, 3) "
            "order by (if ($x = 2) then () else $x) empty greatest "
            "return $x")
        assert result == [1, 3, 2]

    def test_order_by_date_cast(self):
        result = run_query(
            "for $d in ('2003-02-01', '2001-12-31', '2002-06-15') "
            "order by xs:date($d) return $d")
        assert result == ["2001-12-31", "2002-06-15", "2003-02-01"]

    def test_stable_sort_preserves_ties(self):
        result = run_query(
            "for $p at $i in ('b','a','c') order by string-length($p) "
            "return $p")
        assert result == ["b", "a", "c"]


class TestQuantifiers:
    def test_some_true(self):
        assert run_query("some $x in (1,2,3) satisfies $x > 2") == [True]

    def test_some_false_on_empty(self):
        assert run_query("some $x in () satisfies true()") == [False]

    def test_every_true_on_empty(self):
        assert run_query("every $x in () satisfies false()") == [True]

    def test_every(self, doc):
        result = run_query(
            "for $i in //item where every $a in $i/authors/author "
            "satisfies $a/country = 'US' return string($i/@id)", [doc])
        assert result == ["I2"]

    def test_multi_variable_quantifier(self):
        assert run_query(
            "some $x in (1,2), $y in (2,3) satisfies $x = $y") == [True]


class TestConstructors:
    def test_simple_element(self):
        result = run_query("<a x='1'>t</a>")
        assert serialize(result[0]) == '<a x="1">t</a>'

    def test_enclosed_atomics_space_separated(self):
        result = run_query("<a>{ (1, 2, 3) }</a>")
        assert serialize(result[0]) == "<a>1 2 3</a>"

    def test_node_content_copied(self, doc):
        result = run_query("<wrap>{ /catalog/item[1]/title }</wrap>", [doc])
        assert serialize(result[0]) == "<wrap><title>Alpha</title></wrap>"

    def test_copy_is_deep_and_detached(self, doc):
        result = run_query("<w>{ //author[1] }</w>", [doc])
        original = run_query("//author[1]", [doc])[0]
        copied = result[0].children[0]
        assert copied is not original
        assert serialize(copied) == serialize(original)

    def test_attribute_from_expression(self, doc):
        result = run_query('<r id="{ /catalog/item[1]/@id }"/>', [doc])
        assert result[0].get("id") == "I1"

    def test_attribute_node_in_content_becomes_attribute(self, doc):
        result = run_query("<r>{ /catalog/item[1]/@id }</r>", [doc])
        assert result[0].get("id") == "I1"
        assert not result[0].children

    def test_boundary_whitespace_stripped(self):
        result = run_query("<a>  { 1 }  </a>")
        assert serialize(result[0]) == "<a>1</a>"

    def test_constructed_tree_navigable(self):
        result = run_query("<a><b>1</b><b>2</b></a>/b[2]")
        assert result[0].text_content() == "2"

    def test_nested_constructors_with_flwor(self, doc):
        result = run_query(
            "<cheap>{ for $i in //item[price < 10] "
            "return <t>{ string($i/title) }</t> }</cheap>", [doc])
        assert serialize(result[0]) == "<cheap><t>Beta</t></cheap>"


class TestContextItem:
    def test_context_item_path(self, doc):
        item = run_query("/catalog/item[1]", [doc])[0]
        result = run_query("title", context_item=item)
        assert result[0].text_content() == "Alpha"

    def test_dot_reference(self, doc):
        result = run_query("//name[. = 'Ann']", [doc])
        assert len(result) == 1

    def test_missing_context_raises(self):
        with pytest.raises(XQueryEvalError):
            run_query("/a")

    def test_casting_path_result(self, doc):
        result = run_query("xs:decimal(/catalog/item[1]/price)", [doc])
        assert result == [12.5]
