"""Multi-user harness tests (extension toward the paper's roadmap)."""

from __future__ import annotations

import threading

import pytest

from repro.core.indexes import indexes_for
from repro.core.multiuser import run_multi_user
from repro.engines import NativeEngine, SqlServerEngine
from repro.errors import BenchmarkError
from repro.workload.params import bind_params


def load(factory, corpus):
    engine = factory()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestMultiUser:
    @pytest.mark.parametrize("mode", ["threads", "interleaved"])
    def test_all_queries_complete(self, mode, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=3,
                                queries_per_stream=5, mode=mode)
        assert result.total_queries == 15
        assert all(stream.errors == 0 for stream in result.streams)
        assert result.throughput_qps > 0

    def test_interleaved_deterministic_counts(self, small_corpora):
        engine = load(SqlServerEngine, small_corpora["dcmd"])
        first = run_multi_user(engine, "dcmd", 30, streams=2,
                               queries_per_stream=4, mode="interleaved")
        second = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=4,
                                mode="interleaved")
        assert first.total_queries == second.total_queries == 8

    def test_streams_have_distinct_plans(self, small_corpora):
        from repro.core.multiuser import _stream_plan
        first = _stream_plan("dcmd", 30, 10, seed=1,
                             query_ids=("Q5", "Q8"))
        second = _stream_plan("dcmd", 30, 10, seed=2,
                              query_ids=("Q5", "Q8"))
        assert first != second

    def test_latency_statistics(self, small_corpora):
        engine = load(NativeEngine, small_corpora["tcmd"])
        result = run_multi_user(engine, "tcmd", 30, streams=2,
                                queries_per_stream=3,
                                mode="interleaved")
        for stream in result.streams:
            assert stream.mean_latency_ms() > 0
            assert stream.max_latency_ms() >= stream.mean_latency_ms()

    def test_latency_percentiles(self, small_corpora):
        """Tail latency is first-class: P50/P95/P99 per stream and
        merged across streams, ordered as percentiles must be."""
        engine = load(NativeEngine, small_corpora["tcmd"])
        result = run_multi_user(engine, "tcmd", 30, streams=2,
                                queries_per_stream=5,
                                mode="interleaved")
        for stream in result.streams:
            p50, p95 = stream.p50_latency_ms(), stream.p95_latency_ms()
            p99, top = stream.p99_latency_ms(), stream.max_latency_ms()
            assert 0 < p50 <= p95 <= p99 <= top
        overall = result.latency_histogram()
        assert overall.count == result.total_queries
        assert overall.p50 <= overall.p99 <= overall.max

    def test_summary_renders(self, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=2,
                                mode="interleaved")
        text = result.summary()
        assert "2 streams" in text and "q/s" in text
        assert "p50" in text and "p95" in text and "p99" in text

    def test_record_is_json_ready(self, small_corpora):
        import json
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=2,
                                mode="interleaved")
        record = json.loads(json.dumps(result.record()))
        assert record["total_queries"] == 4
        assert record["latency"]["count"] == 4
        assert len(record["per_stream"]) == 2

    def test_unknown_mode_rejected(self, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        with pytest.raises(BenchmarkError):
            run_multi_user(engine, "dcmd", 30, mode="quantum")

    def test_threaded_matches_interleaved_results(self, small_corpora):
        """Same plans -> same query counts regardless of mode."""
        corpus = small_corpora["dcmd"]
        threaded = run_multi_user(load(NativeEngine, corpus), "dcmd", 30,
                                  streams=3, queries_per_stream=4,
                                  seed=5, mode="threads")
        sequential = run_multi_user(load(NativeEngine, corpus), "dcmd",
                                    30, streams=3, queries_per_stream=4,
                                    seed=5, mode="interleaved")
        assert threaded.total_queries == sequential.total_queries


class TestConcurrentMixedWorkload:
    """Reader threads querying while an update stream mutates the same
    engine.  The update path swaps an element's children in one
    assignment, so a concurrent reader must see either the old or the
    new value — never an empty or torn one."""

    STATUSES = ("MIXED_A", "MIXED_B")

    def _run_mixed(self, engine, readers=3, writes=40, reads=30):
        params = dict(bind_params("Q9", "dcmd", 30))
        order_id = params["id"]
        baseline = engine.execute("Q9", params)
        assert baseline, "probe order must have an order_status"
        allowed = set()
        for status in self.STATUSES:
            allowed.update(value.replace(
                ">" + self._status_text(baseline[0]) + "<",
                ">" + status + "<") for value in baseline)
        allowed.update(baseline)
        observed, errors = [], []

        def reader():
            try:
                for __ in range(reads):
                    observed.append(tuple(engine.execute("Q9", params)))
            except Exception as exc:  # pragma: no cover - fail below
                errors.append(exc)

        def writer():
            try:
                for index in range(writes):
                    engine.update_value(
                        "order/@id", order_id, "order_status",
                        self.STATUSES[index % len(self.STATUSES)])
            except Exception as exc:  # pragma: no cover - fail below
                errors.append(exc)

        threads = [threading.Thread(target=reader)
                   for __ in range(readers)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert observed
        for result in observed:
            assert result, "reader saw an empty (torn) result"
            for value in result:
                assert value in allowed, (
                    f"torn read: {value!r} is neither the old nor a "
                    f"written status")

    @staticmethod
    def _status_text(serialized):
        inner = serialized.split(">", 1)[1].rsplit("<", 1)[0]
        return inner

    def test_no_torn_reads_native(self, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        self._run_mixed(engine)

    def test_no_torn_reads_sharded(self, small_corpora):
        from repro.core.shard import ShardedEngine
        corpus = small_corpora["dcmd"]
        engine = load(lambda: ShardedEngine("native", shards=2), corpus)
        try:
            self._run_mixed(engine, readers=2, writes=20, reads=10)
        finally:
            engine.close()

    def test_updates_visible_after_mixed_run(self, small_corpora):
        """Summary/index invalidation holds: once the writers are done,
        every reader sees the final written value, matching a fresh
        engine that applied the same updates sequentially."""
        corpus = small_corpora["dcmd"]
        engine = load(NativeEngine, corpus)
        self._run_mixed(engine, readers=2, writes=11, reads=5)
        params = dict(bind_params("Q9", "dcmd", 30))
        oracle = load(NativeEngine, corpus)
        oracle.update_value("order/@id", params["id"], "order_status",
                            self.STATUSES[10 % len(self.STATUSES)])
        assert engine.execute("Q9", params) == oracle.execute(
            "Q9", params)

    def test_queries_while_sharded_update_stream(self, small_corpora):
        """run_multi_user streams against the sharded service while an
        update stream mutates documents underneath them."""
        from repro.core.shard import ShardedEngine
        corpus = small_corpora["dcmd"]
        engine = load(lambda: ShardedEngine("native", shards=2), corpus)
        try:
            stop = threading.Event()

            def updater():
                index = 0
                while not stop.is_set():
                    engine.update_value(
                        "order/@id", str(1 + index % 30),
                        "order_status",
                        self.STATUSES[index % len(self.STATUSES)])
                    index += 1

            thread = threading.Thread(target=updater)
            thread.start()
            try:
                result = run_multi_user(engine, "dcmd", 30, streams=2,
                                        queries_per_stream=4,
                                        mode="threads")
            finally:
                stop.set()
                thread.join()
            assert result.total_queries == 8
            assert all(stream.errors == 0 for stream in result.streams)
            assert not engine.incidents
        finally:
            engine.close()
