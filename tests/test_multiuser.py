"""Multi-user harness tests (extension toward the paper's roadmap)."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.core.multiuser import run_multi_user
from repro.engines import NativeEngine, SqlServerEngine
from repro.errors import BenchmarkError


def load(factory, corpus):
    engine = factory()
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestMultiUser:
    @pytest.mark.parametrize("mode", ["threads", "interleaved"])
    def test_all_queries_complete(self, mode, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=3,
                                queries_per_stream=5, mode=mode)
        assert result.total_queries == 15
        assert all(stream.errors == 0 for stream in result.streams)
        assert result.throughput_qps > 0

    def test_interleaved_deterministic_counts(self, small_corpora):
        engine = load(SqlServerEngine, small_corpora["dcmd"])
        first = run_multi_user(engine, "dcmd", 30, streams=2,
                               queries_per_stream=4, mode="interleaved")
        second = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=4,
                                mode="interleaved")
        assert first.total_queries == second.total_queries == 8

    def test_streams_have_distinct_plans(self, small_corpora):
        from repro.core.multiuser import _stream_plan
        first = _stream_plan("dcmd", 30, 10, seed=1,
                             query_ids=("Q5", "Q8"))
        second = _stream_plan("dcmd", 30, 10, seed=2,
                              query_ids=("Q5", "Q8"))
        assert first != second

    def test_latency_statistics(self, small_corpora):
        engine = load(NativeEngine, small_corpora["tcmd"])
        result = run_multi_user(engine, "tcmd", 30, streams=2,
                                queries_per_stream=3,
                                mode="interleaved")
        for stream in result.streams:
            assert stream.mean_latency_ms() > 0
            assert stream.max_latency_ms() >= stream.mean_latency_ms()

    def test_latency_percentiles(self, small_corpora):
        """Tail latency is first-class: P50/P95/P99 per stream and
        merged across streams, ordered as percentiles must be."""
        engine = load(NativeEngine, small_corpora["tcmd"])
        result = run_multi_user(engine, "tcmd", 30, streams=2,
                                queries_per_stream=5,
                                mode="interleaved")
        for stream in result.streams:
            p50, p95 = stream.p50_latency_ms(), stream.p95_latency_ms()
            p99, top = stream.p99_latency_ms(), stream.max_latency_ms()
            assert 0 < p50 <= p95 <= p99 <= top
        overall = result.latency_histogram()
        assert overall.count == result.total_queries
        assert overall.p50 <= overall.p99 <= overall.max

    def test_summary_renders(self, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=2,
                                mode="interleaved")
        text = result.summary()
        assert "2 streams" in text and "q/s" in text
        assert "p50" in text and "p95" in text and "p99" in text

    def test_record_is_json_ready(self, small_corpora):
        import json
        engine = load(NativeEngine, small_corpora["dcmd"])
        result = run_multi_user(engine, "dcmd", 30, streams=2,
                                queries_per_stream=2,
                                mode="interleaved")
        record = json.loads(json.dumps(result.record()))
        assert record["total_queries"] == 4
        assert record["latency"]["count"] == 4
        assert len(record["per_stream"]) == 2

    def test_unknown_mode_rejected(self, small_corpora):
        engine = load(NativeEngine, small_corpora["dcmd"])
        with pytest.raises(BenchmarkError):
            run_multi_user(engine, "dcmd", 30, mode="quantum")

    def test_threaded_matches_interleaved_results(self, small_corpora):
        """Same plans -> same query counts regardless of mode."""
        corpus = small_corpora["dcmd"]
        threaded = run_multi_user(load(NativeEngine, corpus), "dcmd", 30,
                                  streams=3, queries_per_stream=4,
                                  seed=5, mode="threads")
        sequential = run_multi_user(load(NativeEngine, corpus), "dcmd",
                                    30, streams=3, queries_per_stream=4,
                                    seed=5, mode="interleaved")
        assert threaded.total_queries == sequential.total_queries
