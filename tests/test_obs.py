"""Observability subsystem tests: tracer, histograms, export, driver."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core import BenchmarkConfig, XBench
from repro.obs import (
    NULL_SPAN,
    LatencyHistogram,
    Recorder,
    bench_summary,
    format_profile,
    observing,
    read_ndjson,
    write_bench_artifact,
    write_ndjson,
)
from repro.obs import recorder as hooks


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with observability off."""
    assert hooks.active() is None
    yield
    hooks.uninstall()


class TestTracer:
    def test_span_nesting(self):
        recorder = Recorder()
        with observing(recorder):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("sibling"):
                    pass
        spans = {span.name: span for span in recorder.spans}
        assert set(spans) == {"outer", "inner", "sibling"}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id
        assert spans["outer"].seconds >= spans["inner"].seconds

    def test_span_attrs_and_set(self):
        recorder = Recorder()
        with observing(recorder):
            with obs.span("load", engine="native") as span:
                span.set(documents=7)
        [span] = recorder.spans
        assert span.attrs == {"engine": "native", "documents": 7}

    def test_thread_local_stacks(self):
        """Concurrent streams build independent span trees."""
        recorder = Recorder()

        def stream(index: int) -> None:
            with obs.span("stream", stream=index):
                with obs.span("query", stream=index):
                    pass

        with observing(recorder):
            workers = [threading.Thread(target=stream, args=(i,))
                       for i in range(4)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()

        streams = {span.attrs["stream"]: span
                   for span in recorder.tracer.named("stream")}
        for query in recorder.tracer.named("query"):
            parent = streams[query.attrs["stream"]]
            assert query.parent_id == parent.span_id
            assert query.thread == parent.thread

    def test_exception_still_closes_span(self):
        recorder = Recorder()
        with observing(recorder):
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        [span] = recorder.spans
        assert span.name == "boom" and span.end is not None


class TestDisabledMode:
    def test_span_short_circuits_to_shared_noop(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", key="value") is NULL_SPAN
        with obs.span("nested") as span:
            assert span is NULL_SPAN
            span.set(attr=1)

    def test_hooks_are_noops(self):
        hooks.count("x", 5)
        hooks.gauge("g", 1.0)
        hooks.record_latency("h", 0.1)
        assert hooks.counters_snapshot() is None
        assert hooks.counters_delta(None) is None
        assert hooks.active() is None

    def test_plan_hooks_short_circuit_to_shared_noop(self):
        """Plan profiling disabled: one global read, the shared no-op
        handle, zero allocation per call."""
        from repro.obs import NULL_PLAN_NODE
        assert hooks.plan() is None
        assert hooks.plan_tree(qid="Q5") is NULL_PLAN_NODE
        assert hooks.plan_scope(scale="small") is NULL_PLAN_NODE
        assert hooks.plan_node("seq_scan", table="t") is NULL_PLAN_NODE
        with hooks.plan_tree(qid="Q5") as handle:
            assert handle is NULL_PLAN_NODE
            handle.add(rows_out=3).set(attr=1)

    def test_recorder_without_profiler_records_no_plans(self):
        """A plain Recorder (observe on, explain off) keeps the plan
        channel dark: hooks still no-op, no trees materialize."""
        from repro.obs import NULL_PLAN_NODE
        recorder = Recorder()
        assert recorder.plan is None
        with observing(recorder):
            assert hooks.plan() is None
            assert hooks.plan_tree(qid="Q1") is NULL_PLAN_NODE
            assert hooks.plan_node("seq_scan") is NULL_PLAN_NODE

    def test_uninstalled_after_observing_block(self):
        recorder = Recorder()
        with observing(recorder):
            assert hooks.active() is recorder
        assert hooks.active() is None

    def test_observing_nests(self):
        outer, inner = Recorder(), Recorder()
        with observing(outer):
            with observing(inner):
                hooks.count("x")
            hooks.count("y")
        assert inner.counters.get("x") == 1
        assert outer.counters.get("x") == 0
        assert outer.counters.get("y") == 1


class TestHistogram:
    def test_percentiles_known_inputs(self):
        histogram = LatencyHistogram(float(i) for i in range(1, 101))
        assert histogram.p50 == pytest.approx(50.5)
        assert histogram.p95 == pytest.approx(95.05)
        assert histogram.p99 == pytest.approx(99.01)
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_small_samples(self):
        assert LatencyHistogram().p99 == 0.0
        assert LatencyHistogram([2.0]).p50 == 2.0
        histogram = LatencyHistogram([1.0, 3.0])
        assert histogram.p50 == pytest.approx(2.0)

    def test_merge(self):
        merged = LatencyHistogram.merged(
            [LatencyHistogram([1.0]), LatencyHistogram([3.0, 5.0])])
        assert merged.count == 3 and merged.max == 5.0

    def test_summary_in_milliseconds(self):
        summary = LatencyHistogram([0.010, 0.020]).summary()
        assert summary["count"] == 2
        assert summary["p50_ms"] == pytest.approx(15.0)
        assert summary["max_ms"] == pytest.approx(20.0)


class TestCounters:
    def test_snapshot_delta(self):
        recorder = Recorder()
        with observing(recorder):
            hooks.count("a", 2)
            before = hooks.counters_snapshot()
            hooks.count("a", 3)
            hooks.count("b")
            delta = hooks.counters_delta(before)
        assert delta == {"a": 3, "b": 1}
        assert recorder.counters.get("a") == 5

    def test_gauges(self):
        recorder = Recorder()
        with observing(recorder):
            hooks.gauge("rows", 10)
            hooks.gauge("rows", 20)
        assert recorder.gauges.get("rows") == 20


class TestExport:
    def test_ndjson_round_trip(self, tmp_path):
        recorder = Recorder()
        with observing(recorder):
            with obs.span("load", engine="native"):
                with obs.span("parse"):
                    pass
        path = write_ndjson(recorder.spans, tmp_path / "spans.ndjson")
        records = read_ndjson(path)
        assert len(records) == len(recorder.spans) == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["parse"]["parent_id"] == by_name["load"]["span_id"]
        assert by_name["load"]["attrs"] == {"engine": "native"}
        assert all(record["seconds"] >= 0 for record in records)

    def test_bench_summary_round_trip(self, tmp_path):
        recorder = Recorder()
        with observing(recorder):
            hooks.count("xquery.nodes_visited", 7)
            hooks.record_latency("query/Q5", 0.002)
            with obs.span("load", engine="native"):
                pass
        summary = bench_summary("unit", recorder=recorder,
                                config={"divisor": 1000})
        path = write_bench_artifact(summary, tmp_path)
        assert path.name == "BENCH_unit.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == obs.SCHEMA
        assert loaded["config"] == {"divisor": 1000}
        assert loaded["counters"] == {"xquery.nodes_visited": 7}
        assert loaded["phases"][0]["phase"] == "load"
        assert loaded["histograms"]["query/Q5"]["count"] == 1

    def test_artifact_name_sanitized(self, tmp_path):
        path = write_bench_artifact({"name": "a b/c"}, tmp_path)
        assert path.name == "BENCH_a_b_c.json"


def _observed_bench(**overrides):
    defaults = dict(scale_divisor=10_000, scale_names=("small",),
                    class_keys=("dcsd",), seed=3, observe=True,
                    repeats=3)
    defaults.update(overrides)
    return XBench(BenchmarkConfig(**defaults))


class TestDriverIntegration:
    @pytest.fixture(scope="class")
    def observed_run(self):
        bench = _observed_bench()
        suite = bench.run_suite(("Q5", "Q8"))
        return bench, suite

    def test_artifact_schema(self, observed_run, tmp_path):
        """A suite run emits a well-formed BENCH_*.json: per-phase
        timings, >= 3 distinct counters, and query percentiles."""
        bench, suite = observed_run
        summary = bench_summary("itest", suite=suite,
                                recorder=bench.recorder,
                                config=bench.config.record())
        path = write_bench_artifact(summary, tmp_path)
        loaded = json.loads(path.read_text())

        # Per-phase timings for the native engine on dcsd/small.
        native_phases = {record["phase"] for record in loaded["phases"]
                         if record.get("engine") == "native"
                         and record.get("class") == "dcsd"
                         and record.get("scale") == "small"}
        assert {"load", "index", "query"} <= native_phases

        # At least three distinct evaluator/storage counters.
        interesting = {name for name in loaded["counters"]
                       if name.startswith(("xquery.", "native.",
                                           "relstore.", "engine."))}
        assert len(interesting) >= 3

        # P50/P95/P99 for a repeated query, with all repeats counted.
        key = "query/Q5/native/dcsd/small"
        assert key in loaded["histograms"]
        histogram = loaded["histograms"][key]
        assert histogram["count"] == 3
        for field in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
            assert histogram[field] > 0

    def test_cold_and_warm_reported(self, observed_run):
        bench, suite = observed_run
        cell = suite.queries["Q5"].cell("X-Hive", "dcsd", "small")
        assert cell.seconds is not None
        assert cell.warm is not None and cell.warm["runs"] == 2
        assert cell.warm["min_seconds"] <= cell.warm["median_seconds"]
        assert "warm min" in cell.detail
        assert cell.correct is True        # oracle uses the cold run

    def test_per_cell_counters(self, observed_run):
        bench, suite = observed_run
        query_cell = suite.queries["Q5"].cell("X-Hive", "dcsd", "small")
        assert query_cell.counters
        assert any(name.startswith(("xquery.", "native."))
                   for name in query_cell.counters)
        load_cell = suite.load.cell("SQL Server", "dcsd", "small")
        assert load_cell.counters
        assert load_cell.counters.get("engine.documents_parsed", 0) > 0

    def test_profile_report_renders(self, observed_run):
        bench, __ = observed_run
        text = format_profile(bench.recorder, title="itest")
        assert "Profile Report: itest" in text
        assert "Phase timings (in Seconds)" in text
        assert "Counters" in text
        assert "Latency percentiles (in Milliseconds)" in text
        assert "query" in text and "load" in text

    def test_engine_filter(self):
        bench = _observed_bench(engine_keys=("native",), repeats=1)
        suite = bench.run_suite(("Q5",))
        rows = {row for row, __, __ in suite.load.cells}
        assert rows == {"X-Hive"}

    def test_unknown_engine_key_rejected(self):
        from repro.errors import BenchmarkError
        bench = _observed_bench(engine_keys=("native", "bogus"))
        with pytest.raises(BenchmarkError, match="bogus"):
            bench.run_suite(("Q5",))

    def test_observe_without_explain_stays_plan_free(self, observed_run,
                                                     tmp_path):
        """The default observed run (explain off) records zero plan
        trees and its artifact carries no plans section."""
        bench, suite = observed_run
        assert bench.recorder.plan is None
        summary = bench_summary("noplan", suite=suite,
                                recorder=bench.recorder)
        assert "plans" not in summary
        assert all("plan" not in cell for cell in summary["cells"])

    def test_span_tree_shape(self, observed_run):
        bench, __ = observed_run
        tracer = bench.recorder.tracer
        [scenario] = tracer.named("scenario")
        children = {span.name for span in tracer.children_of(scenario)}
        assert {"generate", "load", "query"} <= children


class TestDisabledDriver:
    def test_default_run_records_nothing(self):
        """Observability off (the default): zero spans, no recorder,
        and cells carry only the seed-era fields."""
        config = BenchmarkConfig(scale_divisor=10_000,
                                 scale_names=("small",),
                                 class_keys=("dcsd",), seed=3)
        assert config.observe is False and config.repeats == 1
        bench = XBench(config)
        assert bench.recorder is None
        suite = bench.run_suite(("Q5",))
        assert hooks.active() is None
        cell = suite.queries["Q5"].cell("X-Hive", "dcsd", "small")
        assert cell.seconds is not None and cell.seconds > 0
        assert cell.warm is None and cell.counters is None
        load_cell = suite.load.cell("X-Hive", "dcsd", "small")
        assert load_cell.seconds is not None
        assert load_cell.counters is None

    def test_load_engine_shares_instrumented_path(self, small_corpora):
        """load_engine and _run_scenario go through one load+index
        helper, so spans appear in exactly one place."""
        from repro.engines import NativeEngine
        recorder = Recorder()
        bench = XBench(BenchmarkConfig(scale_divisor=10_000), recorder)
        with observing(recorder):
            scenario, stats = bench.load_engine(NativeEngine(), "dcsd",
                                                "small")
        assert stats.seconds > 0
        names = [span.name for span in recorder.spans]
        assert names.count("load") == 1 and names.count("index") == 1
