"""Shredding tests: plan derivation, row production, recursion, mixed."""

from __future__ import annotations

import pytest

from repro.databases import CLASSES_BY_KEY
from repro.engines.shredding import ShreddedStore, build_plan
from repro.xml.parser import parse_document
from repro.xml.schema import SchemaElement


def library_schema() -> SchemaElement:
    root = SchemaElement("lib")
    book = root.child("book", repeated=True)
    book.attributes.append("id")
    book.child("title")
    info = book.child("info", optional=True)
    info.child("year")
    info.child("publisher", optional=True)
    note = book.child("note", optional=True, repeated=True, mixed=True)
    note.child("em", optional=True, repeated=True)
    return root


class TestPlanDerivation:
    def test_records_are_root_and_repeated(self):
        plan = build_plan(library_schema())
        assert [record.table_name for record in plan.records] == \
            ["lib", "book", "note", "em"]

    def test_folded_columns(self):
        plan = build_plan(library_schema())
        book = plan.records[1]
        assert "title" in book.columns
        assert "info_year" in book.columns
        assert "info_publisher" in book.columns

    def test_attribute_column_avoids_reserved_name(self):
        plan = build_plan(library_schema())
        book = plan.records[1]
        # 'id' is reserved for the synthetic key -> attribute becomes id_c.
        assert "id_c" in book.columns

    def test_mixed_column_tracked(self):
        plan = build_plan(library_schema())
        note = plan.records[2]
        assert note.has_content
        assert note.mixed_columns == ["content"]

    def test_leaf_record_gets_content_column(self):
        plan = build_plan(library_schema())
        em = plan.records[3]
        assert em.columns == ["content"]

    def test_recursive_schema_single_table(self):
        schema = CLASSES_BY_KEY["tcmd"].schema()
        plan = build_plan(schema)
        sec_tables = [record for record in plan.records
                      if record.schema_node.name == "sec"]
        assert len(sec_tables) == 1

    def test_duplicate_tags_get_distinct_tables(self):
        schema = CLASSES_BY_KEY["tcmd"].schema()
        plan = build_plan(schema)
        names = [record.table_name for record in plan.records]
        assert len(names) == len(set(names))
        assert "p" in names and "p_t" in names


class TestShredding:
    def shred(self, text: str, keep_mixed: bool = True) -> ShreddedStore:
        store = ShreddedStore(keep_mixed_text=keep_mixed)
        store.register_schema(library_schema())
        store.shred_document(parse_document(text, name="d.xml"))
        return store

    DOC = ("<lib>"
           "<book id='b1'><title>T1</title>"
           "<info><year>2001</year><publisher>P</publisher></info>"
           "<note>plain <em>bold</em> tail</note></book>"
           "<book id='b2'><title>T2</title></book>"
           "</lib>")

    def test_row_counts(self):
        store = self.shred(self.DOC)
        assert len(store.database.table("lib")) == 1
        assert len(store.database.table("book")) == 2
        assert len(store.database.table("note")) == 1
        assert len(store.database.table("em")) == 1

    def test_folded_values(self):
        store = self.shred(self.DOC)
        rows = [store.database.table("book").as_dict(i) for i in range(2)]
        assert rows[0]["title"] == "T1"
        assert rows[0]["info_year"] == "2001"
        assert rows[1]["info_year"] is None
        assert rows[0]["id_c"] == "b1"

    def test_parent_links(self):
        store = self.shred(self.DOC)
        book = store.database.table("book").as_dict(0)
        note = store.database.table("note").as_dict(0)
        assert note["parent_id"] == book["id"]
        lib = store.database.table("lib").as_dict(0)
        assert book["parent_id"] == lib["id"]

    def test_doc_column(self):
        store = self.shred(self.DOC)
        assert store.database.table("book").as_dict(0)["doc"] == "d.xml"

    def test_global_ids_unique(self):
        store = self.shred(self.DOC)
        ids = []
        for record in store.plans["lib"].records:
            table = store.database.table(record.table_name)
            ids.extend(table.as_dict(i)["id"] for i in range(len(table)))
        assert len(ids) == len(set(ids))
        assert set(ids) == set(store.owner_table)

    def test_mixed_text_kept(self):
        store = self.shred(self.DOC, keep_mixed=True)
        note = store.database.table("note").as_dict(0)
        assert "plain" in note["content"] and "tail" in note["content"]

    def test_mixed_text_dropped_sqlserver_style(self):
        store = self.shred(self.DOC, keep_mixed=False)
        note = store.database.table("note").as_dict(0)
        assert note["content"] is None
        # but the em child is still shredded
        assert store.database.table("em").as_dict(0)["content"] == "bold"

    def test_unknown_elements_skipped(self):
        store = self.shred(
            "<lib><book id='b1'><title>T</title><alien/></book></lib>")
        assert len(store.database.table("book")) == 1

    def test_unknown_document_type_skipped(self):
        store = ShreddedStore()
        store.register_schema(library_schema())
        count = store.shred_document(parse_document("<zzz/>", name="z"))
        assert count == 0

    def test_key_indexes_built(self):
        store = self.shred(self.DOC)
        store.build_key_indexes()
        assert store.database.index_for("book", "id") is not None
        assert store.database.index_for("book", "parent_id") is not None

    def test_recursive_sec_shreds_to_one_table(self, small_corpora):
        store = ShreddedStore()
        for schema in CLASSES_BY_KEY["tcmd"].schemas():
            store.register_schema(schema)
        total = 0
        for document in small_corpora["tcmd"]["documents"]:
            total += store.shred_document(document)
        sec_table = store.database.table("sec")
        # some secs must be children of other secs (recursion)
        sec_ids = {sec_table.as_dict(i)["id"]
                   for i in range(len(sec_table))}
        nested = [i for i in range(len(sec_table))
                  if sec_table.as_dict(i)["parent_id"] in sec_ids]
        assert nested, "expected nested sections"
        assert total > len(small_corpora["tcmd"]["documents"])

    def test_table_for_tag(self):
        store = self.shred(self.DOC)
        assert store.table_for_tag("lib", "book").name == "book"
        with pytest.raises(KeyError):
            store.table_for_tag("lib", "nope")

    def test_insertion_preserves_document_order(self):
        store = self.shred(self.DOC)
        titles = [store.database.table("book").as_dict(i)["title"]
                  for i in range(2)]
        assert titles == ["T1", "T2"]
