"""Data generator tests: distributions, text pools, templates."""

from __future__ import annotations

import random

import pytest

from repro.errors import GenerationError
from repro.toxgene import (
    Bernoulli,
    Categorical,
    Constant,
    ElementTemplate,
    Exponential,
    GenContext,
    Normal,
    TextPool,
    Uniform,
    UniformInt,
    Zipf,
    choice,
    date_between,
    fixed,
    generate_document,
    generate_element,
    make_vocabulary,
    sentences,
    sequence_id,
    words,
)


class TestDistributions:
    def rng(self) -> random.Random:
        return random.Random(7)

    def test_constant(self):
        assert Constant(4).sample(self.rng()) == 4
        assert Constant(4).sample_int(self.rng()) == 4

    def test_uniform_bounds(self):
        dist = Uniform(2.0, 5.0)
        samples = [dist.sample(self.rng()) for __ in range(50)]
        assert all(2.0 <= value <= 5.0 for value in samples)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            Uniform(5, 2)

    def test_uniform_int_inclusive(self):
        dist = UniformInt(1, 3)
        rng = self.rng()
        values = {dist.sample_int(rng) for __ in range(200)}
        assert values == {1, 2, 3}

    def test_normal_clamped(self):
        dist = Normal(0.0, 100.0, minimum=-1.0, maximum=1.0)
        rng = self.rng()
        assert all(-1.0 <= dist.sample(rng) <= 1.0 for __ in range(100))

    def test_exponential_positive(self):
        dist = Exponential(2.0)
        rng = self.rng()
        assert all(dist.sample(rng) >= 0 for __ in range(100))

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0)

    def test_zipf_rank_one_most_common(self):
        dist = Zipf(100, 1.0)
        rng = self.rng()
        counts = {}
        for __ in range(2000):
            rank = int(dist.sample(rng))
            counts[rank] = counts.get(rank, 0) + 1
        assert counts[1] == max(counts.values())
        assert max(counts) <= 100

    def test_zipf_invalid(self):
        with pytest.raises(ValueError):
            Zipf(0)

    def test_bernoulli(self):
        rng = self.rng()
        always = Bernoulli(1.0)
        never = Bernoulli(0.0)
        assert all(always.sample(rng) == 1.0 for __ in range(10))
        assert all(never.sample(rng) == 0.0 for __ in range(10))

    def test_bernoulli_invalid(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)

    def test_categorical_weighted(self):
        dist = Categorical(["a", "b"], [1.0, 0.0])
        rng = self.rng()
        assert all(dist.sample(rng) == "a" for __ in range(20))

    def test_categorical_invalid(self):
        with pytest.raises(ValueError):
            Categorical([])
        with pytest.raises(ValueError):
            Categorical(["a"], [1.0, 2.0])

    def test_determinism_with_seed(self):
        dist = Normal(10, 3)
        first = [dist.sample(random.Random(5)) for __ in range(3)]
        second = [dist.sample(random.Random(5)) for __ in range(3)]
        assert first == second


class TestTextPool:
    def test_vocabulary_deterministic(self):
        assert make_vocabulary(100) == make_vocabulary(100)

    def test_vocabulary_distinct(self):
        vocabulary = make_vocabulary(500)
        assert len(set(vocabulary)) == 500

    def test_targets_planted(self):
        pool = TextPool(target_count=5)
        for index in range(1, 6):
            assert f"word_{index}" in pool.words

    def test_word_sampling_deterministic(self):
        pool = TextPool()
        first = pool.words_sample(random.Random(3), 10)
        second = pool.words_sample(random.Random(3), 10)
        assert first == second

    def test_sentence_shape(self):
        pool = TextPool()
        sentence = pool.sentence(random.Random(1), 5)
        assert sentence.endswith(".")
        assert sentence[0].isupper()

    def test_paragraph_sentence_count(self):
        pool = TextPool()
        paragraph = pool.paragraph(random.Random(1), 4)
        assert paragraph.count(".") >= 4

    def test_phrase_length(self):
        pool = TextPool()
        assert len(pool.phrase(random.Random(1), 3).split()) == 3


class TestGenContext:
    def test_counters_independent(self):
        context = GenContext()
        assert context.next_number("a") == 1
        assert context.next_number("a") == 2
        assert context.next_number("b") == 1

    def test_issue_and_reference(self):
        context = GenContext(seed=1)
        first = context.issue_id("entry", "e")
        assert first == "e1"
        assert context.reference("entry") == "e1"
        assert context.reference("missing") is None

    def test_issued_list(self):
        context = GenContext()
        context.issue_id("k")
        context.issue_id("k")
        assert context.issued("k") == ["1", "2"]


class TestTemplates:
    def test_fixed_text(self):
        template = ElementTemplate("a", text=fixed("v"))
        element = generate_element(template, GenContext())
        assert element.text_content() == "v"

    def test_attribute_generation(self):
        template = ElementTemplate("a").attr("id", sequence_id("x", "p"))
        context = GenContext()
        first = generate_element(template, context)
        second = generate_element(template, context)
        assert first.get("id") == "p1" and second.get("id") == "p2"

    def test_optional_attribute_presence(self):
        template = ElementTemplate("a").attr("x", fixed("1"), presence=0.0)
        element = generate_element(template, GenContext())
        assert element.get("x") is None

    def test_child_occurrence_counts(self):
        child = ElementTemplate("c")
        template = ElementTemplate("a").child(child, Constant(3))
        element = generate_element(template, GenContext())
        assert len(list(element.child_elements("c"))) == 3

    def test_empty_probability(self):
        template = ElementTemplate("a", text=fixed("v"),
                                   empty_probability=1.0)
        element = generate_element(template, GenContext())
        assert not element.children

    def test_mixed_content_interleaves(self):
        inner = ElementTemplate("b", text=fixed("x"))
        template = ElementTemplate("a", text=fixed("T"), mixed=True)
        template.child(inner, Constant(2))
        element = generate_element(template, GenContext())
        kinds = [type(child).__name__ for child in element.children]
        assert kinds == ["Text", "Element", "Text", "Element", "Text"]

    def test_mixed_without_text_raises(self):
        template = ElementTemplate("a", mixed=True)
        template.child(ElementTemplate("b"), Constant(1))
        with pytest.raises(GenerationError):
            generate_element(template, GenContext())

    def test_runaway_recursion_guard(self):
        template = ElementTemplate("a")
        template.child(template, Constant(1))      # pathological
        with pytest.raises(GenerationError):
            generate_element(template, GenContext())

    def test_generate_document_orders_nodes(self):
        template = ElementTemplate("r", text=words(Constant(3)))
        document = generate_document(template, GenContext(), name="d.xml")
        assert document.name == "d.xml"
        assert document.root_element.order_key >= 0

    def test_value_generators(self):
        context = GenContext(seed=3)
        assert len(words(Constant(4))(context).split()) == 4
        assert sentences(Constant(2))(context).count(".") >= 2
        date = date_between(2000, 2001)(context)
        assert date[:3] in ("200",)
        assert choice(["only"])(context) == "only"

    def test_generation_deterministic(self):
        template = ElementTemplate("a", text=words(UniformInt(3, 8)))
        first = generate_element(template, GenContext(seed=9))
        second = generate_element(template, GenContext(seed=9))
        assert first.text_content() == second.text_content()
