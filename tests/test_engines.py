"""Engine tests: loading, indexing, restrictions, cross-engine agreement."""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines import (
    NativeEngine,
    SqlServerEngine,
    XCollectionEngine,
    XColumnEngine,
    make_engines,
)
from repro.errors import (
    BenchmarkError,
    UnsupportedConfiguration,
    UnsupportedQuery,
)
from repro.workload import bind_params
from repro.workload.queries import EXPERIMENT_QUERIES


def load(engine, corpus):
    engine.timed_load(corpus["class"], corpus["texts"])
    engine.create_indexes(list(indexes_for(corpus["class"].key)))
    return engine


class TestEngineRegistry:
    def test_four_engines_paper_order(self):
        labels = [engine.row_label for engine in make_engines()]
        assert labels == ["Xcolumn", "Xcollection", "SQL Server",
                          "X-Hive"]

    def test_fresh_instances(self):
        assert make_engines()[0] is not make_engines()[0]

    def test_create_by_key(self):
        from repro.engines import PAPER_ENGINE_KEYS, create
        for key in PAPER_ENGINE_KEYS:
            engine = create(key)
            assert engine.key == key
        assert isinstance(create("native"), NativeEngine)
        assert create("native") is not create("native")

    def test_create_unknown_key_lists_choices(self):
        from repro.engines import create
        from repro.errors import EngineError
        with pytest.raises(EngineError) as excinfo:
            create("tamino")
        assert "native" in str(excinfo.value)

    def test_register_custom_factory(self):
        from repro.engines import _REGISTRY, create, register
        register("probe", NativeEngine)
        try:
            assert isinstance(create("probe"), NativeEngine)
        finally:
            _REGISTRY.pop("probe", None)

    def test_execute_before_load_rejected(self):
        with pytest.raises(BenchmarkError):
            NativeEngine().timed_execute("Q5", {})


class TestEngineLifecycle:
    def test_close_releases_and_allows_reload(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load(NativeEngine(), corpus)
        params = bind_params("Q5", "dcmd", 30)
        expect = engine.execute("Q5", params)
        engine.close()
        assert not engine.loaded
        with pytest.raises(BenchmarkError):
            engine.execute("Q5", params)
        load(engine, corpus)
        assert engine.execute("Q5", params) == expect

    def test_context_manager_closes(self, small_corpora):
        corpus = small_corpora["dcmd"]
        with SqlServerEngine() as engine:
            load(engine, corpus)
            assert engine.loaded
        assert not engine.loaded

    def test_adhoc_on_native(self, small_corpora):
        engine = load(NativeEngine(), small_corpora["dcmd"])
        outcome = engine.adhoc("count(collection()/order)")
        assert outcome.values and outcome.seconds >= 0

    def test_adhoc_unsupported_on_shredded(self, small_corpora):
        from repro.errors import UnsupportedOperation
        engine = load(SqlServerEngine(), small_corpora["dcmd"])
        with pytest.raises(UnsupportedOperation):
            engine.adhoc("collection()/order")

    def test_timed_load_accepts_one_shot_iterable(self, small_corpora):
        corpus = small_corpora["dcmd"]
        baseline = NativeEngine()
        stats = baseline.timed_load(corpus["class"],
                                    list(corpus["texts"]))
        engine = NativeEngine()
        one_shot = iter(list(corpus["texts"]))
        got = engine.timed_load(corpus["class"], one_shot)
        assert got.documents == stats.documents
        assert got.bytes == stats.bytes
        params = bind_params("Q17", "dcmd", 30)
        assert engine.execute("Q17", params) == baseline.execute(
            "Q17", params)


class TestRestrictions:
    def test_xcolumn_rejects_single_document_classes(self, small_corpora):
        engine = XColumnEngine()
        for key in ("dcsd", "tcsd"):
            with pytest.raises(UnsupportedConfiguration):
                engine.check_supported(small_corpora[key]["class"],
                                       "small")

    def test_xcolumn_accepts_multi_document_classes(self, small_corpora):
        engine = XColumnEngine()
        engine.check_supported(small_corpora["dcmd"]["class"], "large")

    def test_xcollection_sd_small_only(self, small_corpora):
        engine = XCollectionEngine()
        engine.check_supported(small_corpora["dcsd"]["class"], "small")
        for scale in ("normal", "large", "huge"):
            with pytest.raises(UnsupportedConfiguration):
                engine.check_supported(small_corpora["tcsd"]["class"],
                                       scale)

    def test_sqlserver_and_native_unrestricted(self, small_corpora):
        for engine in (SqlServerEngine(), NativeEngine()):
            for corpus in small_corpora.values():
                engine.check_supported(corpus["class"], "large")


class TestNativeEngine:
    def test_load_counts(self, small_corpora):
        engine = NativeEngine()
        stats = engine.timed_load(small_corpora["tcmd"]["class"],
                                  small_corpora["tcmd"]["texts"])
        assert stats.documents == 30
        assert stats.seconds > 0

    def test_runs_all_applicable_queries(self, small_corpora):
        from repro.workload import workload_for_class
        for key, corpus in small_corpora.items():
            engine = load(NativeEngine(), corpus)
            for query in workload_for_class(key):
                params = bind_params(query.qid, key, corpus["units"])
                engine.execute(query.qid, params)     # must not raise

    def test_accelerated_equals_generic(self, small_corpora):
        corpus = small_corpora["dcsd"]
        indexed = load(NativeEngine(), corpus)
        plain = NativeEngine()
        plain.timed_load(corpus["class"], corpus["texts"])
        params = bind_params("Q5", "dcsd", corpus["units"])
        assert indexed.execute("Q5", params) == \
            plain.execute("Q5", params)

    def test_drop_indexes(self, small_corpora):
        corpus = small_corpora["tcsd"]
        engine = load(NativeEngine(), corpus)
        engine.drop_indexes()
        params = bind_params("Q8", "tcsd", corpus["units"])
        assert engine.execute("Q8", params)      # falls back to generic

    def test_run_xquery_helper(self, small_corpora):
        engine = load(NativeEngine(), small_corpora["tcsd"])
        assert engine.run_xquery("count(/dictionary/entry)") == [30]

    def test_reload_replaces_database(self, small_corpora):
        engine = NativeEngine()
        engine.timed_load(small_corpora["tcmd"]["class"],
                          small_corpora["tcmd"]["texts"])
        engine.timed_load(small_corpora["dcmd"]["class"],
                          small_corpora["dcmd"]["texts"])
        assert all(doc.root_element.tag != "article"
                   for doc in engine.documents())


class TestShreddedEngines:
    def test_load_produces_rows(self, small_corpora):
        engine = XCollectionEngine()
        stats = engine.timed_load(small_corpora["dcsd"]["class"],
                                  small_corpora["dcsd"]["texts"])
        assert stats.rows > 30       # items + authors + root

    def test_sqlserver_validates_mapping_during_load(self, small_corpora,
                                                     monkeypatch):
        """SQL Server's XSD bulk loader verifies the mapping per
        document (the extra load work vs. DB2's DAD loader)."""
        import repro.engines.relational as relational
        calls = {"verify": 0}
        original = relational._verify_mapping

        def counting(element, plan):
            calls["verify"] += 1
            return original(element, plan)

        monkeypatch.setattr(relational, "_verify_mapping", counting)
        corpus = small_corpora["tcmd"]
        XCollectionEngine().timed_load(corpus["class"], corpus["texts"])
        assert calls["verify"] == 0
        SqlServerEngine().timed_load(corpus["class"], corpus["texts"])
        assert calls["verify"] == len(corpus["texts"])

    def test_untranslated_query_rejected(self, small_corpora):
        engine = load(XCollectionEngine(), small_corpora["dcmd"])
        with pytest.raises(UnsupportedQuery):
            engine.execute("Q6", {})

    def test_index_path_resolution(self, small_corpora):
        engine = load(XCollectionEngine(), small_corpora["dcsd"])
        assert engine.store.database.index_for("item", "id_c") is not None
        assert engine.store.database.index_for(
            "item", "date_of_release") is not None

    def test_drop_indexes_keeps_key_indexes(self, small_corpora):
        engine = load(XCollectionEngine(), small_corpora["dcsd"])
        engine.drop_indexes()
        assert engine.store.database.index_for("item", "id_c") is None
        assert engine.store.database.index_for("item", "id") is not None


class TestXColumnEngine:
    def test_side_tables_created(self, small_corpora):
        engine = load(XColumnEngine(), small_corpora["dcmd"])
        assert len(engine.database.table("side_order_id")) == 30
        assert len(engine.database.table("documents")) == 35

    def test_dxx_seqno_orders_occurrences(self, small_corpora):
        engine = load(XColumnEngine(), small_corpora["dcmd"])
        rows = list(engine.database.lookup("side_line_item", "doc",
                                           "order1.xml"))
        seqnos = [row["dxx_seqno"] for row in rows]
        assert seqnos == sorted(seqnos) and seqnos[0] == 1

    def test_q16_like_clob_retrieval(self, small_corpora):
        engine = load(XColumnEngine(), small_corpora["dcmd"])
        document = engine._parse_clob("order3.xml")
        assert document.root_element.get("id") == "3"

    def test_unknown_query_rejected(self, small_corpora):
        engine = load(XColumnEngine(), small_corpora["dcmd"])
        with pytest.raises(UnsupportedQuery):
            engine.execute("Q20", {})


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("qid", EXPERIMENT_QUERIES)
    @pytest.mark.parametrize("key", ["dcsd", "dcmd", "tcsd", "tcmd"])
    def test_engines_agree_or_flag_known_infidelity(
            self, qid, key, small_corpora):
        corpus = small_corpora[key]
        params = bind_params(qid, key, corpus["units"])
        oracle = None
        outcomes = {}
        for engine in make_engines():
            try:
                engine.check_supported(corpus["class"], "small")
            except UnsupportedConfiguration:
                continue
            load(engine, corpus)
            values = engine.execute(qid, params)
            outcomes[engine.row_label] = values
            if isinstance(engine, NativeEngine):
                oracle = values
        assert oracle is not None
        # Known, paper-documented infidelities: mixed content in TC/SD
        # (Q8/Q12 markup loss, SQL Server text loss everywhere mixed).
        expected_infidelities = {
            ("Q8", "tcsd"): {"Xcollection", "SQL Server"},
            ("Q12", "tcsd"): {"Xcollection", "SQL Server"},
            ("Q17", "tcsd"): {"SQL Server"},
            ("Q17", "tcmd"): {"SQL Server"},
        }
        allowed = expected_infidelities.get((qid, key), set())
        for label, values in outcomes.items():
            if label == "X-Hive" or label in allowed:
                continue
            assert values == oracle, f"{label} disagrees on {qid}/{key}"

    def test_q5_order_sensitivity_flagged_engines_still_match_here(
            self, small_corpora):
        # The shredders do not guarantee order, but with insertion-order
        # heaps they "happen to return correct results" (paper, 3.2.2).
        corpus = small_corpora["dcmd"]
        params = bind_params("Q5", "dcmd", corpus["units"])
        results = {engine.row_label: load(engine, corpus).execute(
            "Q5", params) for engine in make_engines()
            if not isinstance(engine, XColumnEngine)}
        assert len({tuple(values) for values in results.values()}) == 1


class TestScanCounters:
    """QueryResult.rows_scanned: the index-ablation observability hook."""

    def test_indexed_point_query_scans_nothing(self, small_corpora):
        engine = load(SqlServerEngine(), small_corpora["dcmd"])
        params = bind_params("Q5", "dcmd", 30)
        outcome = engine.timed_execute("Q5", params)
        assert outcome.rows_scanned == 0

    def test_scan_query_reports_rows(self, small_corpora):
        engine = load(SqlServerEngine(), small_corpora["dcmd"])
        params = bind_params("Q17", "dcmd", 30)
        outcome = engine.timed_execute("Q17", params)
        assert outcome.rows_scanned > 0

    def test_unindexed_point_query_scans(self, small_corpora):
        engine = SqlServerEngine()
        engine.timed_load(small_corpora["dcmd"]["class"],
                          small_corpora["dcmd"]["texts"])
        params = bind_params("Q5", "dcmd", 30)
        outcome = engine.timed_execute("Q5", params)
        assert outcome.rows_scanned > 0     # no @id value index yet

    def test_native_reports_none(self, small_corpora):
        engine = load(NativeEngine(), small_corpora["dcmd"])
        params = bind_params("Q5", "dcmd", 30)
        assert engine.timed_execute("Q5", params).rows_scanned is None

    def test_xcolumn_counts_side_table_scans(self, small_corpora):
        engine = load(XColumnEngine(), small_corpora["dcmd"])
        q5 = engine.timed_execute("Q5", bind_params("Q5", "dcmd", 30))
        q17 = engine.timed_execute("Q17",
                                   bind_params("Q17", "dcmd", 30))
        assert q5.rows_scanned == 0
        assert q17.rows_scanned > 0
