"""XML parser tests: well-formed input, entities, errors, round trips."""

from __future__ import annotations

import pytest

from repro.errors import XMLParseError
from repro.xml.nodes import Comment, Element, Text
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serializer import serialize


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.root_element.tag == "a"
        assert not doc.root_element.children

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.root_element.find("b/c") is not None

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root_element.text_content() == "hello"

    def test_mixed_content_order(self):
        doc = parse_document("<a>x<b/>y<c/>z</a>")
        kinds = [type(child).__name__
                 for child in doc.root_element.children]
        assert kinds == ["Text", "Element", "Text", "Element", "Text"]

    def test_attributes(self):
        doc = parse_document('<a x="1" y="two"/>')
        assert doc.root_element.get("x") == "1"
        assert doc.root_element.get("y") == "two"

    def test_single_quoted_attribute(self):
        doc = parse_document("<a x='v'/>")
        assert doc.root_element.get("x") == "v"

    def test_attribute_order_preserved(self):
        doc = parse_document('<a b="1" a="2" c="3"/>')
        assert list(doc.root_element.attributes) == ["b", "a", "c"]

    def test_whitespace_in_tags(self):
        doc = parse_document('<a  x="1"\n  y="2"\t></a>')
        assert doc.root_element.get("y") == "2"

    def test_document_name(self):
        doc = parse_document("<a/>", name="n.xml")
        assert doc.name == "n.xml"

    def test_order_keys_assigned(self):
        doc = parse_document("<a><b/><c/></a>")
        b, c = doc.root_element.children
        assert 0 <= doc.order_key < b.order_key < c.order_key


class TestProlog:
    def test_xml_declaration(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root_element.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_document('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        assert doc.root_element.tag == "a"

    def test_doctype_with_internal_subset(self):
        doc = parse_document(
            "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>")
        assert doc.root_element.text_content() == "x"

    def test_leading_comment_kept(self):
        doc = parse_document("<!-- hi --><a/>")
        assert isinstance(doc.children[0], Comment)

    def test_processing_instruction_skipped(self):
        doc = parse_document('<?pi data?><a/>')
        assert doc.root_element.tag == "a"

    def test_trailing_comment_allowed(self):
        doc = parse_document("<a/><!-- bye -->")
        assert any(isinstance(child, Comment) for child in doc.children)


class TestEntities:
    def test_predefined_entities(self):
        doc = parse_document("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert doc.root_element.text_content() == "<>&\"'"

    def test_decimal_char_reference(self):
        doc = parse_document("<a>&#65;</a>")
        assert doc.root_element.text_content() == "A"

    def test_hex_char_reference(self):
        doc = parse_document("<a>&#x41;&#x20AC;</a>")
        assert doc.root_element.text_content() == "A€"

    def test_entity_in_attribute(self):
        doc = parse_document('<a x="a&amp;b"/>')
        assert doc.root_element.get("x") == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&amp</a>")


class TestCData:
    def test_cdata_preserved_verbatim(self):
        doc = parse_document("<a><![CDATA[<not> & markup]]></a>")
        assert doc.root_element.text_content() == "<not> & markup"

    def test_cdata_merges_with_text(self):
        doc = parse_document("<a>x<![CDATA[y]]>z</a>")
        texts = [child for child in doc.root_element.children
                 if isinstance(child, Text)]
        assert "".join(t.text for t in texts) == "xyz"


class TestComments:
    def test_inline_comment_node(self):
        doc = parse_document("<a>x<!-- note -->y</a>")
        kinds = [type(child).__name__
                 for child in doc.root_element.children]
        assert "Comment" in kinds

    def test_comment_splits_text(self):
        doc = parse_document("<a>x<!--c-->y</a>")
        texts = [child.text for child in doc.root_element.children
                 if isinstance(child, Text)]
        assert texts == ["x", "y"]


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",                                # no root
        "<a>",                             # unterminated
        "<a></b>",                         # mismatched tags
        "<a/><b/>",                        # two roots
        "<a x=1/>",                        # unquoted attribute
        '<a x="1" x="2"/>',                # duplicate attribute
        "<a><b></a></b>",                  # interleaved
        "text only",                       # no element
        "<a b></a>",                       # attribute without value
        '<a x="<"/>',                      # raw < in attribute
        "<a>&#xZZ;</a>",                   # bad char ref
        "<1tag/>",                         # bad name start
    ])
    def test_rejected(self, bad):
        with pytest.raises(XMLParseError):
            parse_document(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a>\n\n<b></a>")
        assert info.value.line == 3

    def test_content_after_root_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/>junk")


class TestFragment:
    def test_parse_fragment(self):
        element = parse_fragment("<x a='1'><y/></x>")
        assert isinstance(element, Element)
        assert element.parent is None

    def test_fragment_trailing_junk_rejected(self):
        with pytest.raises(XMLParseError):
            parse_fragment("<x/><y/>")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "<a/>",
        '<a x="1"/>',
        "<a>text</a>",
        "<a>x<b>y</b>z</a>",
        "<a>&lt;escaped&amp;&gt;</a>",
        '<a x="&quot;q&amp;"/>',
        "<a><b/><b/><b/></a>",
    ])
    def test_serialize_parse_identity(self, text):
        doc = parse_document(text)
        assert serialize(doc) == text

    def test_generated_corpus_round_trips(self, small_corpora):
        for corpus in small_corpora.values():
            for name, text in corpus["texts"][:3]:
                reparsed = parse_document(text, name=name)
                assert serialize(reparsed) == text
