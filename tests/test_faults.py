"""Fault injection, deadlines and graceful degradation tests.

The contract under test: a seeded FaultPlan reproduces the identical
fault sequence run after run; deadlines cancel long evaluations
cooperatively with a typed QueryTimeout; the sharded service retries
with backoff, trips per-shard circuit breakers, and (in partial mode)
answers from the healthy shards with an incident record instead of
failing the query.
"""

from __future__ import annotations

import time

import pytest

from repro.core.shard import ShardedEngine
from repro.engines import create
from repro.errors import (
    CircuitOpen,
    FaultInjected,
    QueryTimeout,
    ShardError,
)
from repro.faults import run_chaos
from repro.faults.deadline import Deadline, checkpoint, deadline_scope
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    corrupt_value,
    fault_scope,
    inject,
    set_namespace,
)
from repro.faults.policy import CircuitBreaker, RetryPolicy
from repro.faults.scenarios import SCENARIOS, build_scenario
from repro.workload.params import bind_params
from repro.workload.queries import QUERIES_BY_ID

QUERY_OPS = ("execute", "execute_per_doc", "adhoc")


def load_sharded(corpus, shards=3, **kwargs):
    engine = ShardedEngine("native", shards=shards, **kwargs)
    engine.timed_load(corpus["class"], list(corpus["texts"]))
    return engine


# --------------------------------------------------------------------------
# FaultPlan
# --------------------------------------------------------------------------

class TestFaultPlan:
    def test_hooks_are_noops_without_a_plan(self):
        # Must neither raise nor mutate the payload.
        inject("shard.rpc", op="execute")
        assert corrupt_value("shard.result", [1, 2]) == [1, 2]

    def test_error_rule_raises_fault_injected(self):
        plan = FaultPlan(1, [FaultRule(site="s", kind="error",
                                       probability=1.0)])
        with fault_scope(plan), pytest.raises(FaultInjected):
            inject("s", op="execute")

    def test_same_seed_reproduces_the_fault_sequence(self):
        def run(seed):
            plan = FaultPlan(seed, [FaultRule(site="s", kind="delay",
                                              probability=0.3)])
            with fault_scope(plan):
                for call in range(50):
                    inject("s", call=call)
            return plan.log

        assert run(9) == run(9)
        assert run(9) != run(10)    # and the seed actually matters

    def test_namespace_rekeys_decisions(self):
        def run(namespace):
            plan = FaultPlan(3, [FaultRule(site="s", kind="delay",
                                           probability=0.3)])
            set_namespace(namespace)
            try:
                with fault_scope(plan):
                    for __ in range(50):
                        inject("s")
            finally:
                set_namespace("")
            return [call for __, __k, call, __a in plan.log]

        # A respawned worker (new generation) draws fresh decisions.
        assert run("w0.g0") != run("w0.g1")

    def test_every_nth_call_trigger(self):
        plan = FaultPlan(0, [FaultRule(site="s", kind="delay",
                                       every=3)])
        with fault_scope(plan):
            for __ in range(9):
                inject("s")
        assert [call for __, __k, call, __a in plan.log] == [3, 6, 9]

    def test_match_filters_on_attributes(self):
        rule = FaultRule(site="s", kind="error", probability=1.0,
                         match={"op": QUERY_OPS, "shard": 0})
        plan = FaultPlan(0, [rule])
        with fault_scope(plan):
            inject("s", op="load", shard=0)        # wrong op
            inject("s", op="execute", shard=1)     # wrong shard
            with pytest.raises(FaultInjected):
                inject("s", op="execute", shard=0)

    def test_limit_caps_total_fires(self):
        plan = FaultPlan(0, [FaultRule(site="s", kind="delay",
                                       every=1, limit=2)])
        with fault_scope(plan):
            for __ in range(5):
                inject("s")
        assert len(plan.log) == 2

    def test_corrupt_rule_mangles_the_payload(self):
        plan = FaultPlan(0, [FaultRule(site="p", kind="corrupt",
                                       every=1)])
        with fault_scope(plan):
            assert corrupt_value("p", ["a", "b"]) == ["a"]
            assert corrupt_value("p", "x").endswith("corrupt")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="explode")

    def test_scenario_plans_are_independent(self):
        scenario = build_scenario("worker-crash-storm")
        first, second = scenario.plan(7), scenario.plan(7)
        first.rules[0].fired = 99
        assert second.rules[0].fired == 0

    def test_unknown_scenario_lists_choices(self):
        from repro.errors import BenchmarkError
        with pytest.raises(BenchmarkError, match="worker-crash-storm"):
            build_scenario("nope")


# --------------------------------------------------------------------------
# Deadlines
# --------------------------------------------------------------------------

class TestDeadline:
    def test_checkpoint_free_without_deadline(self):
        checkpoint()    # must not raise or require any state

    def test_check_raises_once_expired(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(QueryTimeout):
            deadline.check("test")

    def test_checkpoint_raises_inside_scope(self):
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(QueryTimeout):
                for __ in range(200):   # > CHECK_EVERY ticks
                    checkpoint()

    def test_scope_nests_and_restores(self):
        outer = Deadline(60.0)
        from repro.faults import deadline as deadline_module
        with deadline_scope(outer):
            inner = Deadline(30.0)
            with deadline_scope(inner):
                assert deadline_module.current() is inner
            assert deadline_module.current() is outer
        assert deadline_module.current() is None

    def test_evaluator_cancels_mid_query(self, small_corpora):
        # A real engine evaluation aborts with the typed error instead
        # of running to completion.
        corpus = small_corpora["dcmd"]
        with create("native") as engine:
            engine.timed_load(corpus["class"], list(corpus["texts"]))
            params = bind_params("Q1", "dcmd", corpus["units"])
            with deadline_scope(Deadline(0.0)):
                with pytest.raises(QueryTimeout):
                    engine.execute("Q1", params)


# --------------------------------------------------------------------------
# Policies
# --------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(retries=8, base=0.1, cap=0.4, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.4)   # capped

    def test_jitter_is_seed_deterministic(self):
        one = RetryPolicy(seed=4).backoff(0)
        two = RetryPolicy(seed=4).backoff(0)
        assert one == two

    def test_retry_budget_exhausts(self):
        sleeps = []
        policy = RetryPolicy(retries=100, base=1.0, cap=1.0,
                             jitter=0.0, budget_seconds=2.5,
                             sleep=sleeps.append)
        attempt = 0
        while policy.allow_retry(attempt):
            policy.pause(attempt)
            attempt += 1
        assert policy.spent == pytest.approx(2.5)
        assert attempt == 3     # 1.0 + 1.0 + 0.5 (bounded final sleep)

    def test_zero_retries_never_allows(self):
        assert not RetryPolicy(retries=0).allow_retry(0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("cooldown", 5.0)
        return CircuitBreaker(clock=lambda: self.now, **kwargs)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = self.make()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()     # third trips
        with pytest.raises(CircuitOpen):
            breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()     # streak restarted

    def test_half_open_probe_recovers(self):
        breaker = self.make()
        for __ in range(3):
            breaker.record_failure()
        self.now = 6.0              # past the cooldown
        breaker.allow()             # probe allowed (half-open)
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_half_open_failure_retrips(self):
        breaker = self.make()
        for __ in range(3):
            breaker.record_failure()
        self.now = 6.0
        breaker.allow()
        assert breaker.record_failure()     # probe failed: re-trip
        assert breaker.trips == 2
        with pytest.raises(CircuitOpen):
            breaker.allow()


# --------------------------------------------------------------------------
# Sharded service under faults
# --------------------------------------------------------------------------

class TestShardedResilience:
    def test_rpc_timeout_message_reports_budget_and_shard(
            self, small_corpora):
        # Satellite fix: the timeout message must name the shard and
        # the actual wait budget, not always DEFAULT_TIMEOUT.
        corpus = small_corpora["dcmd"]
        plan = FaultPlan(0, [FaultRule(
            site="shard.rpc", kind="delay", seconds=0.6,
            probability=1.0, match={"op": QUERY_OPS})])
        with fault_scope(plan):
            engine = load_sharded(corpus, shards=2, timeout=0.1,
                                  retries=0)
            try:
                params = bind_params("Q1", "dcmd", corpus["units"])
                with pytest.raises(ShardError) as excinfo:
                    engine.execute("Q1", params)
                assert "shard" in str(excinfo.value)
                assert "timed out after 0.1s" in str(excinfo.value)
            finally:
                engine.close()

    def test_deadline_propagates_through_the_rpc(self, small_corpora):
        corpus = small_corpora["dcmd"]
        plan = FaultPlan(0, [FaultRule(
            site="shard.rpc", kind="delay", seconds=0.5,
            probability=1.0, match={"op": QUERY_OPS})])
        with fault_scope(plan):
            engine = load_sharded(corpus, shards=2, retries=2)
            try:
                params = bind_params("Q1", "dcmd", corpus["units"])
                start = time.monotonic()
                with deadline_scope(Deadline(0.15)):
                    with pytest.raises(QueryTimeout):
                        engine.execute("Q1", params)
                # The deadline cut the call short: no full retry storm.
                assert time.monotonic() - start < 5.0
            finally:
                engine.close()

    def test_breaker_trips_then_fails_fast(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_sharded(corpus, shards=2, retries=0,
                              breaker_threshold=1,
                              breaker_cooldown=60.0)
        try:
            params = bind_params("Q1", "dcmd", corpus["units"])
            engine._workers[0].process.kill()
            time.sleep(0.2)
            with pytest.raises(ShardError):
                engine.execute("Q1", params)
            assert engine._breakers[0].state == "open"
            assert any("breaker opened" in incident
                       for incident in engine.incidents)
            # Fail fast now: the open breaker raises before any RPC.
            with pytest.raises(CircuitOpen):
                engine._call(0, ("ping",))
        finally:
            engine.close()

    def test_partial_mode_answers_from_healthy_shards(
            self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_sharded(corpus, shards=3, retries=0,
                              degraded="partial")
        try:
            # A per-document (concat) query, so the healthy-shard
            # answer is a deterministic subsequence of the oracle's.
            qid = "Q14"
            assert (QUERIES_BY_ID[qid].merge_for("dcmd")["kind"]
                    == "concat")
            params = bind_params(qid, "dcmd", corpus["units"])
            victim = 1
            engine._workers[victim].process.kill()
            time.sleep(0.2)
            values = engine.execute(qid, params)
            assert engine.partials
            record = engine.partials[0]
            assert record["qid"] == qid
            assert record["failed_shards"] == [victim]

            # Oracle restricted to the surviving shards' documents
            # (plus the replicated reference docs) must match exactly.
            healthy = {name
                       for index, state in enumerate(engine._states)
                       if index != victim
                       for __, name, __t in state.mains}
            healthy |= {name for name, __ in engine._replicated}
            with create("native") as oracle:
                oracle.timed_load(
                    corpus["class"],
                    [(name, text) for name, text in corpus["texts"]
                     if name in healthy])
                assert values == oracle.execute(qid, params)
        finally:
            engine.close()

    def test_strict_mode_still_fails_the_query(self, small_corpora):
        corpus = small_corpora["dcmd"]
        engine = load_sharded(corpus, shards=3, retries=0)   # degraded="fail"
        try:
            params = bind_params("Q1", "dcmd", corpus["units"])
            engine._workers[1].process.kill()
            time.sleep(0.2)
            with pytest.raises(ShardError):
                engine.execute("Q1", params)
            assert engine.partials == []
        finally:
            engine.close()

    def test_crash_faults_recover_via_respawn(self, small_corpora):
        corpus = small_corpora["dcmd"]
        scenario = build_scenario("worker-crash-storm")
        plan = scenario.plan(7)
        with fault_scope(plan):
            engine = load_sharded(corpus, shards=2, retries=3)
            try:
                params = bind_params("Q1", "dcmd", corpus["units"])
                oracle_values = None
                for __ in range(6):
                    values = engine.execute("Q1", params)
                    if oracle_values is None:
                        oracle_values = values
                    # Recovered runs keep returning the full answer.
                    assert values == oracle_values
            finally:
                engine.close()

    def test_rejects_unknown_degraded_mode(self):
        with pytest.raises(ShardError):
            ShardedEngine("native", shards=2, degraded="maybe")


# --------------------------------------------------------------------------
# Chaos harness
# --------------------------------------------------------------------------

class TestChaos:
    def test_known_scenarios_present(self):
        assert {"worker-crash-storm", "slow-shard", "flaky-pipe",
                "query-bomb"} <= set(SCENARIOS)

    def test_scorecard_is_seed_deterministic(self):
        def run():
            result = run_chaos("worker-crash-storm", units=8,
                               queries=6, shards=2, seed=5)
            return (result.queries, result.ok, result.partial,
                    result.failed, result.unhandled,
                    [(i["qid"], i["type"]) for i in result.incidents])

        first, second = run(), run()
        assert first == second
        assert first[4] == 0    # nothing unhandled

    def test_every_query_gets_result_or_typed_incident(self):
        result = run_chaos("query-bomb", units=8, queries=6,
                           shards=2, seed=7)
        assert result.unhandled == 0
        assert (result.ok + result.partial + result.failed
                == result.queries)
        assert all(incident["type"] for incident in result.incidents)
        record = result.record()
        assert record["availability_pct"] == pytest.approx(
            result.availability_pct, abs=1e-3)
