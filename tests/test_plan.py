"""EXPLAIN ANALYZE tests: PlanProfiler, instrumented layers, the
explain CLI, artifact plan embedding, and obs diff regression gating."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.core import BenchmarkConfig, XBench
from repro.obs import (
    ArtifactError,
    PlanProfiler,
    Recorder,
    bench_summary,
    diff_artifacts,
    diff_paths,
    load_artifact,
    observing,
    plan_cell_summary,
    render_plan,
    write_bench_artifact,
)
from repro.obs import recorder as hooks


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    assert hooks.active() is None
    yield
    hooks.uninstall()


def _profiled_recorder() -> Recorder:
    return Recorder(name="plan-test", plan=PlanProfiler())


class TestPlanProfiler:
    def test_merged_node_identity(self):
        """Same (parent, op, attrs) merges: calls accumulate instead of
        the tree exploding per repeat."""
        profiler = PlanProfiler()
        with profiler.tree(qid="Q1"):
            for _ in range(5):
                with profiler.node("seq_scan", table="item") as node:
                    node.add(rows_in=10, rows_out=2)
            with profiler.node("seq_scan", table="other"):
                pass
        [tree] = profiler.trees()
        scans = {node.attrs.get("table"): node
                 for node in tree.root.children}
        assert set(scans) == {"item", "other"}
        assert scans["item"].calls == 5
        assert scans["item"].rows_in == 50
        assert scans["item"].rows_out == 10
        assert scans["other"].calls == 1
        assert tree.root.calls == 1

    def test_nesting_builds_tree(self):
        profiler = PlanProfiler()
        with profiler.tree(qid="Q2"):
            with profiler.node("hash_join"):
                with profiler.node("seq_scan", table="a"):
                    pass
                with profiler.node("seq_scan", table="b"):
                    pass
        [tree] = profiler.trees()
        [join] = tree.root.children
        assert join.op == "hash_join"
        assert {child.attrs["table"] for child in join.children} \
            == {"a", "b"}
        assert tree.root.total_nodes() == 4

    def test_trees_keyed_by_attrs_and_scope_merges(self):
        """scope() attrs (the driver's scale) become part of every tree
        signature opened inside the block."""
        profiler = PlanProfiler()
        with profiler.scope(scale="small"):
            with profiler.tree(qid="Q1"):
                profiler.leaf("op_a")
            with profiler.tree(qid="Q2"):
                profiler.leaf("op_b")
        with profiler.scope(scale="large"):
            with profiler.tree(qid="Q1"):
                profiler.leaf("op_a")
        assert len(profiler) == 3
        small_q1 = profiler.find_trees(qid="Q1", scale="small")
        assert len(small_q1) == 1
        assert small_q1[0].attrs == {"qid": "Q1", "scale": "small"}

    def test_open_binds_parent_at_call_time(self):
        """Iterator operators: open() under one parent, record later —
        the stats land under the original parent even if recorded after
        the node closed (generators drain late)."""
        profiler = PlanProfiler()
        with profiler.tree(qid="Q3"):
            with profiler.node("sort"):
                stats = profiler.open("seq_scan", table="t")
        stats.record(seconds=0.25, rows_in=100, rows_out=40)
        [tree] = profiler.trees()
        [sort] = tree.root.children
        [scan] = sort.children
        assert scan.op == "seq_scan"
        assert scan.rows_in == 100 and scan.rows_out == 40
        assert scan.seconds == pytest.approx(0.25)

    def test_thread_local_stacks_keep_trees_separate(self):
        """Plan trees from concurrent streams never cross-link: every
        node of stream N's tree lives only under stream N's root."""
        profiler = PlanProfiler()
        errors: list[Exception] = []

        def stream(index: int) -> None:
            try:
                for _ in range(20):
                    with profiler.tree(qid="Q1", stream=index):
                        with profiler.node("outer", stream=index):
                            with profiler.node("inner", stream=index):
                                pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=stream, args=(i,))
                   for i in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert len(profiler) == 4
        for tree in profiler.trees():
            stream_id = tree.attrs["stream"]
            [outer] = tree.root.children
            assert outer.attrs == {"stream": stream_id}
            [inner] = outer.children
            assert inner.attrs == {"stream": stream_id}
            assert outer.calls == 20 and inner.calls == 20

    def test_render_plan_text(self):
        profiler = PlanProfiler()
        with profiler.tree(qid="Q5", engine="native"):
            with profiler.node("scan", table="item") as node:
                node.add(rows_in=30, rows_out=3)
        [tree] = profiler.trees()
        text = render_plan(tree)
        assert "engine=native" in text and "qid=Q5" in text
        assert "scan table=item" in text
        assert "rows_in=30" in text and "rows_out=3" in text
        assert "calls=1" in text and "time=" in text

    def test_cell_summary_aggregates_operators(self):
        profiler = PlanProfiler()
        with profiler.tree(qid="Q5"):
            with profiler.node("join"):
                with profiler.node("scan", table="a") as node:
                    node.add(rows_out=5)
                with profiler.node("scan", table="b") as node:
                    node.add(rows_out=7)
        [record] = profiler.tree_records()
        summary = plan_cell_summary(record)
        assert summary["nodes"] == 3
        by_op = {entry["op"]: entry for entry in summary["operators"]}
        assert by_op["scan"]["calls"] == 2
        assert by_op["scan"]["rows_out"] == 12
        assert by_op["join"]["calls"] == 1


class TestInstrumentedOperators:
    def _table(self):
        from repro.relstore.database import Database
        from repro.relstore.table import Column
        from repro.relstore.types import ColumnType
        database = Database()
        table = database.create_table(
            "items", [Column("id", ColumnType.INTEGER),
                      Column("name", ColumnType.TEXT)])
        for index in range(10):
            table.insert({"id": index, "name": f"n{index}"})
        database.create_index("items", "id", "sorted")
        return database, table

    def test_seq_scan_reports_scanned_vs_emitted(self):
        from repro.relstore import operators as ops
        database, table = self._table()
        recorder = _profiled_recorder()
        with observing(recorder):
            with recorder.plan.tree(qid="scan-test"):
                rows = list(ops.seq_scan(
                    table, lambda row: row["id"] < 3))
        assert len(rows) == 3
        [tree] = recorder.plan.trees()
        [scan] = tree.root.children
        assert scan.op == "seq_scan"
        assert scan.attrs["table"] == "items"
        assert scan.rows_in == 10          # rows scanned
        assert scan.rows_out == 3          # rows surviving the filter
        assert scan.calls == 1
        assert scan.seconds >= 0.0

    def test_index_lookup_and_composed_pipeline(self):
        from repro.relstore import operators as ops
        database, table = self._table()
        index = database.index_for("items", "id")
        recorder = _profiled_recorder()
        with observing(recorder):
            with recorder.plan.tree(qid="pipe-test"):
                rows = list(ops.project(
                    ops.index_lookup(table, index, 4), ["name"]))
        assert rows == [{"name": "n4"}]
        [tree] = recorder.plan.trees()
        by_op = {node.op: node for node in tree.root.children}
        assert by_op["index_lookup"].rows_out == 1
        assert by_op["index_lookup"].attrs["column"] == "id"
        assert by_op["project"].rows_in == 1
        assert by_op["project"].rows_out == 1

    def test_sort_group_limit_record(self):
        from repro.relstore import operators as ops
        database, table = self._table()
        recorder = _profiled_recorder()
        with observing(recorder):
            with recorder.plan.tree(qid="sort-test"):
                ordered = ops.order_by(ops.seq_scan(table),
                                       [("id", True)])
                top = list(ops.limit(iter(ordered), 4))
                grouped = list(ops.group_by(
                    iter(top), ["name"], {"n": len}))
        assert len(top) == 4 and len(grouped) == 4
        [tree] = recorder.plan.trees()
        by_op = {node.op: node for node in tree.root.children}
        assert by_op["sort"].rows_in == 10
        assert by_op["sort"].rows_out == 10
        assert by_op["limit"].rows_out == 4
        assert by_op["group"].rows_in == 4

    def test_operators_untouched_without_profiler(self):
        """Disabled path: operators return plain generators, and a
        whole scan records zero plan state anywhere."""
        from repro.relstore import operators as ops
        database, table = self._table()
        assert hooks.plan() is None
        rows = list(ops.seq_scan(table))
        assert len(rows) == 10
        recorder = Recorder()          # no profiler attached
        with observing(recorder):
            rows = list(ops.hash_join(
                ops.seq_scan(table), ops.seq_scan(table), "id", "id"))
        assert len(rows) == 10
        assert recorder.plan is None


class TestEngineExplain:
    @pytest.fixture(scope="class")
    def native_explained(self, small_corpora):
        """Q5 on dcsd via the native engine, explain on."""
        from repro.core.indexes import indexes_for
        from repro.engines import NativeEngine
        from repro.workload import bind_params
        corpus = small_corpora["dcsd"]
        engine = NativeEngine()
        engine.timed_load(corpus["class"], corpus["texts"])
        engine.create_indexes(list(indexes_for("dcsd")))
        params = bind_params("Q5", "dcsd", corpus["units"])
        recorder = _profiled_recorder()
        with observing(recorder):
            outcome = engine.timed_execute("Q5", params)
        return recorder, outcome

    def test_tree_attrs_label_the_cell(self, native_explained):
        recorder, outcome = native_explained
        [tree] = recorder.plan.find_trees(qid="Q5", engine="native")
        assert tree.attrs["system"] == "X-Hive"
        assert tree.attrs["class"] == "dcsd"

    def test_access_path_and_cardinality_consistency(self,
                                                     native_explained):
        """The accelerated plan shows as an index lookup whose output
        cardinality matches the query result, and the root time bounds
        (and roughly matches) the measured cell time."""
        recorder, outcome = native_explained
        [tree] = recorder.plan.find_trees(qid="Q5")
        [access] = tree.root.children
        assert access.op == "native.index_lookup"
        assert access.attrs["path"] == "item/@id"
        assert access.rows_out == len(outcome.values)
        assert tree.root.rows_out == len(outcome.values)
        # Inclusive timing: every node's time fits inside the root's,
        # and the root's fits inside the timed_execute wall clock.
        for node in tree.root.walk():
            assert node.seconds <= tree.root.seconds + 1e-9
        assert tree.root.seconds <= outcome.seconds + 1e-9

    def test_collection_scan_path_on_multidoc(self, small_corpora):
        """Without an applicable index the native engine reports a
        collection scan over every document (the paper's DC/MD cost)."""
        from repro.engines import NativeEngine
        from repro.workload import bind_params
        corpus = small_corpora["dcmd"]
        engine = NativeEngine()
        engine.timed_load(corpus["class"], corpus["texts"])
        params = bind_params("Q1", "dcmd", corpus["units"])
        recorder = _profiled_recorder()
        with observing(recorder):
            engine.timed_execute("Q1", params)
        [tree] = recorder.plan.find_trees(qid="Q1")
        [access] = tree.root.children
        assert access.op == "native.collection_scan"
        assert access.rows_in == len(corpus["documents"])

    def test_shredded_engine_plans_show_relational_operators(
            self, small_corpora):
        from repro.core.indexes import indexes_for
        from repro.engines.relational import XCollectionEngine
        from repro.workload import bind_params
        corpus = small_corpora["dcsd"]
        engine = XCollectionEngine()
        engine.timed_load(corpus["class"], corpus["texts"])
        engine.create_indexes(list(indexes_for("dcsd")))
        params = bind_params("Q5", "dcsd", corpus["units"])
        recorder = _profiled_recorder()
        with observing(recorder):
            engine.timed_execute("Q5", params)
        [tree] = recorder.plan.find_trees(qid="Q5",
                                          engine="xcollection")
        [translated] = tree.root.children
        assert translated.op == "relational.translated_plan"
        ops = {node.op for node in translated.walk()}
        assert ops & {"seq_scan", "index_lookup", "index_range",
                      "hash_join", "nested_loop_join"}


class TestMultiUserPlans:
    def test_per_stream_trees_stay_separate(self, small_corpora):
        """A threaded multiuser run with the profiler installed keeps
        one tree per (qid, stream) and no cross-thread parent links."""
        from repro.core.multiuser import run_multi_user
        from repro.engines import NativeEngine
        corpus = small_corpora["dcsd"]
        engine = NativeEngine()
        engine.timed_load(corpus["class"], corpus["texts"])
        recorder = _profiled_recorder()
        with observing(recorder):
            result = run_multi_user(engine, "dcsd", corpus["units"],
                                    streams=3, queries_per_stream=5,
                                    seed=7, query_ids=("Q1", "Q5"),
                                    mode="threads")
        assert result.total_queries == 15
        trees = recorder.plan.trees()
        assert trees
        seen_streams = set()
        for tree in trees:
            assert "stream" in tree.attrs
            seen_streams.add(tree.attrs["stream"])
            # Total executions under one root equal its call count:
            # no other stream's nodes leaked in.
            assert tree.root.calls >= 1
        assert seen_streams == {0, 1, 2}
        per_stream_calls = {}
        for tree in trees:
            stream = tree.attrs["stream"]
            per_stream_calls[stream] = \
                per_stream_calls.get(stream, 0) + tree.root.calls
        assert all(count == 5 for count in per_stream_calls.values())


class TestArtifactPlans:
    @pytest.fixture(scope="class")
    def explained_suite(self):
        config = BenchmarkConfig(scale_divisor=10_000,
                                 scale_names=("small",),
                                 class_keys=("dcsd",), seed=3,
                                 engine_keys=("native",),
                                 observe=True, explain=True)
        bench = XBench(config)
        suite = bench.run_suite(("Q5",))
        return bench, suite

    def test_schema_v2_with_plans(self, explained_suite, tmp_path):
        bench, suite = explained_suite
        summary = bench_summary("planned", suite=suite,
                                recorder=bench.recorder,
                                config=bench.config.record())
        path = write_bench_artifact(summary, tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "xbench-obs/2"
        assert loaded["plans"]
        plan_attrs = [plan["attrs"] for plan in loaded["plans"]]
        assert any(attrs.get("qid") == "Q5"
                   and attrs.get("scale") == "small"
                   for attrs in plan_attrs)

    def test_per_cell_plan_summary_paired(self, explained_suite,
                                          tmp_path):
        bench, suite = explained_suite
        summary = bench_summary("planned", suite=suite,
                                recorder=bench.recorder)
        cells = {(cell["table"], cell["system"], cell["scale"]): cell
                 for cell in summary["cells"]}
        query_cell = cells[("Q5", "X-Hive", "small")]
        assert "plan" in query_cell
        assert query_cell["plan"]["nodes"] >= 1
        ops = {entry["op"] for entry in query_cell["plan"]["operators"]}
        assert "native.index_lookup" in ops
        # Load cells have no matching tree -> no plan block.
        assert "plan" not in cells[("load", "X-Hive", "small")]

    def test_v1_reader_compat(self, explained_suite, tmp_path):
        """The v2 additions are strictly additive: every v1 field is
        still present and the artifact still loads for diffing."""
        bench, suite = explained_suite
        summary = bench_summary("planned", suite=suite,
                                recorder=bench.recorder,
                                config=bench.config.record())
        path = write_bench_artifact(summary, tmp_path)
        loaded = load_artifact(path)
        for field in ("name", "created_unix", "config", "cells",
                      "phases", "counters", "histograms"):
            assert field in loaded


class TestAtomicExport:
    def test_artifact_write_is_atomic(self, tmp_path, monkeypatch):
        """A crash mid-serialization leaves no partial target file and
        no stray temp files."""
        import repro.obs.export as export

        class Boom(RuntimeError):
            pass

        real_replace = export.os.replace

        def exploding_replace(src, dst):
            raise Boom("interrupted")

        monkeypatch.setattr(export.os, "replace", exploding_replace)
        with pytest.raises(Boom):
            write_bench_artifact({"name": "x", "schema": "s"}, tmp_path)
        monkeypatch.setattr(export.os, "replace", real_replace)
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_keeps_old_content_until_replace(self, tmp_path):
        path = write_bench_artifact({"name": "x", "v": 1}, tmp_path)
        again = write_bench_artifact({"name": "x", "v": 2}, tmp_path)
        assert path == again
        assert json.loads(path.read_text())["v"] == 2
        assert list(tmp_path.iterdir()) == [path]

    def test_empty_name_falls_back_to_run(self, tmp_path):
        assert write_bench_artifact({"name": ""}, tmp_path).name \
            == "BENCH_run.json"
        assert write_bench_artifact({"name": "/// "}, tmp_path).name \
            == "BENCH_run.json"
        assert write_bench_artifact({}, tmp_path).name \
            == "BENCH_run.json"

    def test_ndjson_write_is_atomic(self, tmp_path):
        from repro.obs import write_ndjson
        target = tmp_path / "deep" / "spans.ndjson"
        path = write_ndjson([], target)
        assert path.exists() and path.read_text() == ""
        assert list((tmp_path / "deep").iterdir()) == [path]


def _write_artifact(tmp_path, name, cells, counters=None):
    summary = {"schema": "xbench-obs/2", "name": name, "cells": cells}
    if counters:
        summary["counters"] = counters
    return write_bench_artifact(summary, tmp_path)


def _cell(table, seconds, system="X-Hive", class_key="dcsd",
          scale="small", **extra):
    cell = {"table": table, "system": system, "class": class_key,
            "scale": scale, "seconds": seconds}
    cell.update(extra)
    return cell


class TestDiff:
    def test_same_artifact_is_clean(self, tmp_path):
        path = _write_artifact(tmp_path, "a",
                               [_cell("Q5", 0.010), _cell("load", 0.5)])
        report = diff_paths(path, path)
        assert report.ok and report.exit_code() == 0
        assert all(cell.status == "ok" for cell in report.cells)

    def test_synthetic_slowdown_fails(self, tmp_path):
        a = _write_artifact(tmp_path, "a", [_cell("Q5", 0.010)])
        b = _write_artifact(tmp_path / "b", "b", [_cell("Q5", 0.020)])
        report = diff_paths(a, b)
        assert not report.ok and report.exit_code() == 1
        [cell] = report.regressions()
        assert cell.delta_pct == pytest.approx(100.0)
        assert "FAIL" in report.format_text()

    def test_threshold_and_noise_floor(self, tmp_path):
        a = _write_artifact(tmp_path, "a",
                            [_cell("Q5", 0.010),
                             _cell("Q8", 0.0001, system="Edge")])
        b = _write_artifact(tmp_path / "b", "b",
                            [_cell("Q5", 0.012),
                             _cell("Q8", 0.0005, system="Edge")])
        # +20% is inside the default 25% threshold; the 5x jump on Q8
        # sits below the noise floor in both runs.
        report = diff_artifacts(load_artifact(a), load_artifact(b),
                                min_seconds=0.001)
        assert report.ok
        # Tighten the threshold and Q5's +20% gates.
        report = diff_artifacts(load_artifact(a), load_artifact(b),
                                threshold=0.10, min_seconds=0.001)
        assert [cell.table for cell in report.regressions()] == ["Q5"]

    def test_improvement_added_removed(self, tmp_path):
        a = _write_artifact(tmp_path, "a",
                            [_cell("Q5", 0.020), _cell("Q8", 0.010)])
        b = _write_artifact(tmp_path / "b", "b",
                            [_cell("Q5", 0.005), _cell("Q12", 0.010)])
        report = diff_paths(a, b)
        statuses = {cell.table: cell.status for cell in report.cells}
        assert statuses == {"Q5": "improved", "Q8": "removed",
                            "Q12": "added"}
        assert report.ok          # none of these gate

    def test_counter_drift_reported_not_gating(self, tmp_path):
        a = _write_artifact(
            tmp_path, "a",
            [_cell("Q5", 0.010, counters={"native.index_hits": 1})],
            counters={"xquery.nodes_visited": 100})
        b = _write_artifact(
            tmp_path / "b", "b",
            [_cell("Q5", 0.010,
                   counters={"native.collection_scans": 1})],
            counters={"xquery.nodes_visited": 220})
        report = diff_paths(a, b)
        assert report.ok
        [cell] = report.cells
        assert cell.counter_drift["native.index_hits"] == (1, 0)
        assert cell.counter_drift["native.collection_scans"] == (0, 1)
        assert report.aggregate_counter_drift["xquery.nodes_visited"] \
            == (100, 220)

    def test_bad_artifacts_raise(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "missing.json")
        truncated = tmp_path / "trunc.json"
        truncated.write_text('{"schema": "xbench-obs/2", "cells": [')
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(truncated)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"schema": "other/1"}')
        with pytest.raises(ArtifactError, match="expected xbench-obs/"):
            load_artifact(wrong)

    def test_accepts_v1_artifacts(self, tmp_path):
        v1 = tmp_path / "old.json"
        v1.write_text(json.dumps(
            {"schema": "xbench-obs/1", "name": "old",
             "cells": [_cell("Q5", 0.010)]}))
        report = diff_paths(v1, v1)
        assert report.ok and len(report.cells) == 1


class TestCli:
    def test_explain_text_normalizes_class_spelling(self, capsys):
        code = cli_main(["explain", "dc_sd", "Q5", "--engine", "native",
                        "--units", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Q5 on dcsd via X-Hive (native)" in out
        assert "native.index_lookup" in out
        assert "rows_out=" in out and "time=" in out
        assert hooks.active() is None

    def test_explain_multiple_engines_with_unsupported(self, capsys):
        """dcsd supports native but not xcolumn: one plan plus one
        honest unsupported section still exits 0."""
        code = cli_main(["explain", "dc_sd", "Q5", "--engine", "native",
                        "--engine", "xcolumn", "--units", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "via X-Hive (native)" in out
        assert "via Xcolumn (xcolumn)" in out
        assert "unsupported:" in out

    def test_explain_json(self, capsys):
        code = cli_main(["explain", "dcmd", "Q5", "--engine", "xcolumn",
                        "--units", "20", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        [section] = json.loads(out)
        assert section["engine"] == "xcolumn"
        assert section["rows"] >= 1
        [plan] = section["plans"]
        assert plan["attrs"]["qid"] == "Q5"
        ops = {plan["root"]["op"]}
        for child in plan["root"].get("children", ()):
            ops.add(child["op"])
        assert "xcolumn.side_table_plan" in ops

    def test_explain_rejects_unknown_inputs(self, capsys):
        assert cli_main(["explain", "bogus", "Q5"]) == 1
        assert "unknown database class" in capsys.readouterr().err
        assert cli_main(["explain", "dcsd", "Q99"]) == 1
        assert "not defined" in capsys.readouterr().err

    def test_profile_json_format(self, capsys, tmp_path):
        code = cli_main(["profile", "--divisor", "20000",
                        "--classes", "dcsd", "--engines", "native",
                        "--queries", "Q1", "--repeats", "1",
                        "--explain", "--name", "cli-json",
                        "--obs-out", str(tmp_path),
                        "--format", "json"])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["schema"] == "xbench-obs/2"
        assert document["plans"]
        # Progress chatter goes to stderr so stdout stays pipeable.
        assert "wrote" in captured.err
        assert (tmp_path / "BENCH_cli-json.json").exists()

    def test_obs_diff_cli_gate(self, capsys, tmp_path):
        a = _write_artifact(tmp_path, "a", [_cell("Q5", 0.010)])
        b = _write_artifact(tmp_path / "b", "b", [_cell("Q5", 0.030)])
        assert cli_main(["obs", "diff", str(a), str(a)]) == 0
        capsys.readouterr()
        assert cli_main(["obs", "diff", str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out
        # --min-ms above both cells damps the gate.
        assert cli_main(["obs", "diff", str(a), str(b),
                        "--min-ms", "50"]) == 0
        capsys.readouterr()
        code = cli_main(["obs", "diff", str(a), str(b),
                        "--format", "json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 1
        assert record["regressions"] == 1

    def test_obs_diff_bad_artifact_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert cli_main(["obs", "diff", str(missing), str(missing)]) == 2
        assert "error:" in capsys.readouterr().err
