"""Table 9 — query Q14: irregular data - missing elements. No index covers the missing element, so every engine scans; relational table scans are compact, the native engine walks trees; times grow with size everywhere."""

from __future__ import annotations

import pytest

from ._query_cells import run_query_cell
from ._support import cell_id, supported_cells

QID = "Q14"
CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_q14(benchmark, loaded_engines, cell):
    run_query_cell(benchmark, loaded_engines, cell, QID)
