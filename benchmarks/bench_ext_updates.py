"""Extension — update workload (the paper's planned extension #2).

XBench 1.0 measures only queries and bulk loading; the paper lists
"update workloads" as the first planned extension.  This bench measures
the three natural multi-document update operations per engine:

* **insert** — a new document arrives (parse + shred / side-table
  extraction / tree attach, with incremental index maintenance);
* **update** — a value inside an existing document changes (an order's
  status): an indexed row update for the shredders, a whole-CLOB rewrite
  for Xcolumn, an in-place tree edit for the native engine;
* **delete** — a document is archived (multi-table DELETE vs. tree
  detach).

Expected shape: the native engine wins inserts (no mapping work) but the
shredders win value updates (one indexed row vs. Xcolumn's full-document
rewrite).
"""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.workload.updates import make_update_stream, run_update_stream

from ._support import ENGINES_BY_KEY

ENGINE_KEYS = ("native", "xcolumn", "xcollection", "sqlserver")
CLASS_KEYS = ("dcmd", "tcmd")


@pytest.mark.parametrize("class_key", CLASS_KEYS)
@pytest.mark.parametrize("engine_key", ENGINE_KEYS)
def test_update_stream(benchmark, xbench, engine_key, class_key):
    scenario = xbench.corpus.scenario(class_key, "normal")
    stream = make_update_stream(class_key, scenario.units, count=30,
                                seed=11)

    def setup():
        engine = ENGINES_BY_KEY[engine_key]()
        engine.timed_load(scenario.db_class, scenario.texts)
        engine.create_indexes(list(indexes_for(class_key)))
        return (engine,), {}

    def run(engine):
        return run_update_stream(engine, class_key, stream)

    stats = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert sum(stats.counts.values()) == 30
    summary = ", ".join(f"{kind}={stats.mean_ms(kind):.3f}ms"
                        for kind in sorted(stats.counts))
    print(f"\n{engine_key}/{class_key}: {summary}")
