"""The paper-layout report: Tables 4-9 printed exactly as published.

This is the harness that regenerates the paper's result tables in one
shot — rows are the four systems, columns DC/SD | DC/MD | TC/SD | TC/MD
split into Small/Normal/Large, ``-`` for unrunnable configurations and
``*`` for results that disagree with the native correctness oracle.

The measured operation is the complete suite (all loads + all queries);
the printed output is what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from repro.core import XBench, format_suite
from repro.core.report import shape_summary

from ._support import benchmark_config


def test_full_suite_report(benchmark):
    def run():
        bench = XBench(benchmark_config())
        return bench.run_suite()

    suite = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_suite(suite))
    print()
    for line in shape_summary(suite):
        print("shape:", line)

    # Structural assertions on the published table layout.
    assert suite.load.cells[("Xcolumn", "dcsd", "large")].seconds is None
    assert suite.load.cells[("X-Hive", "dcmd", "large")].seconds \
        is not None
    assert set(suite.queries) == {"Q5", "Q8", "Q12", "Q14", "Q17"}
