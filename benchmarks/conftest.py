"""Shared benchmark fixtures.

The benchmark scale is controlled by the ``XBENCH_DIVISOR`` environment
variable (default 2000): the paper's 10 MB / 100 MB / 1 GB budgets are
divided by it, preserving the 1:10:100 ratios.  Lower values give larger
databases and better resolution at the cost of runtime.

Engines are loaded once per (engine, class, scale) cell and cached for
the whole session, mirroring the paper's per-scenario database instances;
the bulk-load benchmarks construct fresh engines because loading *is*
their measured operation.
"""

from __future__ import annotations

import pytest

from repro.core import XBench
from repro.core.indexes import indexes_for

from ._support import ENGINES_BY_KEY, benchmark_config


@pytest.fixture(scope="session")
def xbench() -> XBench:
    return XBench(benchmark_config())


@pytest.fixture(scope="session")
def loaded_engines(xbench):
    """Cache of loaded, indexed engines keyed by benchmark cell."""
    cache: dict[tuple[str, str, str], object] = {}

    def get(engine_key: str, class_key: str, scale: str):
        key = (engine_key, class_key, scale)
        if key not in cache:
            engine = ENGINES_BY_KEY[engine_key]()
            scenario = xbench.corpus.scenario(class_key, scale)
            engine.check_supported(scenario.db_class, scale)
            engine.timed_load(scenario.db_class, scenario.texts)
            engine.create_indexes(list(indexes_for(class_key)))
            cache[key] = (engine, scenario)
        return cache[key]

    return get
