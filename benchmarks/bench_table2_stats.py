"""Table 2 — statistics of the analyzed text-centric corpora.

The paper's Table 2 reports file counts, file-size ranges and data sizes
of the real corpora (GCIDE, OED, Reuters, Springer), which are
proprietary.  This bench runs the same Section 2.1.1 analysis over this
package's generated TC corpora and prints the equivalent rows; the
benchmark measures the analyzer itself.
"""

from __future__ import annotations

import pytest

from repro.stats import analyze_corpus, format_table2

from ._support import benchmark_config


@pytest.fixture(scope="module")
def tc_corpora(xbench):
    return {
        "dictionary": xbench.corpus.scenario("tcsd", "normal"),
        "articles": xbench.corpus.scenario("tcmd", "normal"),
    }


def test_analyze_tc_corpora(benchmark, tc_corpora):
    def analyze():
        rows = []
        for source, scenario in tc_corpora.items():
            documents = scenario.db_class.generate(scenario.units,
                                                   seed=42)
            sizes = [len(text) for __, text in scenario.texts]
            rows.append(analyze_corpus(documents, source=source,
                                       sizes=sizes))
        return rows

    rows = benchmark.pedantic(analyze, rounds=2, iterations=1)
    table = format_table2(rows)
    print("\n" + table)
    assert "dictionary" in table
    # text-centric corpora must actually be text-dominated
    assert all(stats.text_ratio() > 0.3 for stats in rows)


def test_distribution_fitting(benchmark, tc_corpora):
    """The fitting half of Section 2.1.1: fit occurrence distributions."""
    from repro.stats import best_fit
    scenario = tc_corpora["dictionary"]
    documents = scenario.db_class.generate(scenario.units, seed=42)
    stats = analyze_corpus(documents, sizes=[0])

    def fit_all():
        fits = {}
        for pair in stats.parent_child_pairs():
            samples = [float(v)
                       for v in stats.occurrence_samples(*pair)]
            if len(samples) >= 10:
                fits[pair] = best_fit(samples)
        return fits

    fits = benchmark.pedantic(fit_all, rounds=2, iterations=1)
    assert fits, "expected at least one fitted distribution"
    print("\nFitted occurrence distributions (dictionary):")
    for (parent, child), fit in sorted(fits.items()):
        print(f"  {parent}/{child}: {fit}")
