"""Table 4 — bulk loading time.

One benchmark per supported (engine, class, scale) cell: a fresh engine
instance bulk-loads the serialized corpus (parse + shred/side-table
extraction + automatic key indexes, per architecture).  The paper's
finding: the relational engines pay mapping overhead everywhere, DC/MD is
the slowest class per byte because its document count dominates, and the
native engine is fastest across the board.
"""

from __future__ import annotations

import pytest

from ._support import ENGINES_BY_KEY, cell_id, supported_cells

CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_bulk_load(benchmark, xbench, cell):
    engine_key, class_key, scale = cell
    scenario = xbench.corpus.scenario(class_key, scale)

    def load():
        engine = ENGINES_BY_KEY[engine_key]()
        return engine.timed_load(scenario.db_class, scenario.texts)

    stats = benchmark.pedantic(load, rounds=2, iterations=1)
    assert stats.documents == len(scenario.texts)
