"""Table 6 — query Q12: document construction: rebuild the mailing address / credit card / definition fragment. The shredders must reconstruct structure from joined rows (and lose mixed-content markup - starred cells); Xcolumn parses the intact CLOB and is always correct; the native engine copies subtrees directly."""

from __future__ import annotations

import pytest

from ._query_cells import run_query_cell
from ._support import cell_id, supported_cells

QID = "Q12"
CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_q12(benchmark, loaded_engines, cell):
    run_query_cell(benchmark, loaded_engines, cell, QID)
