"""Table 7 — query Q17: uni-gram text search. No engine has a full-text index (Section 3.2.2): the relational engines LIKE-scan every text column, Xcolumn scans its side tables, the native engine walks every text node; all grow with database size."""

from __future__ import annotations

import pytest

from ._query_cells import run_query_cell
from ._support import cell_id, supported_cells

QID = "Q17"
CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_q17(benchmark, loaded_engines, cell):
    run_query_cell(benchmark, loaded_engines, cell, QID)
