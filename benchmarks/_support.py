"""Shared helpers for the benchmark modules (cells, ids, engine registry)."""

from __future__ import annotations

import os

from repro.core import BenchmarkConfig
from repro.databases import CLASSES_BY_KEY
from repro.engines import ENGINE_FACTORIES
from repro.errors import UnsupportedConfiguration

SCALES = ("small", "normal", "large")
CLASSES = ("dcsd", "dcmd", "tcsd", "tcmd")

ENGINES_BY_KEY = {factory.key: factory for factory in ENGINE_FACTORIES}


def benchmark_config() -> BenchmarkConfig:
    """Scale is controlled by XBENCH_DIVISOR (default 2000)."""
    divisor = int(os.environ.get("XBENCH_DIVISOR", "2000"))
    return BenchmarkConfig(scale_divisor=divisor, scale_names=SCALES)


def supported_cells() -> list[tuple[str, str, str]]:
    """(engine key, class key, scale) combos that are not '-' cells."""
    cells = []
    for engine_key, factory in ENGINES_BY_KEY.items():
        probe = factory()
        for class_key in CLASSES:
            for scale in SCALES:
                try:
                    probe.check_supported(CLASSES_BY_KEY[class_key],
                                          scale)
                except UnsupportedConfiguration:
                    continue
                cells.append((engine_key, class_key, scale))
    return cells


def cell_id(cell: tuple[str, str, str]) -> str:
    engine_key, class_key, scale = cell
    return f"{engine_key}-{class_key}-{scale}"
