"""Replication A/B: read throughput under `strong` vs `eventual`.

Run as a script to (re)generate ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_replication.py

One query server is started with ``shards=2, replicas=2`` and a
service-time floor (the load-test knob that gives tiny test corpora a
realistic saturation knee).  With replicas the floor moves *into the
engine* — it is paid while holding the serving row's lease — so the
knee scales with the number of rows that can serve a read:

* ``strong`` reads are pinned to the primary row and saturate near
  ``executors-independent`` 1/floor q/s per shard pair;
* ``eventual`` reads fan across primary + 2 replica rows
  (least-outstanding selection) and should push the knee close to
  ``(replicas + 1) / floor``.

The same seeded open-loop rate sweep runs under both tiers (only the
session consistency differs).  Every request carries a deadline: an
open loop with no deadline eventually completes *everything* late,
which makes ``completed / measure_seconds`` echo the offered rate for
any tier — with a deadline, requests the saturated tier cannot serve
in time are shed at admission or deadline-killed, so completed
throughput plateaus at real capacity.  The artifact records both
curves plus ``read_gain`` = best eventual throughput / best strong
throughput.  ``--min-gain`` (used by CI) fails the run if replication
bought less than the required factor.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.loadgen import LoadConfig, run_rate_sweep, sweep_curve
from repro.server import QueryServer, ServerConfig

CLASS_KEY = "dcmd"
UNITS = 12
SHARDS = 2
REPLICAS = 2
FLOOR_SECONDS = 0.02
DEADLINE_SECONDS = 0.25
RATES = [25.0, 50.0, 100.0, 150.0]
SEED = 17
ARTIFACT = os.path.join(os.path.dirname(__file__),
                        "BENCH_serving.json")


def _sweep(port: int, consistency: str) -> list[dict]:
    config = LoadConfig(port=port, class_key=CLASS_KEY, units=UNITS,
                        shards=SHARDS, replicas=REPLICAS,
                        consistency=consistency, mode="open",
                        streams=16, deadline=DEADLINE_SECONDS,
                        warmup_seconds=0.5,
                        measure_seconds=2.0, seed=SEED)
    return sweep_curve(run_rate_sweep(config, list(RATES)))


def _best_qps(curve: list[dict]) -> float:
    return max(point["throughput_qps"] for point in curve)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=ARTIFACT,
                        help="artifact path (default: the committed "
                             "benchmarks/BENCH_serving.json)")
    parser.add_argument("--min-gain", type=float, default=None,
                        help="fail unless eventual/strong read "
                             "throughput >= this factor")
    args = parser.parse_args()

    server = QueryServer(ServerConfig(
        port=0, class_key=CLASS_KEY, units=UNITS, shards=SHARDS,
        replicas=REPLICAS, executors=REPLICAS + 2, max_queue=64,
        throttle_seconds=FLOOR_SECONDS, seed=SEED,
        sample_resources=False)).start_background()
    try:
        curves = {tier: _sweep(server.port, tier)
                  for tier in ("strong", "eventual")}
    finally:
        server.stop_background()

    strong_qps = _best_qps(curves["strong"])
    eventual_qps = _best_qps(curves["eventual"])
    gain = round(eventual_qps / strong_qps, 3) if strong_qps else 0.0
    artifact = {
        "schema": "xbench-replication/1",
        "config": {
            "class": CLASS_KEY, "units": UNITS, "shards": SHARDS,
            "replicas": REPLICAS, "service_floor_s": FLOOR_SECONDS,
            "deadline_s": DEADLINE_SECONDS,
            "rates": RATES, "seed": SEED,
        },
        "replication_sweep": curves,
        "best_throughput_qps": {"strong": strong_qps,
                                "eventual": eventual_qps},
        "read_gain": gain,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"strong   best {strong_qps:7.1f} q/s")
    print(f"eventual best {eventual_qps:7.1f} q/s  "
          f"(gain {gain:.2f}x with {REPLICAS} replicas)")
    print(f"wrote {args.out}")
    if args.min_gain is not None and gain < args.min_gain:
        print(f"FAIL: read gain {gain:.2f}x < required "
              f"{args.min_gain:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
