"""Ablation — the Table 3 value indexes vs. sequential scans.

The paper measures every query "with no indexes (i.e., sequential scan)
to form a baseline, and with indexes", but only tabulates the indexed
times.  This bench reports both sides for the point queries (Q5, Q8) on
the classes where Table 3 defines an index, quantifying design decision
#1 of DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.workload import bind_params

from ._support import ENGINES_BY_KEY, cell_id, supported_cells

# Point queries on their indexed classes; larger scale = bigger effect.
ABLATION_CELLS = [cell for cell in supported_cells()
                  if cell[2] == "large"]
QIDS = ("Q5", "Q8")


def _load(xbench, engine_key, class_key, scale, with_indexes):
    engine = ENGINES_BY_KEY[engine_key]()
    scenario = xbench.corpus.scenario(class_key, scale)
    engine.timed_load(scenario.db_class, scenario.texts)
    if with_indexes:
        engine.create_indexes(list(indexes_for(class_key)))
    return engine, scenario


@pytest.mark.parametrize("qid", QIDS)
@pytest.mark.parametrize("cell", ABLATION_CELLS,
                         ids=[cell_id(c) for c in ABLATION_CELLS])
@pytest.mark.parametrize("indexed", [True, False],
                         ids=["indexed", "scan"])
def test_index_ablation(benchmark, xbench, cell, qid, indexed):
    engine_key, class_key, scale = cell
    engine, scenario = _load(xbench, engine_key, class_key, scale,
                             indexed)
    params = bind_params(qid, class_key, scenario.units)
    benchmark(engine.execute, qid, params)
