"""Shard scaling A/B: sharded bulk load vs. the single-process engine.

Run as a script to (re)generate ``BENCH_shard_scaling.json``::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py

For each multi-document class the artifact records three measurements
at the default bench scale (divisor 1000, "large"):

* ``single_seconds`` — one native engine loading the whole corpus;
* ``wall_seconds`` — the sharded service (N fork workers) doing the
  same load end-to-end, *as contended on this machine*;
* ``per_shard_seconds`` — each shard's partition loaded sequentially
  in isolation.  ``max(per_shard_seconds)`` is the critical path: the
  wall time a machine with >= N free cores converges to, independent
  of how oversubscribed the measuring host is.

``projected_speedup = single_seconds / critical_path_seconds`` is the
honest scaling number; ``measured_speedup`` is the contended one.  On a
single-core container the measured number is *below* 1.0 while the
projection holds — which is why both are recorded, along with
``cpu_count``.  DC/MD's projection is capped well under N because its
replicated flat documents (see ``DatabaseClass.replicated_documents``)
are parsed by every worker; TC/MD partitions perfectly.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.benchmark import BenchmarkConfig, XBench
from repro.core.shard import ShardedEngine, shard_of
from repro.engines import create

SHARDS = 4
SCALE = "large"
CLASSES = ("dcmd", "tcmd")
ARTIFACT = os.path.join(os.path.dirname(__file__),
                        "BENCH_shard_scaling.json")


def _measure_class(bench: XBench, class_key: str) -> dict:
    scenario = bench.corpus.scenario(class_key, SCALE)
    texts = list(scenario.texts)

    start = time.perf_counter()
    engine = create("native")
    engine.timed_load(scenario.db_class, list(texts))
    engine.close()
    single = time.perf_counter() - start

    sharded = ShardedEngine("native", shards=SHARDS)
    start = time.perf_counter()
    sharded.timed_load(scenario.db_class, list(texts))
    wall = time.perf_counter() - start
    sharded.close()

    replicated = set(scenario.db_class.replicated_documents)
    partitions: dict[int, list] = {i: [] for i in range(SHARDS)}
    for name, text in texts:
        if name not in replicated:
            partitions[shard_of(name, SHARDS)].append((name, text))
    broadcast = [(name, text) for name, text in texts
                 if name in replicated]
    per_shard = []
    for index in range(SHARDS):
        worker = create("native")
        start = time.perf_counter()
        worker.timed_load(scenario.db_class,
                          partitions[index] + broadcast)
        per_shard.append(time.perf_counter() - start)
        worker.close()
    critical = max(per_shard)

    return {
        "class": class_key,
        "scale": SCALE,
        "documents": len(texts),
        "bytes": sum(len(text) for __, text in texts),
        "replicated_documents": sorted(replicated),
        "single_seconds": single,
        "wall_seconds": wall,
        "per_shard_seconds": per_shard,
        "critical_path_seconds": critical,
        "measured_speedup": single / wall,
        "projected_speedup": single / critical,
    }


def main() -> int:
    bench = XBench(BenchmarkConfig(scale_divisor=1000))
    record = {
        "schema": "xbench-shard-scaling/1",
        "shards": SHARDS,
        "scale_divisor": 1000,
        "cpu_count": os.cpu_count(),
        "classes": [_measure_class(bench, key) for key in CLASSES],
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    for row in record["classes"]:
        print(f"{row['class']}: single {row['single_seconds']:.3f}s, "
              f"critical path {row['critical_path_seconds']:.3f}s "
              f"-> projected {row['projected_speedup']:.2f}x "
              f"(measured {row['measured_speedup']:.2f}x on "
              f"{record['cpu_count']} cpu)")
    failures = [row["class"] for row in record["classes"]
                if row["projected_speedup"] < 1.5]
    if failures:
        print(f"FAIL: projected speedup < 1.5x for {failures}")
        return 1
    print(f"ok: wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
