"""Shard scaling A/B: sharded bulk load vs. the single-process engine.

Run as a script to (re)generate ``BENCH_shard_scaling.json``::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py

For each multi-document class the artifact records, at the default
bench scale (divisor 1000, "large"):

* ``single_seconds`` — one native engine parsing the whole corpus;
* per-transport sharded loads (``pipe`` = inline pickled payloads,
  the *before* row; ``shm`` = shared-memory segment + offset triples,
  the *after* row), each with end-to-end ``wall_seconds``, the actual
  ``pipe_bytes`` that crossed the worker pipes, and the encode / ship
  (attach) / decode (worker load) phase split;
* ``per_shard_seconds`` — each shard's partition loaded sequentially
  in isolation.  ``max(per_shard_seconds)`` is the critical path: the
  wall time a machine with >= N free cores converges to, independent
  of how oversubscribed the measuring host is;
* ``snapshot`` — the warm-start path: corpus pre-encoded into an RXSN
  snapshot (``repro snapshot build``), then loaded by decoding node
  arrays instead of parsing XML, single-process and sharded-over-shm
  (contended wall = best of 3 full starts, plus a per-shard decode
  critical path mirroring ``per_shard_seconds``).

``projected_speedup = single_seconds / critical_path_seconds`` is the
honest scaling number; ``measured_speedup`` is the contended one.  On a
single-core container the measured number is *below* 1.0 for parse
loads while the projection holds — which is why both are recorded,
along with ``cpu_count``.  The snapshot rows are where a one-core box
can beat the parse baseline for real: decoding is far cheaper than
parsing, so ``snapshot.sharded_speedup`` (sharded warm start vs.
single-process re-parse) clears 1x even fully contended.

``gate-snapshot`` mode (used by CI) builds a snapshot for one class
and fails unless the warm start beats re-parsing::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        gate-snapshot --class dcmd --min-speedup 1.0
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

from repro.core.benchmark import BenchmarkConfig, XBench
from repro.core.corpus_io import open_snapshot_corpus, \
    snapshot_filename, write_snapshot
from repro.core.shard import ShardedEngine, shard_of
from repro.engines import create
from repro.obs import Recorder, observing

SHARDS = 4
SCALE = "large"
CLASSES = ("dcmd", "tcmd")
SEED = 42
ARTIFACT = os.path.join(os.path.dirname(__file__),
                        "BENCH_shard_scaling.json")


def _timed_single_load(db_class, corpus) -> float:
    engine = create("native")
    start = time.perf_counter()
    engine.timed_load(db_class, corpus)
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed


def _measure_transport(scenario, texts, transport: str,
                       single: float) -> dict:
    """One sharded bulk load over ``transport``, with the obs recorder
    capturing what actually crossed the pipes."""
    with observing(Recorder()) as recorder:
        sharded = ShardedEngine("native", shards=SHARDS,
                                transport=transport)
        start = time.perf_counter()
        sharded.timed_load(scenario.db_class, list(texts))
        wall = time.perf_counter() - start
        report = sharded.last_load_report
        sharded.close()
        pipe_bytes = recorder.counters.get("shard.pipe_bytes")
    workers = [phases for phases in report["workers"] if phases]
    row = {
        "transport": report["transport"],
        "wall_seconds": wall,
        "measured_speedup": single / wall,
        "pipe_bytes": pipe_bytes,
        "phases": {
            "encode_seconds": report["encode_seconds"],
            "attach_seconds_max": max(
                (w["attach_seconds"] for w in workers), default=None),
            "worker_load_seconds_max": max(
                (w["load_seconds"] for w in workers), default=None),
        },
        "segment_bytes": report["segment_bytes"],
    }
    return row


def _measure_snapshot(scenario, single: float, directory: str,
                      repeats: int = 3) -> dict:
    """Warm-start timings: snapshot build once, then decode-loads."""
    db_class = scenario.db_class
    documents = db_class.generate(scenario.units, seed=SEED)
    path = os.path.join(directory,
                        snapshot_filename(db_class.key, scenario.units))
    start = time.perf_counter()
    meta = write_snapshot(path, documents,
                          meta={"class": db_class.key,
                                "units": scenario.units, "seed": SEED})
    build = time.perf_counter() - start

    warm_single = min(
        _timed_single_load(db_class,
                           open_snapshot_corpus(directory, db_class.key,
                                                scenario.units, SEED))
        for __ in range(repeats))

    # Contended wall time: best of ``repeats`` full sharded warm
    # starts (fork + segment build + attach + decode), since worker
    # spawn cost is noisy on an oversubscribed host.
    warm_sharded = float("inf")
    for __ in range(repeats):
        corpus = open_snapshot_corpus(directory, db_class.key,
                                      scenario.units, SEED)
        sharded = ShardedEngine("native", shards=SHARDS,
                                transport="shm")
        start = time.perf_counter()
        sharded.timed_load(db_class, corpus)
        warm_sharded = min(warm_sharded, time.perf_counter() - start)
        transport = sharded.last_load_report["transport"]
        sharded.close()

    # Warm critical path: each shard's decode partition loaded
    # sequentially in isolation, mirroring ``per_shard_seconds`` on
    # the parse path.  ``single / max(...)`` is what a host with >=
    # SHARDS free cores converges to.
    corpus = list(open_snapshot_corpus(directory, db_class.key,
                                       scenario.units, SEED))
    replicated = set(db_class.replicated_documents)
    partitions: dict[int, list] = {i: [] for i in range(SHARDS)}
    for name, payload in corpus:
        if name not in replicated:
            partitions[shard_of(name, SHARDS)].append((name, payload))
    broadcast = [(name, payload) for name, payload in corpus
                 if name in replicated]
    warm_per_shard = [
        _timed_single_load(db_class, partitions[index] + broadcast)
        for index in range(SHARDS)]
    warm_critical = max(warm_per_shard)

    return {
        "build_seconds": build,
        "encoded_bytes": meta["payload_bytes"],
        "warm_single_seconds": warm_single,
        "warm_sharded_wall_seconds": warm_sharded,
        "warm_sharded_transport": transport,
        "warm_per_shard_seconds": warm_per_shard,
        "warm_critical_path_seconds": warm_critical,
        # Snapshot decode vs. XML re-parse, both single-process.
        "warm_speedup": single / warm_single,
        # The headline: sharded warm start vs. the single-process
        # parse baseline, as contended on this machine.
        "sharded_speedup": single / warm_sharded,
        # Same comparison at the shard critical path (>= SHARDS cores).
        "projected_sharded_speedup": single / warm_critical,
    }


def _measure_class(bench: XBench, class_key: str,
                   snapshot_dir: str) -> dict:
    scenario = bench.corpus.scenario(class_key, SCALE)
    texts = list(scenario.texts)

    single = _timed_single_load(scenario.db_class, list(texts))

    transports = {
        transport: _measure_transport(scenario, texts, transport,
                                      single)
        for transport in ("pipe", "shm")}

    replicated = set(scenario.db_class.replicated_documents)
    partitions: dict[int, list] = {i: [] for i in range(SHARDS)}
    for name, text in texts:
        if name not in replicated:
            partitions[shard_of(name, SHARDS)].append((name, text))
    broadcast = [(name, text) for name, text in texts
                 if name in replicated]
    per_shard = []
    for index in range(SHARDS):
        per_shard.append(_timed_single_load(
            scenario.db_class, partitions[index] + broadcast))
    critical = max(per_shard)

    wall = transports["shm"]["wall_seconds"]
    return {
        "class": class_key,
        "scale": SCALE,
        "documents": len(texts),
        "bytes": sum(len(text) for __, text in texts),
        "replicated_documents": sorted(replicated),
        "single_seconds": single,
        "wall_seconds": wall,
        "transports": transports,
        "per_shard_seconds": per_shard,
        "critical_path_seconds": critical,
        "measured_speedup": single / wall,
        "projected_speedup": single / critical,
        "snapshot": _measure_snapshot(scenario, single, snapshot_dir),
    }


def run_bench() -> int:
    bench = XBench(BenchmarkConfig(scale_divisor=1000))
    with tempfile.TemporaryDirectory(prefix="xbench-snap-") as snaps:
        record = {
            "schema": "xbench-shard-scaling/2",
            "shards": SHARDS,
            "scale_divisor": 1000,
            "cpu_count": os.cpu_count(),
            "classes": [_measure_class(bench, key, snaps)
                        for key in CLASSES],
        }
    with open(ARTIFACT, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    failures = []
    for row in record["classes"]:
        pipe = row["transports"]["pipe"]["pipe_bytes"]
        shm = row["transports"]["shm"]["pipe_bytes"]
        snap = row["snapshot"]
        print(f"{row['class']}: single {row['single_seconds']:.3f}s, "
              f"critical path {row['critical_path_seconds']:.3f}s "
              f"-> projected {row['projected_speedup']:.2f}x "
              f"(measured {row['measured_speedup']:.2f}x on "
              f"{record['cpu_count']} cpu)")
        print(f"  pipe bytes {pipe} -> {shm} over shm "
              f"({pipe / max(1, shm):.0f}x less); snapshot warm "
              f"{snap['warm_speedup']:.2f}x single, "
              f"{snap['sharded_speedup']:.2f}x sharded vs re-parse "
              f"({snap['projected_sharded_speedup']:.2f}x at the "
              "shard critical path)")
        if row["projected_speedup"] < 1.5:
            failures.append(f"{row['class']}: projected "
                            f"{row['projected_speedup']:.2f}x < 1.5x")
        if shm * 10 > pipe:
            failures.append(f"{row['class']}: shm shipped {shm} pipe "
                            f"bytes vs {pipe} inline (< 10x cut)")
        if snap["warm_speedup"] < 3.0:
            failures.append(f"{row['class']}: snapshot warm start "
                            f"{snap['warm_speedup']:.2f}x < 3x "
                            "faster than re-parse")
        if snap["projected_sharded_speedup"] < 1.2:
            failures.append(
                f"{row['class']}: sharded warm start "
                f"{snap['projected_sharded_speedup']:.2f}x < 1.2x "
                "at the shard critical path")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok: wrote {ARTIFACT}")
    return 0


def gate_snapshot(args: argparse.Namespace) -> int:
    """CI gate: a snapshot warm start must beat re-parsing."""
    bench = XBench(BenchmarkConfig(scale_divisor=args.divisor))
    scenario = bench.corpus.scenario(args.class_key, args.scale)
    texts = list(scenario.texts)
    directory = args.snapshot_dir or tempfile.mkdtemp(
        prefix="xbench-snap-gate-")
    db_class = scenario.db_class
    path = os.path.join(directory,
                        snapshot_filename(db_class.key, scenario.units))
    if not os.path.exists(path):
        write_snapshot(path, db_class.generate(scenario.units,
                                               seed=SEED),
                       meta={"class": db_class.key,
                             "units": scenario.units, "seed": SEED})
    cold = min(_timed_single_load(db_class, list(texts))
               for __ in range(args.repeats))
    warm = min(_timed_single_load(
                   db_class,
                   open_snapshot_corpus(directory, db_class.key,
                                        scenario.units, SEED))
               for __ in range(args.repeats))
    speedup = cold / warm
    print(f"{args.class_key}: re-parse {cold:.3f}s, snapshot warm "
          f"start {warm:.3f}s -> {speedup:.2f}x "
          f"(gate: >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: warm start only {speedup:.2f}x")
        return 1
    print("ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode")
    gate = sub.add_parser("gate-snapshot",
                          help="fail unless snapshot warm start beats "
                               "re-parsing")
    gate.add_argument("--class", dest="class_key", default="dcmd")
    gate.add_argument("--scale", default=SCALE)
    gate.add_argument("--divisor", type=int, default=1000)
    gate.add_argument("--repeats", type=int, default=3)
    gate.add_argument("--min-speedup", type=float, default=1.0)
    gate.add_argument("--snapshot-dir", default=None,
                      help="reuse/build snapshots here (e.g. a CI "
                           "cache); default: fresh temp dir")
    args = parser.parse_args()
    if args.mode == "gate-snapshot":
        return gate_snapshot(args)
    return run_bench()


if __name__ == "__main__":
    raise SystemExit(main())
