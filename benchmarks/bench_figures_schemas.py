"""Figures 1-4 — the schema diagrams of the four database classes.

The paper's figures are visual schema diagrams; this bench regenerates
them as ASCII trees from the same schema descriptions that drive the
generator and the shredding mappings (so the figures cannot drift from
the implementation), printing each one.
"""

from __future__ import annotations

import pytest

from repro.core.diagrams import FIGURES, render_figure


@pytest.mark.parametrize("number", sorted(FIGURES),
                         ids=[f"figure{n}" for n in sorted(FIGURES)])
def test_render_figure(benchmark, number):
    diagram = benchmark(render_figure, number)
    print("\n" + diagram)
    class_key, caption = FIGURES[number]
    assert caption in diagram
    # every figure shows at least one mandatory and one optional type
    assert "[" in diagram and "(" in diagram
