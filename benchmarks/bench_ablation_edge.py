"""Ablation — shredding granularity: DAD mapping vs. interval encoding.

DESIGN.md design decision #2: schema-specific shredding (Xcollection's
DAD tables) against the schema-agnostic edge/interval table.  The edge
table wins on mapping effort (one loader for every class, no DAD) and
loses on query cost (one self-join per path step instead of direct
column access); this bench quantifies both sides on the experiment
queries at the large scale.
"""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.engines.edge import EdgeEngine
from repro.workload import bind_params

from ._support import ENGINES_BY_KEY

CONTENDERS = {"xcollection": ENGINES_BY_KEY["xcollection"],
              "edge": EdgeEngine}
QIDS = ("Q5", "Q8", "Q14", "Q17")
CLASSES = ("dcmd", "tcmd")     # classes Xcollection supports at scale


@pytest.fixture(scope="module")
def contender_engines(xbench):
    cache = {}

    def get(engine_key: str, class_key: str):
        key = (engine_key, class_key)
        if key not in cache:
            scenario = xbench.corpus.scenario(class_key, "large")
            engine = CONTENDERS[engine_key]()
            engine.timed_load(scenario.db_class, scenario.texts)
            engine.create_indexes(list(indexes_for(class_key)))
            cache[key] = (engine, scenario)
        return cache[key]

    return get


@pytest.mark.parametrize("qid", QIDS)
@pytest.mark.parametrize("class_key", CLASSES)
@pytest.mark.parametrize("engine_key", sorted(CONTENDERS))
def test_granularity_ablation(benchmark, contender_engines, engine_key,
                              class_key, qid):
    engine, scenario = contender_engines(engine_key, class_key)
    params = bind_params(qid, class_key, scenario.units)
    benchmark(engine.execute, qid, params)


@pytest.mark.parametrize("class_key", CLASSES)
@pytest.mark.parametrize("engine_key", sorted(CONTENDERS))
def test_granularity_load(benchmark, xbench, engine_key, class_key):
    scenario = xbench.corpus.scenario(class_key, "normal")

    def load():
        engine = CONTENDERS[engine_key]()
        return engine.timed_load(scenario.db_class, scenario.texts)

    stats = benchmark.pedantic(load, rounds=2, iterations=1)
    assert stats.documents == len(scenario.texts)
