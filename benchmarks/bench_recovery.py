"""Crash-recovery benchmark: recovery time vs journal length, plus the
checkpoint-compaction disk bound.

Run as a script to (re)generate ``BENCH_recovery.json``::

    PYTHONPATH=src python benchmarks/bench_recovery.py

Two measurements over the durable sharded engine:

* **Recovery curve** — load a corpus into a fresh data directory (the
  load takes the baseline checkpoint), apply N acknowledged writes with
  checkpointing disabled so all N land in the WAL suffix, hard-kill the
  engine (:meth:`ShardedEngine.abort`, kill -9 semantics) and time the
  cold start.  Recovery time should grow roughly linearly with the
  replayed journal length — the curve is the argument for checkpoint
  compaction.
* **Compaction bound** — the same write stream with periodic
  checkpoints: after the final checkpoint the on-disk WAL must stay
  under ``shards * KEEP * segment_bytes`` (the manifest keeps ``KEEP``
  checkpoints, so at most the segments above the oldest retained one
  plus an empty live segment survive per shard).  The bound is a hard
  gate: exceeding it exits non-zero (CI runs this).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile

from repro.core.checkpoint import CheckpointManager
from repro.core.shard import ShardedEngine
from repro.databases import CLASSES_BY_KEY
from repro.xml.serializer import serialize

CLASS_KEY = "dcmd"
UNITS = 24
SHARDS = 2
SEED = 11
FSYNC = "always"
JOURNAL_LENGTHS = [0, 16, 64, 160]
COMPACTION_WRITES = 96
COMPACTION_CHECKPOINT_EVERY = 24
SEGMENT_BYTES = 64 * 1024
UPDATE = ("order/@id", "order_status")
ARTIFACT = os.path.join(os.path.dirname(__file__),
                        "BENCH_recovery.json")


def corpus_texts():
    db_class = CLASSES_BY_KEY[CLASS_KEY]
    documents = db_class.generate(UNITS, seed=SEED)
    return db_class, [(doc.name, serialize(doc))
                      for doc in documents]


def durable_engine(db_class, texts, data_dir, **kwargs):
    engine = ShardedEngine("native", shards=SHARDS, data_dir=data_dir,
                           fsync=FSYNC,
                           wal_segment_bytes=SEGMENT_BYTES, **kwargs)
    engine.timed_load(db_class, list(texts))
    return engine


def write(engine, step: int) -> None:
    engine.update_value(UPDATE[0], str(step % UNITS + 1), UPDATE[1],
                        f"tok{step}")


def recovery_point(db_class, texts, journal_records: int) -> dict:
    """One curve point: N-record WAL suffix -> timed cold start."""
    data_dir = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        engine = durable_engine(db_class, texts, data_dir)
        for step in range(journal_records):
            write(engine, step)
        wal_bytes = engine.wal_disk_bytes()
        engine.abort()

        recovered = ShardedEngine("native", shards=SHARDS,
                                  recover_dir=data_dir, fsync=FSYNC,
                                  wal_segment_bytes=SEGMENT_BYTES)
        report = recovered.last_recovery_report
        recovered.close()
        assert report["committed_seq"] == journal_records
        return {
            "journal_records": journal_records,
            "wal_records_replayed": report["wal_records"],
            "wal_disk_bytes": wal_bytes,
            "recovery_seconds": round(report["seconds"], 4),
            "committed_seq": report["committed_seq"],
            "documents": report["documents"],
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def compaction_run(db_class, texts) -> dict:
    """Checkpointed write stream -> post-compaction WAL disk bound."""
    data_dir = tempfile.mkdtemp(prefix="bench-compaction-")
    try:
        engine = durable_engine(db_class, texts, data_dir)
        peak_bytes = 0
        for step in range(COMPACTION_WRITES):
            write(engine, step)
            peak_bytes = max(peak_bytes, engine.wal_disk_bytes())
            if (step + 1) % COMPACTION_CHECKPOINT_EVERY == 0:
                engine.checkpoint()
        final_bytes = engine.wal_disk_bytes()
        journal_bytes = engine.journal_bytes()
        engine.close()
        bound = SHARDS * CheckpointManager.KEEP * SEGMENT_BYTES
        return {
            "writes": COMPACTION_WRITES,
            "checkpoint_every": COMPACTION_CHECKPOINT_EVERY,
            "segment_bytes": SEGMENT_BYTES,
            "peak_wal_disk_bytes": peak_bytes,
            "post_compaction_wal_disk_bytes": final_bytes,
            "post_compaction_journal_bytes": journal_bytes,
            "bound_bytes": bound,
            "within_bound": final_bytes <= bound,
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=ARTIFACT,
                        help="artifact path (default: the committed "
                             "benchmarks/BENCH_recovery.json)")
    args = parser.parse_args()

    db_class, texts = corpus_texts()
    curve = [recovery_point(db_class, texts, length)
             for length in JOURNAL_LENGTHS]
    compaction = compaction_run(db_class, texts)

    artifact = {
        "schema": "xbench-recovery/1",
        "config": {
            "class": CLASS_KEY, "units": UNITS, "shards": SHARDS,
            "fsync": FSYNC, "segment_bytes": SEGMENT_BYTES,
            "journal_lengths": JOURNAL_LENGTHS, "seed": SEED,
        },
        "recovery_curve": curve,
        "compaction": compaction,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("recovery time vs journal length:")
    print(f"  {'records':>8} {'replayed':>9} {'wal bytes':>10} "
          f"{'seconds':>8}")
    for point in curve:
        print(f"  {point['journal_records']:>8} "
              f"{point['wal_records_replayed']:>9} "
              f"{point['wal_disk_bytes']:>10} "
              f"{point['recovery_seconds']:>8.4f}")
    print(f"compaction: peak {compaction['peak_wal_disk_bytes']} B, "
          f"final {compaction['post_compaction_wal_disk_bytes']} B "
          f"(bound {compaction['bound_bytes']} B)")
    print(f"wrote {args.out}")
    if not compaction["within_bound"]:
        print("FAIL: post-compaction WAL disk exceeds "
              f"{compaction['bound_bytes']} bytes")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
