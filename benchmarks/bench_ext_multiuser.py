"""Extension — multi-user throughput (toward planned extension #1).

XBench 1.0 is single-user; the paper's roadmap includes multi-user /
distributed support (the dimension XMach-1 covers).  This bench drives N
client streams of the experiment-query mix against each engine and
reports aggregate throughput — the paper's Xqps-style metric on one
machine.
"""

from __future__ import annotations

import pytest

from repro.core.indexes import indexes_for
from repro.core.multiuser import run_multi_user

from ._support import ENGINES_BY_KEY

ENGINE_KEYS = ("native", "xcolumn", "xcollection", "sqlserver")
STREAM_COUNTS = (1, 4)


@pytest.mark.parametrize("streams", STREAM_COUNTS,
                         ids=[f"{n}streams" for n in STREAM_COUNTS])
@pytest.mark.parametrize("engine_key", ENGINE_KEYS)
def test_multiuser_throughput(benchmark, xbench, loaded_engines,
                              engine_key, streams):
    engine, scenario = loaded_engines(engine_key, "dcmd", "normal")

    def run():
        return run_multi_user(engine, "dcmd", scenario.units,
                              streams=streams, queries_per_stream=10,
                              mode="interleaved")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_queries == streams * 10
    print(f"\n{engine_key}/{streams} streams: "
          f"{result.throughput_qps:.0f} q/s")
