"""Shared helper for the per-query table benchmarks (Tables 5-9)."""

from __future__ import annotations

from repro.workload import bind_params


def run_query_cell(benchmark, loaded_engines, cell, qid: str):
    """Benchmark one (engine, class, scale) cell of a query table."""
    engine_key, class_key, scale = cell
    engine, scenario = loaded_engines(engine_key, class_key, scale)
    params = bind_params(qid, class_key, scenario.units)
    return benchmark(engine.execute, qid, params)
