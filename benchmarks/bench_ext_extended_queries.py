"""Extension — the workload beyond the paper's experiment subset.

The paper times only Q5/Q8/Q12/Q14/Q17; the remaining query types were
defined but not reported.  This bench times the extended set that now
has relational translations (exact match with full reconstruction,
aggregation, multiple-unknown paths, window sorting, whole-document
retrieval, value joins and casting) across every engine that supports
each (query, class) pair, at the normal scale.
"""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedConfiguration, UnsupportedQuery
from repro.workload import bind_params

from ._support import ENGINES_BY_KEY

EXTENDED = [("Q1", "dcsd"), ("Q1", "dcmd"), ("Q2", "tcmd"),
            ("Q3", "dcmd"), ("Q9", "dcmd"), ("Q10", "dcmd"),
            ("Q16", "dcmd"), ("Q19", "dcmd"), ("Q20", "dcsd")]
ENGINE_KEYS = ("native", "xcolumn", "xcollection", "sqlserver")


def _cells():
    cells = []
    for qid, class_key in EXTENDED:
        for engine_key in ENGINE_KEYS:
            if engine_key == "xcolumn" and class_key in ("dcsd",
                                                         "tcsd"):
                continue
            cells.append((engine_key, class_key, qid))
    return cells


CELLS = _cells()


@pytest.mark.parametrize("cell", CELLS,
                         ids=[f"{q}-{e}-{c}" for e, c, q in CELLS])
def test_extended_query(benchmark, loaded_engines, cell):
    engine_key, class_key, qid = cell
    try:
        engine, scenario = loaded_engines(engine_key, class_key,
                                          "normal")
    except UnsupportedConfiguration as exc:
        pytest.skip(str(exc))
    params = bind_params(qid, class_key, scenario.units)
    try:
        benchmark(engine.execute, qid, params)
    except UnsupportedQuery:
        pytest.skip(f"{engine_key} has no plan for {qid}/{class_key}")
