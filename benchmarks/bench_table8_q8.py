"""Table 8 — query Q8: path expression with one unknown element. For the relational engines the unknown step disappears during mapping ('no real path expressions are actually involved'); the native engine evaluates the wildcard step."""

from __future__ import annotations

import pytest

from ._query_cells import run_query_cell
from ._support import cell_id, supported_cells

QID = "Q8"
CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_q8(benchmark, loaded_engines, cell):
    run_query_cell(benchmark, loaded_engines, cell, QID)
