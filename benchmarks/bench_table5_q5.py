"""Table 5 — query Q5: ordered access (absolute): return the first order line of order X; the paper's Table 5. Shredded engines answer via indexed key lookups, Xcolumn via dxx_seqno side-table rows, the native engine by evaluating XQuery (iterating the whole collection on multi-document classes - its measured weakness)."""

from __future__ import annotations

import pytest

from ._query_cells import run_query_cell
from ._support import cell_id, supported_cells

QID = "Q5"
CELLS = supported_cells()


@pytest.mark.parametrize("cell", CELLS, ids=[cell_id(c) for c in CELLS])
def test_q5(benchmark, loaded_engines, cell):
    run_query_cell(benchmark, loaded_engines, cell, QID)
