"""Sharded multi-process execution service (``repro.core.shard``).

XBench 1.0 is "a single machine benchmark"; the paper names distributed
operation as a planned extension, and our own multiuser harness admits
that the GIL serializes all CPU work.  This module is the first layer
that scales with cores: a :class:`ShardedEngine` partitions a
multi-document corpus across N worker *processes* by document-name hash,
each worker owning a fully loaded engine instance built through the
registry factory (:func:`repro.engines.create`), with scatter-gather
``bulk_load`` / ``execute`` / update operations over a pipe-based RPC
protocol.

Correctness model
-----------------

The single-process native engine is the oracle, and its inter-document
order is parse order (:class:`~repro.xml.nodes.Document` serials).  The
service reproduces that order exactly:

* every main document receives a **global ordinal** at partition time;
* *document-selection* queries (the default) are evaluated **per
  document** on each shard (:meth:`Engine.execute_per_document`) and
  reassembled in ordinal order — byte-identical to a whole-collection
  scan;
* queries with explicit merge metadata on the workload
  (:meth:`WorkloadQuery.merge_for`) use cheaper plans: ``point`` queries
  (unique document id) run whole-shard and concatenate, ``sorted``
  queries re-sort per-document results by their order-by key,
  ``regroup`` queries re-aggregate per-shard ``<group>`` fragments, and
  ``route`` queries go straight to the shard owning the named document;
* reference documents named by
  :attr:`DatabaseClass.replicated_documents` (DC/MD's flat tables) are
  replicated to every shard so cross-document joins (Q19) still resolve;
* single-document classes route everything to one *home* shard.

Robustness
----------

Every RPC has a per-call timeout enforced with a poll loop that also
watches worker liveness, so a killed worker is detected in ~50 ms rather
than hanging.  A dead or timed-out worker is respawned and its state
replayed — bulk load, index state and the per-shard journal of update
operations — and the call retried under a
:class:`~repro.faults.policy.RetryPolicy` (exponential backoff with
deterministic jitter and a cumulative retry budget); exhausted retries
raise :class:`~repro.errors.ShardError`.  Each shard has a
:class:`~repro.faults.policy.CircuitBreaker`: K consecutive
infrastructure failures trip it, further calls fail fast with
:class:`~repro.errors.CircuitOpen` until a cooldown probe succeeds.
With ``degraded="partial"`` the fan-out merges answer from the healthy
shards and annotate the query with a
:class:`~repro.errors.PartialResult` incident record instead of failing
it.  Incidents are recorded on :attr:`ShardedEngine.incidents`
(surfaced in benchmark reports) and counted on the ``shard.respawns`` /
``shard.retries`` / ``shard.breaker_trips`` / ``shard.partial_results``
obs counters.  Application-level errors raised inside a worker (e.g.
``UnsupportedQuery``) are re-raised under their own exception type and
never retried.

Deadlines travel with the RPC: when a
:class:`~repro.faults.deadline.Deadline` is active on the calling
thread, its remaining budget is sent as ``("deadline", remaining,
message)`` and installed around the worker-side op, so the worker's
evaluator cancels cooperatively (:class:`~repro.errors.QueryTimeout`)
while the parent bounds its pipe wait by the same remainder plus a
grace period (the typed reply should win the race against the
infrastructure timeout).

Transport
---------

Bulk-load corpora ship through ``multiprocessing.shared_memory`` by
default (``transport="shm"``): the parent packs every payload — XML
text, or pre-encoded :class:`~repro.xml.binary.EncodedDocument` node
arrays when loading from a snapshot — into one segment, and the load
RPC carries only ``(segment name, offset, length)`` triples, so the
pipe cost of scatter is independent of corpus size.  Workers attach
read-only (unregistering from their resource tracker so a crash can
never unlink the parent's segment — :mod:`repro.core.shm`), copy their
slices out, and detach; a respawned worker re-attaches the same
segment instead of re-shipping.  The parent owns the segment via a
reference count and unlinks it on the next ``bulk_load`` or
``close()``.  ``transport="pipe"`` restores inline payloads (and is
the automatic fallback when no shared memory is available).  Documents
inserted after load ride inline as ``extras`` in the respawn replay.
:attr:`ShardedEngine.last_load_report` records the transport used,
parent-side encode/copy time, segment size and per-worker
attach/load phase timings; the ``shard.pipe_bytes`` /
``shard.shm_segments`` / ``shard.shm_bytes`` obs counters quantify
what actually crossed each medium.

Replication
-----------

``replicas=N`` gives every shard ``N`` read replicas, organised as
*rows*: replica row ``r`` holds one replica worker per shard, so a
whole read fan-out can run against one row without touching the
primaries.  Primaries acknowledge writes as before; each acknowledged
write appends a **sequence-numbered** entry to the per-shard journal
(``_committed_seq`` is the global write sequence), and entries ship to
replicas over the same pipe RPC as a ``("replay", upto_seq, entries)``
batch — synchronously after each write by default, or batched by a
background thread every ``ship_interval`` seconds.  Replicas suppress
duplicate sequences and report their ``applied_seq`` back, so lag is
observable (``shard.replica_lag`` gauge, :meth:`replication_state`).

Read-only queries route by consistency tier
(:mod:`repro.api`): ``strong`` pins to the primaries,
``read_your_writes`` needs a row that has applied the session's last
write, ``bounded_staleness`` tolerates a bounded write lag and
``eventual`` takes any live row — among eligible rows the one with the
fewest outstanding reads wins, and with no eligible row the read falls
back to the primaries (``shard.consistency_fallbacks``).  A replica
failure mid-read marks the row deficient (repaired by respawn on the
next lease or flush) and the read retries on the primaries.

When a *primary* dies and replicas exist, recovery prefers **failover**
over respawn-and-replay: the freshest replica of that shard is caught
up from the journal, promoted in place (re-tagged to the primary
namespace), and its old row slot becomes a deficit to backfill —
``shard.failovers`` counts these, and the shard's breaker closes on
the successful promotion instead of burning its retry budget.

Fault-injection sites (:mod:`repro.faults.plan`, free when no plan is
installed): ``shard.rpc`` (worker side, per op — including ``replay``,
which the replica-lag chaos scenario delays), ``shard.pipe`` (parent
side, per send) and ``shard.result`` (worker-side result payload).
The WAL adds ``wal.append`` and ``wal.fsync`` (:mod:`repro.core.wal`).

Durability
----------

``data_dir=`` makes acknowledged writes survive the process: every
write appends to a per-shard :class:`~repro.core.wal.WriteAheadLog`
(fsync policy ``always|batch|off``) before the call returns, and
:meth:`ShardedEngine.checkpoint` — manual, or periodic via
``checkpoint_interval`` — exports every shard's *current* engine state
through the new ``snapshot`` worker op into per-shard RXSN files,
records the cut in a :class:`~repro.core.checkpoint.CheckpointManager`
manifest, compacts WAL segments below the oldest retained checkpoint
and truncates the in-memory journal to the uncompacted suffix
(``shard.journal_bytes`` gauges the bound).  A checkpoint also
refreshes the parent's ``mains`` with the exported payloads, so primary
respawns and replica rebuilds load checkpoint state + journal suffix
instead of original text + full history — replicas that fall below the
journal floor (their entries were compacted) are rebuilt the same way
(``shard.snapshot_catchups``), which is exactly snapshot-based catch-up
after a long partition.  ``ShardedEngine(recover_dir=...)`` cold-starts
from the newest *valid* checkpoint (damaged ones fall back to the
previous) plus WAL replay to the exact committed sequence; corrupt WAL
records are skipped with a typed
:class:`~repro.errors.WalCorruption` incident, never a crash.
"""

from __future__ import annotations

import builtins
import gc
import itertools
import multiprocessing
import pickle
import threading
import time
import zlib
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .. import api as _api
from .. import errors as _errors_module
from ..databases import CLASSES_BY_KEY
from ..databases.base import DatabaseClass
from ..engines import create
from ..engines.base import Engine, LoadStats
from ..errors import (
    CircuitOpen,
    FaultInjected,
    QueryTimeout,
    RecoveryError,
    ShardError,
    UnsupportedOperation,
)
from ..faults import deadline as _deadline
from ..faults import plan as _faults
from ..faults.policy import CircuitBreaker, RetryPolicy
from ..obs import recorder as _obs
from ..obs import trace as _trace
from ..obs.export import trace_records as _trace_records
from ..workload.queries import QUERIES_BY_ID
from ..xml.binary import EncodedDocument, encode_document
from ..xml.nodes import Text
from ..xml.parser import parse_document
from ..xml.serializer import serialize
from . import shm as _shm
from .checkpoint import CheckpointManager
from .corpus_io import write_snapshot_payloads
from .wal import DEFAULT_SEGMENT_BYTES, FSYNC_POLICIES, WriteAheadLog

#: Default per-RPC timeout (seconds).  Bulk loads at large scales are
#: the slowest calls; queries finish orders of magnitude faster.
DEFAULT_TIMEOUT = 120.0

#: extra pipe-wait past a propagated deadline, so a worker's typed
#: QueryTimeout reply beats the parent's infrastructure timeout.
DEADLINE_GRACE = 0.25


def shard_of(name: str, shards: int) -> int:
    """The shard owning document ``name``.

    Uses ``crc32`` rather than the builtin ``hash`` because the latter
    is salted per process — partitioning must agree across runs (and
    across parent/worker processes).
    """
    return zlib.crc32(name.encode("utf-8")) % shards


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _shard_worker(conn, engine_key: str, shard_index: int = 0,
                  generation: int = 0, tag: str | None = None) -> None:
    """Worker process main loop: one engine, one duplex pipe.

    Replies ``("ok", result)``, ``("okt", result, span_records)`` for
    traced calls, or ``("error", type_name, message)``; the parent
    reconstructs exceptions from :mod:`repro.errors` (or builtins) by
    type name.  Messages may arrive wrapped as ``("trace", ctx,
    inner)`` and/or ``("deadline", remaining, inner)`` (trace
    outermost): the remaining budget is installed as a
    :class:`~repro.faults.deadline.Deadline` around the op so
    evaluation cancels cooperatively, and a trace context makes the op
    record a ``shard.worker`` span (plus any engine spans) into a
    per-call collector whose exported records ride back on the reply —
    workers write no files, so span export stays atomic at the parent.
    """
    # The worker is forked from the parent, which may have an obs
    # recorder installed; observations recorded here would die with the
    # process, so drop the inherited recorder and make the hooks no-op.
    _obs.uninstall()
    # Span gids exported from this process are namespaced by (shard,
    # respawn generation) — replicas carry a row marker too
    # ("w<shard>r<row>.g<gen>") — so a respawned worker can never
    # collide with spans its predecessor already shipped for the same
    # trace.  A promoted replica is re-tagged via the "promote" op.
    tag = tag or f"w{shard_index}.g{generation}"
    _trace.set_process_tag(tag)
    # The fork also inherits any installed FaultPlan.  Re-key the
    # decision namespace per (shard, respawn generation): decisions stay
    # deterministic, but a respawned worker's retried call draws a fresh
    # decision instead of replaying the crash that killed its
    # predecessor.
    _faults.set_namespace(tag)
    # Under the fork start method the worker inherits the parent's
    # entire heap copy-on-write.  The first collections in the child
    # would traverse the gc headers of every inherited object, faulting
    # those shared pages into private copies — a large, pure overhead
    # tax on the first bulk load.  Freeze the inherited heap into the
    # permanent generation (an O(1) list splice) so the collector never
    # traverses it; everything this worker allocates is still collected
    # normally.
    gc.freeze()
    # One span-id counter for the whole worker lifetime: each traced
    # call gets a fresh collector, so without this the ids (and hence
    # the exported gids) would restart at 1 on every call and collide.
    span_ids = itertools.count(1)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        # Every request is (call_id, payload); the id is echoed in the
        # reply so the parent can discard replies to calls it abandoned
        # (e.g. a deadline fired while the worker was still computing).
        call_id, message = message
        trace_ctx = None
        if message[0] == "trace":
            __, trace_wire, message = message
            trace_ctx = _trace.from_wire(trace_wire)
        deadline = None
        if message[0] == "deadline":
            __, remaining, message = message
            deadline = _deadline.Deadline(remaining)
        op = message[0]
        try:
            with _deadline.deadline_scope(deadline):
                if trace_ctx is not None:
                    collector = _obs.Recorder(name="shard-worker")
                    collector.tracer._ids = span_ids
                    with _obs.observing(collector), \
                            _trace.trace_scope(trace_ctx):
                        with _obs.span("shard.worker", op=op,
                                       shard=shard_index):
                            result = _run_worker_op(
                                engine_key, shard_index, op, message,
                                deadline)
                    reply = ("okt", result, _trace_records(collector))
                else:
                    result = _run_worker_op(engine_key, shard_index,
                                            op, message, deadline)
                    reply = ("ok", result)
        except _WorkerStop:
            try:
                conn.send((call_id, ("ok", None)))
            except (OSError, ValueError):
                pass
            break
        except Exception as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send((call_id,
                           ("error", type(exc).__name__, str(exc))))
            except (OSError, ValueError):
                break
            continue
        try:
            conn.send((call_id, reply))
        except (OSError, ValueError):
            break
    conn.close()


class _WorkerStop(Exception):
    """Internal: the worker received ``stop`` and should exit."""


def _run_worker_op(engine_key: str, shard_index: int, op: str,
                   message: tuple, deadline):
    """Dispatch one worker op and return its result.

    Split out of the loop so the whole op — injection site, deadline
    check and dispatch — sits under one ``deadline_scope`` / error
    handler (and, when traced, inside the ``shard.worker`` span, which
    must close before the reply is serialized so its duration rides
    along).  ``stop`` raises :class:`_WorkerStop`; the loop acks it.
    """
    global _worker_engine, _worker_applied_seq
    engine = _worker_engine
    _faults.inject("shard.rpc", op=op, shard=shard_index)
    if deadline is not None:
        # A delay fault may already have consumed the budget; fail
        # typed before doing any work.
        deadline.check("rpc dispatch")
    if op == "load":
        engine = _worker_engine = create(engine_key)
        _worker_applied_seq = 0
        db_class = CLASSES_BY_KEY[message[1]]
        if isinstance(message[2], dict):
            texts, phases = _read_segment_corpus(message[2])
        else:
            __, __class_key, mains, replicated = message
            texts = [(name, text) for __ord, name, text in mains]
            texts.extend(replicated)
            phases = None
        stats = engine.timed_load(db_class, texts)
        result = {"documents": stats.documents,
                  "bytes": stats.bytes, "rows": stats.rows,
                  "seconds": stats.seconds}
        if phases is not None:
            phases["load_seconds"] = stats.seconds
            result["phases"] = phases
    elif op == "indexes":
        engine.create_indexes(list(message[1]))
        result = None
    elif op == "drop_indexes":
        engine.drop_indexes()
        result = None
    elif op == "execute":
        __, qid, params = message
        result = engine.execute(qid, dict(params))
    elif op == "execute_per_doc":
        __, qid, params, names = message
        try:
            parts = engine.execute_per_document(
                qid, dict(params), list(names))
            result = {"mode": "per_doc", "parts": parts}
        except UnsupportedOperation:
            result = {"mode": "whole",
                      "values": engine.execute(qid, dict(params))}
    elif op == "adhoc":
        __, text, params = message
        result = engine.adhoc(text, dict(params)).values
    elif op == "insert":
        __, name, text = message
        engine.insert_document(name, text)
        result = None
    elif op == "delete":
        engine.delete_document(message[1])
        result = None
    elif op == "update_value":
        __, id_path, id_value, target_tag, new_value = message
        result = engine.update_value(id_path, id_value,
                                     target_tag, new_value)
    elif op == "replay":
        # Journal shipping: apply sequence-numbered write entries,
        # suppressing any sequence already applied (duplicate batches
        # are harmless), then advance to ``upto_seq`` — an empty batch
        # is how a freshly-loaded replica gets stamped as caught up.
        __, upto_seq, entries = message
        applied = _worker_applied_seq
        for seq, entry in entries:
            if seq <= applied:
                continue
            _apply_journal_op(engine, entry)
            applied = seq
        _worker_applied_seq = max(applied, int(upto_seq))
        result = _worker_applied_seq
    elif op == "snapshot":
        # Checkpoint: export the engine's *current* documents (the
        # parent's ``mains`` text is stale the moment an update_value
        # lands worker-side) as RXB1 payloads.  The parent assembles
        # them into per-shard RXSN snapshot files and refreshes its
        # own state from the same payloads.
        result = [(document.name, encode_document(document))
                  for document in engine.export_documents()]
    elif op == "promote":
        # Failover: this replica is now shard ``shard_index``'s
        # primary.  Re-tag span gids and the fault namespace so spans
        # and chaos decisions attribute to its new role.
        _trace.set_process_tag(message[1])
        _faults.set_namespace(message[1])
        result = None
    elif op == "ping":
        result = "pong"
    elif op == "stop":
        raise _WorkerStop
    else:
        raise ShardError(f"unknown worker op {op!r}")
    return _faults.corrupt_value("shard.result", result, op=op,
                                 shard=shard_index)


def _payload_from(buf, name: str, kind: str, offset: int, length: int):
    """One load payload copied out of a shared-memory segment.

    Kind ``"b"`` is an RXB1 node array (stays encoded; the engine's
    ``materialize`` decodes it without parsing), ``"t"`` is UTF-8 XML
    text.  Both copy, so the segment can be detached immediately.
    """
    raw = bytes(buf[offset:offset + length])
    if kind == "b":
        return EncodedDocument(name, raw)
    return raw.decode("utf-8")


def _read_segment_corpus(spec: dict) -> tuple[list, dict]:
    """Materialize a worker's corpus from the shm load ``spec``.

    Attaches the named segment, copies this shard's slices out and
    detaches *before* the timed load, so a worker never holds the
    parent's segment open past the RPC that shipped it.  Returns the
    ``(name, payload)`` list (mains in ordinal order, then ``extras``
    inserted after the original load, then replicated documents) plus
    an ``attach_seconds`` phase timing.
    """
    start = time.perf_counter()
    segment = _shm.attach_segment(spec["segment"])
    try:
        buf = segment.buf
        mains = [(ordinal, name,
                  _payload_from(buf, name, kind, offset, length))
                 for ordinal, name, kind, offset, length
                 in spec["entries"]]
        replicated = [(name,
                       _payload_from(buf, name, kind, offset, length))
                      for name, kind, offset, length
                      in spec["replicated"]]
    finally:
        _shm.detach_segment(segment)
    mains.extend(spec.get("extras", ()))
    mains.sort(key=lambda entry: entry[0])
    texts = [(name, payload) for __ord, name, payload in mains]
    texts.extend(replicated)
    return texts, {"attach_seconds": time.perf_counter() - start}


def _apply_journal_op(engine: Engine, entry: tuple) -> None:
    """Apply one shipped journal entry to a replica's engine."""
    op = entry[0]
    if op == "insert":
        engine.insert_document(entry[1], entry[2])
    elif op == "delete":
        engine.delete_document(entry[1])
    elif op == "update_value":
        engine.update_value(entry[1], entry[2], entry[3], entry[4])
    else:
        raise ShardError(f"unknown journal op {op!r}")


#: the worker process's engine instance (one worker per process).
_worker_engine: Engine | None = None

#: highest journal sequence this worker has applied (replicas only;
#: reset on every load, advanced by ``replay`` batches).
_worker_applied_seq: int = 0


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Reconstruct a worker-side exception by type name."""
    for namespace in (_errors_module, builtins):
        cls = getattr(namespace, type_name, None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                return cls(message)
            except TypeError:
                break
    return ShardError(f"worker raised {type_name}: {message}")


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _WorkerFailure(Exception):
    """Internal: an RPC failed at the infrastructure level (worker dead,
    pipe broken, or call timed out) — eligible for respawn + retry."""


@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    #: RPC sequence counter; each call's id is echoed in its reply so
    #: replies to abandoned calls are recognisably stale.
    calls: int = 0
    #: highest journal sequence this worker has acknowledged applying
    #: (replicas only; primaries are by definition at the committed
    #: sequence).  Parent-side mirror of the worker's own counter.
    applied_seq: int = 0

    def next_call_id(self) -> int:
        self.calls += 1
        return self.calls


@dataclass
class _ShardState:
    """Everything needed to (re)build one shard's engine."""

    #: main documents owned by this shard: (ordinal, name, payload) —
    #: XML text at load time, refreshed to RXB1
    #: :class:`~repro.xml.binary.EncodedDocument` payloads at each
    #: checkpoint so respawns load checkpoint state, not original text.
    mains: list[tuple[int, str, str]] = field(default_factory=list)
    #: acknowledged write operations since the last checkpoint as
    #: ``(seq, op)`` entries — the replication log.  Shipped
    #: incrementally to replicas; primary respawns replay only the
    #: ``update_value`` entries (``mains`` already reflects structural
    #: inserts/deletes).
    journal: list[tuple[int, tuple]] = field(default_factory=list)
    #: highest sequence *truncated out of* the journal (the last
    #: checkpoint's cut).  The journal holds exactly the entries with
    #: ``seq > journal_floor``; a replica whose applied sequence fell
    #: below the floor cannot catch up incrementally and is rebuilt
    #: from the checkpoint-refreshed ``mains`` instead.
    journal_floor: int = 0


class ShardedEngine(Engine):
    """Engine facade that scatter-gathers over N worker processes.

    Satisfies the full :class:`Engine` contract — ``timed_load`` /
    ``timed_execute`` / updates / ``adhoc`` / context manager — so the
    benchmark driver, the multiuser harness and the CLI treat it exactly
    like a local engine.  Public operations are serialized by an RLock
    (concurrent streams queue at the service); each operation still fans
    out across all workers in parallel.
    """

    #: accepted values for the ``degraded`` policy knob.
    DEGRADED_MODES = ("fail", "partial")
    #: accepted values for the bulk-load ``transport`` knob.
    TRANSPORTS = ("shm", "pipe")

    def __init__(self, engine_key: str = "native", shards: int = 2,
                 timeout: float | None = DEFAULT_TIMEOUT,
                 retries: int = 1, *, degraded: str = "fail",
                 seed: int = 0, backoff_base: float = 0.05,
                 retry_budget: float = 30.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 5.0,
                 transport: str = "shm",
                 replicas: int = 0,
                 ship_interval: float = 0.0,
                 default_consistency="strong",
                 service_floor: float = 0.0,
                 data_dir: str | Path | None = None,
                 recover_dir: str | Path | None = None,
                 fsync: str = "batch",
                 wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 checkpoint_interval: float = 0.0) -> None:
        super().__init__()
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        if replicas < 0:
            raise ShardError(f"replicas must be >= 0, got {replicas}")
        if fsync not in FSYNC_POLICIES:
            raise ShardError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if recover_dir is not None:
            if data_dir is not None \
                    and Path(data_dir) != Path(recover_dir):
                raise ShardError(
                    "pass either data_dir or recover_dir, not both")
            data_dir = recover_dir
        if degraded not in self.DEGRADED_MODES:
            raise ShardError(
                f"degraded must be one of {self.DEGRADED_MODES}, "
                f"got {degraded!r}")
        if transport not in self.TRANSPORTS:
            raise ShardError(
                f"transport must be one of {self.TRANSPORTS}, "
                f"got {transport!r}")
        inner = create(engine_key)   # metadata + check_supported proxy
        self._inner = inner
        self.engine_key = engine_key
        self.shards = shards
        self.timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        self.retries = retries
        self.degraded = degraded
        self.key = engine_key
        self.replicas = replicas
        self.ship_interval = ship_interval
        self._default_consistency = _api.Consistency.parse(
            default_consistency)
        #: minimum wall time a query holds its lease (primary lock or
        #: replica row lock) — models a per-row service-time floor so
        #: read scale-out is measurable on any core count.
        self.service_floor = service_floor
        suffix = f" +{replicas}r" if replicas else ""
        self.row_label = f"{inner.row_label} x{shards}{suffix}"
        self.description = (f"{inner.description} — sharded across "
                            f"{shards} worker processes")
        #: infrastructure incidents (respawns, retries) for the report.
        self.incidents: list[str] = []
        #: partial-result records: {"qid", "failed_shards", "reason"}.
        self.partials: list[dict] = []
        self._retry = RetryPolicy(retries=retries, base=backoff_base,
                                  budget_seconds=retry_budget,
                                  seed=seed)
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._breakers = self._new_breakers()
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[_Worker | None] = [None] * shards
        self._generations = [0] * shards
        self._states = [_ShardState() for __ in range(shards)]
        self._replicated: list[tuple[str, str]] = []
        self._ordinals: dict[str, int] = {}
        self._next_ordinal = 0
        self._index_paths: list[str] = []
        self._class_key: str | None = None
        self._home: int | None = None   # single-document classes
        #: perf_counter of the first reply of the current execute()
        #: fan-out — the raw material of time-to-first-result.
        self._first_reply_ts: float | None = None
        #: how bulk-load corpora ship to workers ("shm" or "pipe").
        self.transport = transport
        self._segment: _shm.OwnedSegment | None = None
        self._segment_entries: list[dict] = [dict()
                                             for __ in range(shards)]
        self._replicated_entries: list[tuple] = []
        #: transport + phase timings of the most recent bulk load
        #: (None before the first load).
        self.last_load_report: dict | None = None
        # -- replication state --
        #: global write sequence: bumped once per acknowledged write.
        self._committed_seq = 0
        #: replica row r (1-based) lives at _replica_rows[r - 1]: one
        #: worker per shard, or None where the slot is dead.
        self._replica_rows: list[list[_Worker | None]] = [
            [None] * shards for __ in range(replicas)]
        self._replica_generations = [[0] * shards
                                     for __ in range(replicas)]
        #: one lock per replica row; a replica read leases the whole
        #: row so its pipes never interleave with another reader.
        #: Lock order is always self._lock -> row locks ascending.
        self._row_locks = [threading.RLock() for __ in range(replicas)]
        #: in-flight reads per row (index 0 = primaries) — the
        #: least-outstanding routing signal.  Plain int bumps; races
        #: only skew load estimates, never correctness.
        self._row_outstanding = [0] * (replicas + 1)
        #: (row, shard) slots that need a respawn (died mid-read or
        #: mid-ship); repaired lazily at the next lease or flush.
        self._replica_deficits: set[tuple[int, int]] = set()
        self._replicas_loaded = False
        #: completed primary->replica promotions (see _try_failover).
        self.failovers = 0
        self._ship_thread: threading.Thread | None = None
        self._ship_stop = threading.Event()
        # -- durability state --
        self._data_dir = Path(data_dir) if data_dir is not None else None
        self._fsync = fsync
        self._wal_segment_bytes = wal_segment_bytes
        self.checkpoint_interval = checkpoint_interval
        self._wal: list[WriteAheadLog] | None = None
        self._checkpoint_manager = (
            CheckpointManager(self._data_dir)
            if self._data_dir is not None else None)
        self._checkpoint_thread: threading.Thread | None = None
        self._checkpoint_stop = threading.Event()
        #: the last checkpoint's committed sequence (0 = none yet).
        self.last_checkpoint_seq = 0
        #: what the last :meth:`recover` rebuilt (None before one).
        self.last_recovery_report: dict | None = None
        #: set while close() tears the engine down, so a replication
        #: flush or background tick racing shutdown becomes a no-op
        #: instead of touching a half-released engine.
        self._closing = False
        if recover_dir is not None:
            self.recover()

    @staticmethod
    def can_recover(data_dir: str | Path) -> bool:
        """Whether ``data_dir`` holds a checkpoint manifest to
        cold-start from (the server's recover-vs-fresh-load fork)."""
        return CheckpointManager.exists(data_dir)

    def _new_breakers(self) -> list[CircuitBreaker]:
        return [CircuitBreaker(threshold=self._breaker_threshold,
                               cooldown=self._breaker_cooldown,
                               name=f"shard {index} breaker")
                for index in range(self.shards)]

    # -- configuration gating ------------------------------------------------

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        self._inner.check_supported(db_class, scale_name)

    # -- live telemetry ------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (for resource sampling)."""
        pids = [worker.process.pid for worker in self._workers
                if worker is not None and worker.process.is_alive()]
        for row_workers in self._replica_rows:
            pids.extend(worker.process.pid for worker in row_workers
                        if worker is not None
                        and worker.process.is_alive())
        return pids

    @property
    def committed_seq(self) -> int:
        """The global write sequence (last acknowledged write)."""
        return self._committed_seq

    def replication_state(self) -> dict:
        """Replica-row snapshot: liveness, applied sequence and lag."""
        with self._lock:
            committed = self._committed_seq
            rows = []
            for row in range(1, self.replicas + 1):
                workers = self._replica_rows[row - 1]
                alive = all(worker is not None
                            and worker.process.is_alive()
                            for worker in workers)
                applied = min((worker.applied_seq for worker in workers
                               if worker is not None), default=0)
                rows.append({"row": row, "alive": alive,
                             "applied_seq": applied,
                             "lag": max(0, committed - applied),
                             "outstanding": self._row_outstanding[row]})
            return {"replicas": self.replicas,
                    "committed_seq": committed,
                    "ship_interval": self.ship_interval,
                    "failovers": self.failovers,
                    "rows": rows}

    def breaker_states(self) -> list[dict]:
        """Per-shard circuit-breaker snapshot for the stats surface."""
        return [{"shard": index, "state": breaker.state,
                 "consecutive_failures": breaker.consecutive_failures,
                 "trips": breaker.trips}
                for index, breaker in enumerate(self._breakers)]

    # -- partitioning --------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard owning main document ``name``."""
        if self._home is not None:
            return self._home
        return shard_of(name, self.shards)

    def _partition(self, db_class: DatabaseClass, texts) -> None:
        replicated_names = set(db_class.replicated_documents)
        for name, text in texts:
            if name in replicated_names:
                self._replicated.append((name, text))
                continue
            if db_class.single_document and self._home is None:
                # All of a single-document class lives on one shard.
                self._home = shard_of(name, self.shards)
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            self._states[self.shard_of(name)].mains.append(
                (ordinal, name, text))

    # -- lifecycle -----------------------------------------------------------

    @contextmanager
    def _exclusive(self):
        """Global lock plus every row lock, in ascending order.

        Every state mutation (load, indexes, writes, shipping, close)
        runs under this, so a reader holding only its row lock sees
        stable corpus state for the duration of its lease."""
        with ExitStack() as stack:
            stack.enter_context(self._lock)
            for lock in self._row_locks:
                stack.enter_context(lock)
            yield

    def bulk_load(self, db_class: DatabaseClass, texts) -> LoadStats:
        # Background threads are joined before the locks are taken:
        # they acquire the same locks with a bounded wait, so joining
        # under _exclusive() would make shutdown latency worst-case,
        # and a tick racing the reload must not see torn state.
        self._halt_background()
        with self._exclusive():
            self._closing = False
            self._reset_state()
            self._class_key = db_class.key
            self._partition(db_class, texts)
            transport = self.transport
            encode_seconds = 0.0
            if transport == "shm":
                try:
                    encode_seconds = self._build_segment()
                except (OSError, ValueError) as exc:
                    self.incidents.append(
                        f"shared memory unavailable ({exc}); "
                        "falling back to pipe transport")
                    self._release_segment()
                    transport = "pipe"
            try:
                with _obs.span("shard.bulk_load", shards=self.shards,
                               engine=self.engine_key,
                               transport=transport):
                    for index in range(self.shards):
                        self._spawn(index)
                    replies = self._scatter(range(self.shards),
                                            self._load_message)
                if self.replicas:
                    self._load_replica_rows()
            except BaseException:
                self._release_segment()
                raise
            if self._data_dir is not None:
                # Durable mode: open the per-shard logs and establish
                # the load-time checkpoint — the baseline every
                # recovery starts from (WAL replay alone cannot
                # recreate the bulk-loaded corpus).
                self._open_wal()
                self._checkpoint_locked()
                self._start_checkpoint_thread()
            self.last_load_report = {
                "transport": transport,
                "encode_seconds": encode_seconds,
                "segment_bytes": (self._segment.size
                                  if self._segment is not None else 0),
                "workers": [reply.get("phases") for reply in replies],
            }
            documents = self._next_ordinal + len(self._replicated)
            loaded_bytes = (sum(len(t) for __, __n, t in
                                self._iter_mains())
                            + sum(len(t) for __, t in self._replicated))
            return LoadStats(
                documents=documents, bytes=loaded_bytes,
                rows=sum(reply["rows"] for reply in replies),
                notes=[f"sharded across {self.shards} workers "
                       f"({self.engine_key})"])

    def _iter_mains(self):
        for state in self._states:
            yield from state.mains

    def _build_segment(self) -> float:
        """Pack every partitioned payload into one shm segment.

        Per document the segment stores either UTF-8 XML text (kind
        ``"t"`` — workers still parse, but in parallel) or an RXB1
        node array (kind ``"b"``, snapshot-fed corpora — workers skip
        parsing entirely).  ``_segment_entries[shard][name]`` maps to
        ``(kind, offset, length)``; replicated documents are stored
        once and referenced by every shard's load message.  Returns
        the parent-side encode+copy wall time.
        """
        start = time.perf_counter()
        blobs: list[bytes] = []
        offset = 0
        entries: list[dict] = [dict() for __ in range(self.shards)]

        def place(payload) -> tuple[str, int, int]:
            nonlocal offset
            if isinstance(payload, EncodedDocument):
                kind, data = "b", payload.tobytes()
            else:
                kind, data = "t", payload.encode("utf-8")
            blobs.append(data)
            entry = (kind, offset, len(data))
            offset += len(data)
            return entry

        for index, state in enumerate(self._states):
            for __ordinal, name, payload in state.mains:
                entries[index][name] = place(payload)
        replicated = [(name,) + place(payload)
                      for name, payload in self._replicated]
        segment = _shm.OwnedSegment(max(1, offset))
        cursor = 0
        buf = segment.buf
        for data in blobs:
            buf[cursor:cursor + len(data)] = data
            cursor += len(data)
        self._segment = segment
        self._segment_entries = entries
        self._replicated_entries = replicated
        _obs.count("shard.shm_segments")
        _obs.count("shard.shm_bytes", offset)
        return time.perf_counter() - start

    def _load_message(self, index: int) -> tuple:
        mains = sorted(self._states[index].mains,
                       key=lambda entry: entry[0])
        if self._segment is None:
            return ("load", self._class_key, mains,
                    list(self._replicated))
        placed = self._segment_entries[index]
        entries = []
        extras = []
        for ordinal, name, payload in mains:
            entry = placed.get(name)
            if entry is not None:
                entries.append((ordinal, name) + entry)
            else:
                # Inserted after the segment was built — ships inline
                # (and replays inline on respawn).
                extras.append((ordinal, name, payload))
        return ("load", self._class_key,
                {"segment": self._segment.name,
                 "entries": entries,
                 "extras": extras,
                 "replicated": list(self._replicated_entries)})

    def _release_segment(self) -> None:
        if self._segment is not None:
            self._segment.release()
            self._segment = None
        self._segment_entries = [dict() for __ in range(self.shards)]
        self._replicated_entries = []

    def _reset_state(self) -> None:
        self._stop_ship_thread()
        self._stop_checkpoint_thread()
        self._stop_workers()
        self._stop_replicas()
        self._release_segment()
        self._close_wal()
        self._states = [_ShardState() for __ in range(self.shards)]
        self._replicated = []
        self._ordinals = {}
        self._next_ordinal = 0
        self._index_paths = []
        self._class_key = None
        self._home = None
        self.incidents = []
        self.partials = []
        self._breakers = self._new_breakers()
        self.last_load_report = None
        self._committed_seq = 0
        self._replica_deficits = set()
        self._row_outstanding = [0] * (self.replicas + 1)
        self._replicas_loaded = False
        self.failovers = 0
        self.last_checkpoint_seq = 0

    def _halt_background(self) -> None:
        """Join the ship and checkpoint threads *without* holding the
        engine locks.  Both loops take the global lock with a bounded
        wait, so stopping them from under ``_exclusive()`` works — but
        it serializes shutdown behind their current tick, and a flush
        arriving between the join and the teardown would race a
        half-torn-down engine.  Stopping first, outside the locks,
        closes that window."""
        self._stop_ship_thread()
        self._stop_checkpoint_thread()

    def _release(self) -> None:
        self._closing = True
        self._halt_background()
        with self._exclusive():
            self._reset_state()

    def abort(self) -> None:
        """Hard-stop without clean shutdown — the in-process stand-in
        for ``kill -9`` used by the recovery tests and the restart-storm
        chaos scenario.

        Worker processes are killed outright (no ``stop`` op, no
        journal ship, no final checkpoint or WAL sync beyond what each
        acknowledged write already wrote), and parent-owned OS
        resources (pipes, the shm segment, WAL file handles) are
        released so the *simulating* process does not leak them.  The
        on-disk WAL/checkpoint state is left exactly as a real SIGKILL
        would leave it; recover from it with
        ``ShardedEngine(recover_dir=...)``.
        """
        self._closing = True
        self._halt_background()
        everyone = list(self._workers)
        for row_workers in self._replica_rows:
            everyone.extend(row_workers)
        for worker in everyone:
            if worker is None:
                continue
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=2.0)
        self._workers = [None] * self.shards
        self._replica_rows = [[None] * self.shards
                              for __ in range(self.replicas)]
        self._release_segment()
        self._close_wal()
        self.loaded = False
        self.db_class = None

    def _stop_workers(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                call_id = worker.next_call_id()
                worker.conn.send((call_id, ("stop",)))
                self._recv(worker, time.monotonic() + 2.0, 2.0,
                           call_id)
            except (_WorkerFailure, OSError, ValueError):
                pass
            self._terminate(worker)
            self._workers[index] = None

    def _stop_replicas(self) -> None:
        for row_workers in self._replica_rows:
            for index, worker in enumerate(row_workers):
                if worker is None:
                    continue
                try:
                    call_id = worker.next_call_id()
                    worker.conn.send((call_id, ("stop",)))
                    self._recv(worker, time.monotonic() + 2.0, 2.0,
                               call_id)
                except (_WorkerFailure, OSError, ValueError):
                    pass
                self._terminate(worker)
                row_workers[index] = None

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)

    # -- indexes -------------------------------------------------------------

    def create_indexes(self, paths: list[str]) -> None:
        with self._exclusive():
            self._index_paths.extend(
                path for path in paths if path not in self._index_paths)
            self._scatter(range(self.shards),
                          lambda __: ("indexes", list(paths)))
            self._mirror_to_replicas(("indexes", list(paths)))

    def drop_indexes(self) -> None:
        with self._exclusive():
            self._index_paths = []
            self._scatter(range(self.shards),
                          lambda __: ("drop_indexes",))
            self._mirror_to_replicas(("drop_indexes",))

    def _mirror_to_replicas(self, message: tuple) -> None:
        """Best-effort copy of an index op to every replica; a slot
        that fails becomes a deficit and is rebuilt with the index
        state replayed, so nothing is lost."""
        if not self._replicas_loaded:
            return
        for row in range(1, self.replicas + 1):
            for index, worker in enumerate(self._replica_rows[row - 1]):
                if worker is None:
                    self._replica_deficits.add((row, index))
                    continue
                try:
                    self._call_worker(worker, message)
                except _WorkerFailure:
                    self._replica_deficits.add((row, index))

    # -- query execution -----------------------------------------------------

    def execute(self, qid: str, params: dict) -> list[str]:
        consistency = (_api.current_consistency()
                       or self._default_consistency)
        row = self._lease_read_row(consistency)
        if row:
            try:
                with self._row_locks[row - 1]:
                    return self._execute_replica(qid, params, row)
            except _WorkerFailure as failure:
                # The row died mid-read; its deficit is already
                # recorded.  Reads are side-effect free, so retry the
                # whole query on the primaries.
                _obs.count("shard.replica_fallbacks")
                self.incidents.append(
                    f"replica row {row} failed mid-read ({failure}); "
                    "read retried on primaries")
            finally:
                self._row_outstanding[row] -= 1
            self._row_outstanding[0] += 1
        with self._lock:
            try:
                return self._execute_primary(qid, params)
            finally:
                self._row_outstanding[0] -= 1

    def _lease_read_row(self, consistency: _api.Consistency) -> int:
        """Pick the row this read runs on: ``0`` for the primaries or
        a 1-based replica row.

        Only fully-alive rows whose slowest shard satisfies the tier's
        required sequence are eligible; among those the one with the
        fewest outstanding reads wins.  No eligible row falls back to
        the primaries (``shard.consistency_fallbacks``)."""
        if consistency.tier == "strong" or not self.replicas:
            self._row_outstanding[0] += 1
            return 0
        with self._lock:
            if not self._replicas_loaded:
                self._row_outstanding[0] += 1
                return 0
            if self._replica_deficits:
                self._repair_replicas_locked()
            committed = self._committed_seq
            if consistency.tier == "read_your_writes":
                # Clamp: a session sequence from before a reload can
                # exceed the new corpus's committed sequence; a fully
                # caught-up replica is always an acceptable answer.
                required = min(consistency.min_seq, committed)
            elif consistency.tier == "bounded_staleness":
                required = max(0, committed - consistency.max_lag)
            else:
                required = 0
            best, best_load, max_lag = 0, None, 0
            for row in range(1, self.replicas + 1):
                workers = self._replica_rows[row - 1]
                if any(worker is None or not worker.process.is_alive()
                       for worker in workers):
                    continue
                applied = min(worker.applied_seq for worker in workers)
                max_lag = max(max_lag, committed - applied)
                if applied < required:
                    continue
                load = self._row_outstanding[row]
                if best_load is None or load < best_load:
                    best, best_load = row, load
            _obs.gauge("shard.replica_lag", max_lag)
            if best:
                _obs.count("shard.replica_reads")
            else:
                _obs.count("shard.consistency_fallbacks")
            self._row_outstanding[best] += 1
            return best

    def _execute_primary(self, qid: str, params: dict) -> list[str]:
        self._require_loaded()
        assert self.db_class is not None
        spec = QUERIES_BY_ID[qid].merge_for(self.db_class.key)
        if self.db_class.single_document:
            spec = {"kind": "home"}
        kind = spec["kind"]
        _obs.count("shard.fanout_calls")
        self._first_reply_ts = None
        start = time.perf_counter()
        with _obs.span("shard.fanout", shards=self.shards,
                       merge=kind, qid=qid):
            with _obs.plan_node("shard.fanout", shards=self.shards,
                                merge=kind, qid=qid) as node:
                values = self._execute_merged(qid, params, spec)
                node.add(rows_out=len(values))
        first = self._first_reply_ts
        self.last_ttfr_seconds = (
            (first - start) if first is not None
            else time.perf_counter() - start)
        self._pad_service_floor(start)
        return values

    def _execute_replica(self, qid: str, params: dict,
                         row: int) -> list[str]:
        """One read against replica row ``row`` (row lock held).

        Same merge plans as the primary path, but every RPC goes to
        the row's workers and any infrastructure failure raises
        :class:`_WorkerFailure` (after marking the slot deficient) so
        the caller can retry on the primaries — replica reads never
        respawn inline."""
        self._require_loaded()
        assert self.db_class is not None
        spec = QUERIES_BY_ID[qid].merge_for(self.db_class.key)
        if self.db_class.single_document:
            spec = {"kind": "home"}
        kind = spec["kind"]
        _obs.count("shard.fanout_calls")
        start = time.perf_counter()
        with _obs.span("shard.fanout", shards=self.shards,
                       merge=kind, qid=qid, replica_row=row):
            with _obs.plan_node("shard.fanout", shards=self.shards,
                                merge=kind, qid=qid) as node:
                values = self._execute_merged(
                    qid, params, spec,
                    call=lambda index, message:
                        self._replica_row_call(row, index, message),
                    fanout=lambda shard_ids, message_for:
                        self._replica_row_fanout(row, shard_ids,
                                                 message_for))
                node.add(rows_out=len(values))
        self._pad_service_floor(start)
        return values

    def _pad_service_floor(self, start: float) -> None:
        """Hold the current lease until ``service_floor`` has elapsed.

        Sleeping *inside* the lease is the point: it models a per-row
        service-time floor, so ``strong`` traffic saturates at ~1/floor
        QPS while replica rows multiply read capacity — measurable
        even on a single core."""
        if self.service_floor <= 0:
            return
        remaining = self.service_floor - (time.perf_counter() - start)
        active = _deadline.current()
        if active is not None:
            remaining = min(remaining, active.remaining())
        if remaining > 0:
            time.sleep(remaining)
        if active is not None:
            active.check("service floor")

    def _execute_merged(self, qid: str, params: dict, spec: dict,
                        call=None, fanout=None) -> list[str]:
        if call is None:
            call = self._call
        if fanout is None:
            fanout = lambda shard_ids, message_for: self._fanout(  # noqa: E731
                shard_ids, message_for, qid=qid)
        kind = spec["kind"]
        if kind == "home":
            home = self._home if self._home is not None else 0
            return call(home, ("execute", qid, dict(params)))
        if kind == "route":
            name = str(params[spec["param"]])
            return call(self.shard_of(name),
                        ("execute", qid, dict(params)))
        if kind == "point":
            pairs = fanout(range(self.shards),
                           lambda __: ("execute", qid, dict(params)))
            with _obs.span("shard.merge", kind="point"):
                return [value for __, values in pairs
                        for value in values]
        if kind == "regroup":
            pairs = fanout(range(self.shards),
                           lambda __: ("execute", qid, dict(params)))
            with _obs.span("shard.merge", kind="regroup"):
                return self._merge_regroup(
                    [values for __, values in pairs], spec)
        # concat / sorted: per-document evaluation on every shard.
        pairs = fanout(
            range(self.shards),
            lambda index: ("execute_per_doc", qid, dict(params),
                           [name for __, name in
                            self._shard_names(index)]))
        with _obs.span("shard.merge", kind=kind):
            merged = self._merge_per_document(pairs)
            if kind == "sorted":
                merged = _stable_sort_by_key(merged, spec["key"])
        return merged

    def _shard_names(self, index: int) -> list[tuple[int, str]]:
        return sorted((ordinal, name) for ordinal, name, __ in
                      self._states[index].mains)

    def _merge_per_document(
            self, pairs: list[tuple[int, dict]]) -> list[str]:
        """Reassemble per-document results in global ordinal order.

        ``pairs`` carries ``(shard, reply)`` (degraded fan-outs may
        omit shards).  Shards whose engine cannot scope evaluation per
        document fall back to whole-shard results; those blocks are
        ordered by the shard's smallest ordinal — correct only when
        results do not interleave across shards (hence the native
        engine, which supports per-document evaluation, is the
        sharding default).
        """
        keyed: list[tuple[int, int, list[str]]] = []
        for index, reply in pairs:
            if reply["mode"] == "per_doc":
                for name, values in reply["parts"]:
                    ordinal = self._ordinals.get(name)
                    if ordinal is not None and values:
                        keyed.append((ordinal, 0, values))
            else:
                names = self._shard_names(index)
                block_ordinal = names[0][0] if names else index
                keyed.append((block_ordinal, 1, reply["values"]))
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        return [value for __, __m, values in keyed for value in values]

    def _merge_regroup(self, replies: list[list[str]],
                       spec: dict) -> list[str]:
        """Re-aggregate per-shard ``<group>`` fragments.

        Each fragment carries a ``group_by`` child (the key) and a
        ``total`` child (the per-shard count); keys are unioned, totals
        summed, and the first fragment seen for a key is re-serialized
        with the summed total — matching the oracle's ``order by`` on
        the group key.
        """
        group_tag, total_tag = spec["group_by"], spec["total"]
        groups: dict[str, tuple[object, object, int]] = {}
        for values in replies:
            for value in values:
                root = parse_document(value).root_element
                key_el = _first_descendant(root, group_tag)
                total_el = _first_descendant(root, total_tag)
                key = key_el.text_content() if key_el is not None else ""
                total = int(total_el.text_content()) \
                    if total_el is not None else 0
                if key in groups:
                    rep, rep_total_el, seen = groups[key]
                    groups[key] = (rep, rep_total_el, seen + total)
                else:
                    groups[key] = (root, total_el, total)
        out = []
        for key in sorted(groups):
            root, total_el, total = groups[key]
            if total_el is not None:
                replacement = Text(str(total))
                replacement.parent = total_el
                total_el.children = [replacement]
            out.append(serialize(root))
        return out

    # -- ad-hoc queries ------------------------------------------------------

    def _adhoc(self, text: str, params: dict) -> list[str]:
        # Ad-hoc reads honor the same consistency routing as the
        # workload queries: replica rows serve tiers they satisfy,
        # with primary fallback on mid-read failure.
        consistency = (_api.current_consistency()
                       or self._default_consistency)
        row = self._lease_read_row(consistency)
        if row:
            try:
                with self._row_locks[row - 1]:
                    return self._adhoc_on_row(text, params, row)
            except _WorkerFailure as failure:
                _obs.count("shard.replica_fallbacks")
                self.incidents.append(
                    f"replica row {row} failed mid-read ({failure}); "
                    "adhoc retried on primaries")
            finally:
                self._row_outstanding[row] -= 1
            self._row_outstanding[0] += 1
        with self._lock:
            try:
                if self._home is not None:
                    return self._call(self._home,
                                      ("adhoc", text, params))
                pairs = self._fanout(
                    range(self.shards),
                    lambda __: ("adhoc", text, params), qid="adhoc")
                return [value for __, values in pairs
                        for value in values]
            finally:
                self._row_outstanding[0] -= 1

    def _adhoc_on_row(self, text: str, params: dict,
                      row: int) -> list[str]:
        """One ad-hoc read against replica row ``row`` (row lock
        held); infrastructure failures raise :class:`_WorkerFailure`
        for the primary-fallback path."""
        self._require_loaded()
        if self._home is not None:
            return self._replica_row_call(row, self._home,
                                          ("adhoc", text, params))
        pairs = self._replica_row_fanout(
            row, range(self.shards),
            lambda __: ("adhoc", text, params))
        return [value for __, values in pairs for value in values]

    # -- update workload -----------------------------------------------------

    def insert_document(self, name: str, text: str) -> None:
        with self._exclusive():
            self._require_loaded()
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            index = self.shard_of(name)
            self._states[index].mains.append((ordinal, name, text))
            try:
                self._call(index, ("insert", name, text))
            except Exception:
                # Keep parent bookkeeping consistent with the worker.
                self._states[index].mains.pop()
                del self._ordinals[name]
                self._next_ordinal = ordinal
                raise
            self._committed_seq += 1
            self._states[index].journal.append(
                (self._committed_seq, ("insert", name, text)))
            self._wal_append(index, self._committed_seq,
                             ("insert", name, text))
            self._after_write()

    def delete_document(self, name: str) -> None:
        with self._exclusive():
            self._require_loaded()
            index = self.shard_of(name)
            self._call(index, ("delete", name))
            self._ordinals.pop(name, None)
            self._states[index].mains = [
                entry for entry in self._states[index].mains
                if entry[1] != name]
            self._committed_seq += 1
            self._states[index].journal.append(
                (self._committed_seq, ("delete", name)))
            self._wal_append(index, self._committed_seq,
                             ("delete", name))
            self._after_write()

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        with self._exclusive():
            self._require_loaded()
            message = ("update_value", id_path, id_value, target_tag,
                       new_value)
            replies = self._scatter(range(self.shards),
                                    lambda __: message)
            self._committed_seq += 1
            for state in self._states:
                state.journal.append((self._committed_seq, message))
            for index in range(self.shards):
                self._wal_append(index, self._committed_seq, message)
            self._after_write()
            return sum(replies)

    def _after_write(self) -> None:
        """Post-acknowledgement replication hook: with no ship
        interval, journal entries ship synchronously; otherwise the
        ship thread batches them."""
        _obs.gauge("shard.journal_bytes", self.journal_bytes())
        if self._replicas_loaded and self.ship_interval <= 0:
            self._ship_pending_locked()

    def _wal_append(self, index: int, seq: int, op: tuple) -> None:
        """Append one journal entry to shard ``index``'s log (no-op
        without a data dir).

        Runs after the workers applied the op but *before* the write
        returns, so acknowledged == logged.  A failed append (disk
        fault) raises — the caller sees a failed write — but the
        sequence stays consumed and the journal entry stays: the op
        already applied worker-side, and an unacknowledged write is
        allowed to land or vanish, never to corrupt sequencing.
        """
        if self._wal is None:
            return
        try:
            self._wal[index].append(seq, op)
        except (FaultInjected, ShardError) as exc:
            _obs.count("wal.append_failures")
            self.incidents.append(
                f"wal append failed for shard {index} seq {seq}: "
                f"{exc}")
            raise

    # -- durability: WAL, checkpoints, recovery ------------------------------

    def _open_wal(self) -> None:
        self._close_wal()
        assert self._data_dir is not None
        self._wal = [WriteAheadLog(
            self._data_dir, index, fsync=self._fsync,
            segment_bytes=self._wal_segment_bytes)
            for index in range(self.shards)]

    def _close_wal(self) -> None:
        if self._wal is None:
            return
        for log in self._wal:
            log.close()
        self._wal = None

    def journal_bytes(self) -> int:
        """Approximate in-memory size of the replication journal —
        string payload bytes plus a small per-entry overhead.  The
        observable side of the checkpoint bound (``shard.journal_bytes``
        gauge): without checkpoints it grows with every write, after
        one it holds only the uncompacted suffix."""
        total = 0
        for state in self._states:
            for __seq, op in state.journal:
                total += 16 + sum(
                    len(part) if isinstance(part, str) else 8
                    for part in op)
        return total

    def wal_disk_bytes(self) -> int:
        """Total on-disk WAL size across shards (0 without a data
        dir) — what checkpoint compaction bounds."""
        return sum(log.disk_bytes() for log in (self._wal or ()))

    def durability_state(self) -> dict | None:
        """Durability snapshot for the stats surface (None when the
        engine runs memory-only)."""
        if self._data_dir is None:
            return None
        with self._lock:
            return {"data_dir": str(self._data_dir),
                    "fsync": self._fsync,
                    "committed_seq": self._committed_seq,
                    "last_checkpoint_seq": self.last_checkpoint_seq,
                    "checkpoint_interval": self.checkpoint_interval,
                    "wal_bytes": self.wal_disk_bytes(),
                    "journal_bytes": self.journal_bytes()}

    def staleness_by_tier(self, bound: int = 8) -> dict:
        """Per-consistency-tier view of replica staleness: for each
        tier, how many rows could serve a read right now and the worst
        ``committed_seq - applied_seq`` such a read could observe.
        ``bound`` parameterizes the ``bounded_staleness:K`` line.  The
        multiuser report renders this as its replication table."""
        with self._lock:
            committed = self._committed_seq
            lags = []
            for row in range(1, self.replicas + 1):
                workers = self._replica_rows[row - 1]
                if any(worker is None or not worker.process.is_alive()
                       for worker in workers):
                    continue
                applied = min(worker.applied_seq for worker in workers)
                lags.append(max(0, committed - applied))
            caught_up = [lag for lag in lags if lag == 0]
            within = [lag for lag in lags if lag <= bound]
            tiers = {
                "strong": {"rows": 1, "max_staleness": 0},
                "read_your_writes": {"rows": 1 + len(caught_up),
                                     "max_staleness": 0},
                f"bounded_staleness:{bound}": {
                    "rows": 1 + len(within),
                    "max_staleness": max(within, default=0)},
                "eventual": {"rows": 1 + len(lags),
                             "max_staleness": max(lags, default=0)},
            }
            return {"committed_seq": committed,
                    "replicas": self.replicas,
                    "live_rows": len(lags),
                    "tiers": tiers}

    def checkpoint(self) -> dict:
        """Take one checkpoint now: snapshot every shard's engine
        state, persist it (with a data dir), compact the WAL below the
        oldest retained checkpoint, and truncate the in-memory journal
        to the suffix.  Works without a data dir too — then it is
        purely the journal-bound operation."""
        with self._exclusive():
            self._require_loaded()
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        seq = self._committed_seq
        start = time.perf_counter()
        with _obs.span("shard.checkpoint", seq=seq):
            exports = self._scatter(range(self.shards),
                                    lambda __: ("snapshot",))
            # Parent ``mains`` must be refreshed whenever value
            # updates are about to leave the journal: respawns replay
            # only the journal's update_value entries over ``mains``,
            # so dropped updates must already be baked in.  Structural
            # entries are in ``mains`` by construction, so a journal
            # with no updates needs no refresh (and the load-time
            # checkpoint keeps its shm segment).
            if any(op[0] == "update_value" for state in self._states
                   for __seq, op in state.journal):
                self._refresh_from_exports(exports)
                self._release_segment()
            if self._checkpoint_manager is not None:
                paths = self._write_checkpoint_snapshots(seq, exports)
                self._checkpoint_manager.record(
                    seq=seq, class_key=self._class_key or "",
                    engine_key=self.engine_key, shards=self.shards,
                    snapshot_paths=paths,
                    index_paths=list(self._index_paths),
                    next_ordinal=self._next_ordinal, home=self._home)
                if self._wal is not None:
                    # Compact below the *oldest retained* checkpoint:
                    # the previous one stays recoverable (manifest
                    # fallback) only while its WAL suffix survives.
                    cutoff = (self._checkpoint_manager
                              .oldest_retained_seq())
                    for log in self._wal:
                        log.truncate_below(cutoff)
                        log.sync()
            for state in self._states:
                state.journal = [entry for entry in state.journal
                                 if entry[0] > seq]
                state.journal_floor = max(state.journal_floor, seq)
        self.last_checkpoint_seq = seq
        _obs.count("shard.checkpoints")
        _obs.gauge("shard.journal_bytes", self.journal_bytes())
        return {"seq": seq,
                "seconds": time.perf_counter() - start,
                "journal_bytes": self.journal_bytes(),
                "wal_bytes": self.wal_disk_bytes()}

    def _refresh_from_exports(self, exports: list) -> None:
        """Swap parent-side payloads for the workers' exported RXB1
        state (checkpoint cut).  After this, ``mains`` + the journal
        suffix reproduce the current worker state exactly — which is
        what respawns, replica rebuilds and failover catch-up rely
        on once pre-checkpoint entries are gone."""
        replicated_names = {name for name, __ in self._replicated}
        for index, export in enumerate(exports):
            encoded = {name: payload for name, payload in export}
            state = self._states[index]
            state.mains = [
                (ordinal, name,
                 EncodedDocument(name, encoded[name])
                 if name in encoded else payload)
                for ordinal, name, payload in state.mains]
        if self._replicated and exports:
            encoded = {name: payload for name, payload in exports[0]
                       if name in replicated_names}
            self._replicated = [
                (name,
                 EncodedDocument(name, encoded[name])
                 if name in encoded else payload)
                for name, payload in self._replicated]

    def _write_checkpoint_snapshots(self, seq: int,
                                    exports: list) -> list[Path]:
        """One RXSN file per shard from the exported payloads, with
        ``ordinal``/``replicated`` carried in each directory entry."""
        manager = self._checkpoint_manager
        assert manager is not None
        replicated_names = {name for name, __ in self._replicated}
        paths = []
        for index, export in enumerate(exports):
            entries = []
            for name, payload in export:
                if name in replicated_names:
                    extra = {"ordinal": -1, "replicated": True}
                else:
                    ordinal = self._ordinals.get(name)
                    if ordinal is None:
                        continue
                    extra = {"ordinal": ordinal, "replicated": False}
                entries.append((name, payload, extra))
            path = manager.snapshot_path(seq, index)
            write_snapshot_payloads(
                path, entries,
                {"class": self._class_key, "shard": index,
                 "checkpoint_seq": seq})
            paths.append(path)
        return paths

    def recover(self) -> dict:
        """Cold-start from the data directory: newest valid checkpoint
        + WAL replay to the exact committed sequence.

        Rebuilds the partition map from the checkpoint snapshots,
        replays WAL records past the checkpoint into parent state (the
        journal suffix, ``mains`` for structural ops) skipping corrupt
        records with :class:`~repro.errors.WalCorruption` incidents,
        then spawns and loads workers — primaries and replica rows —
        and applies the update suffix so every process sits at the
        committed sequence.  Raises
        :class:`~repro.errors.RecoveryError` when there is nothing
        usable to recover from."""
        if self._checkpoint_manager is None:
            raise RecoveryError("no data directory configured")
        self._halt_background()
        with self._exclusive():
            self._closing = False
            return self._recover_locked()

    def _recover_locked(self) -> dict:
        manager = self._checkpoint_manager
        start = time.perf_counter()
        manifest = manager.load()
        if manifest is None:
            raise RecoveryError(
                f"{self._data_dir}: no checkpoint manifest")
        if manifest.get("shards") != self.shards:
            raise RecoveryError(
                f"{self._data_dir}: manifest has "
                f"{manifest.get('shards')} shards, engine has "
                f"{self.shards}")
        if manifest.get("engine") != self.engine_key:
            raise RecoveryError(
                f"{self._data_dir}: manifest engine "
                f"{manifest.get('engine')!r} != {self.engine_key!r}")
        class_key = manifest.get("class")
        db_class = CLASSES_BY_KEY.get(class_key)
        if db_class is None:
            raise RecoveryError(
                f"{self._data_dir}: unknown class {class_key!r}")
        found = manager.latest_valid()
        if found is None:
            raise RecoveryError(
                f"{self._data_dir}: no usable checkpoint (all "
                "snapshot files missing or corrupt)")
        entry, snapshots, fallbacks = found
        self._reset_state()
        self.incidents.extend(fallbacks)
        checkpoint_seq = int(entry.get("seq", 0))
        self._class_key = class_key
        try:
            for index, snapshot in enumerate(snapshots):
                for meta in snapshot.entries:
                    payload = EncodedDocument(
                        meta["name"], bytes(snapshot.payload(meta)))
                    if meta.get("replicated"):
                        # Stored in every shard's file (each worker
                        # holds them); take one copy.
                        if index == 0:
                            self._replicated.append(
                                (meta["name"], payload))
                        continue
                    ordinal = int(meta.get("ordinal", -1))
                    self._states[index].mains.append(
                        (ordinal, meta["name"], payload))
                    self._ordinals[meta["name"]] = ordinal
        finally:
            for snapshot in snapshots:
                snapshot.close()
        fallback_ordinal = 1 + max(self._ordinals.values(), default=-1)
        self._next_ordinal = int(
            entry.get("next_ordinal", fallback_ordinal))
        home = entry.get("home")
        self._home = int(home) if home is not None else None
        self._index_paths = list(entry.get("index_paths", ()))
        self._committed_seq = checkpoint_seq
        for state in self._states:
            state.journal_floor = checkpoint_seq

        # WAL replay into parent state.  Structural ops re-apply to
        # the partition map in *global* sequence order (ordinals are
        # assigned in commit order); update_value entries stay
        # journal-only, exactly like the live write path.
        self._open_wal()
        wal_records = 0
        corrupt_records = 0
        structural: list[tuple[int, int, tuple]] = []
        for index, log in enumerate(self._wal):
            records = log.records(after_seq=checkpoint_seq)
            for incident in log.incidents:
                self.incidents.append(f"WalCorruption: {incident}")
            corrupt_records += len(log.incidents)
            wal_records += len(records)
            state = self._states[index]
            state.journal = [(seq, tuple(op)) for seq, op in records]
            for seq, op in state.journal:
                self._committed_seq = max(self._committed_seq, seq)
                if op[0] in ("insert", "delete"):
                    structural.append((seq, index, op))
        for seq, index, op in sorted(structural):
            state = self._states[index]
            if op[0] == "insert":
                ordinal = self._next_ordinal
                self._next_ordinal += 1
                self._ordinals[op[1]] = ordinal
                state.mains.append((ordinal, op[1], op[2]))
            else:
                self._ordinals.pop(op[1], None)
                state.mains = [main for main in state.mains
                               if main[1] != op[1]]

        # Spawn and load workers from the rebuilt state, then replay
        # the update suffix so worker state reaches the committed seq.
        transport = self.transport
        if transport == "shm":
            try:
                self._build_segment()
            except (OSError, ValueError) as exc:
                self.incidents.append(
                    f"shared memory unavailable ({exc}); "
                    "falling back to pipe transport")
                self._release_segment()
                transport = "pipe"
        with _obs.span("shard.recover", shards=self.shards,
                       checkpoint_seq=checkpoint_seq,
                       wal_records=wal_records):
            for index in range(self.shards):
                self._spawn(index)
            self._scatter(range(self.shards), self._load_message)
            if self._index_paths:
                self._scatter(
                    range(self.shards),
                    lambda __: ("indexes", list(self._index_paths)))
            for index, state in enumerate(self._states):
                for __seq, op in state.journal:
                    if op[0] == "update_value":
                        self._call(index, op)
            if self.replicas:
                self._load_replica_rows()
                self._catch_up_replicas_locked()
        self.db_class = db_class
        self.loaded = True
        self._start_checkpoint_thread()
        report = {
            "data_dir": str(self._data_dir),
            "class": class_key,
            "checkpoint_seq": checkpoint_seq,
            "committed_seq": self._committed_seq,
            "wal_records": wal_records,
            "corrupt_records": corrupt_records,
            "checkpoint_fallbacks": len(fallbacks),
            "documents": self._next_ordinal,
            "seconds": time.perf_counter() - start,
        }
        self.last_recovery_report = report
        _obs.count("shard.recoveries")
        return report

    def _catch_up_replicas_locked(self) -> None:
        """Stamp freshly loaded replica rows at the committed sequence.

        After a recovery load the rows hold checkpoint-state ``mains``
        (structural suffix included), so only the journal's
        update_value entries separate them from the primaries — replay
        those and stamp.  ``_ship_pending_locked`` cannot do this: the
        journal floor sits at the checkpoint, and a floor gap normally
        (correctly) forces a rebuild."""
        committed = self._committed_seq
        for row in range(1, self.replicas + 1):
            for index, worker in enumerate(
                    self._replica_rows[row - 1]):
                if worker is None:
                    continue
                updates = [e for e in self._states[index].journal
                           if e[1][0] == "update_value"]
                try:
                    worker.applied_seq = int(self._call_worker(
                        worker, ("replay", committed, updates)))
                except _WorkerFailure as failure:
                    self._replica_deficits.add((row, index))
                    self.incidents.append(
                        f"replica row {row} shard {index} recovery "
                        f"catch-up failed: {failure}")

    def _start_checkpoint_thread(self) -> None:
        if self.checkpoint_interval <= 0 or self._data_dir is None \
                or self._checkpoint_thread is not None:
            return
        self._checkpoint_stop = threading.Event()
        self._checkpoint_thread = threading.Thread(
            target=self._checkpoint_loop, name="repro-checkpoint",
            daemon=True)
        self._checkpoint_thread.start()

    def _checkpoint_loop(self) -> None:
        # Same shutdown contract as the ship loop: bounded lock
        # acquire, so a closer holding the locks never deadlocks
        # against this thread's tick.
        while not self._checkpoint_stop.wait(self.checkpoint_interval):
            if not self._lock.acquire(timeout=0.2):
                continue
            try:
                if self._checkpoint_stop.is_set() or self._closing \
                        or not self.loaded:
                    continue
                with ExitStack() as stack:
                    for lock in self._row_locks:
                        stack.enter_context(lock)
                    if self._committed_seq > self.last_checkpoint_seq:
                        self._checkpoint_locked()
            except Exception as exc:  # noqa: BLE001 - keep ticking
                self.incidents.append(
                    f"background checkpoint failed: {exc}")
            finally:
                self._lock.release()

    def _stop_checkpoint_thread(self) -> None:
        if self._checkpoint_thread is None:
            return
        self._checkpoint_stop.set()
        self._checkpoint_thread.join(timeout=10.0)
        self._checkpoint_thread = None

    # -- RPC plumbing --------------------------------------------------------

    def _spawn_process(self, index: int, generation: int,
                       tag: str | None, name: str) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker,
            args=(child_conn, self.engine_key, index, generation, tag),
            name=name, daemon=True)
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def _spawn(self, index: int) -> None:
        self._workers[index] = self._spawn_process(
            index, self._generations[index], None,
            f"repro-shard-{index}")

    def _respawn(self, index: int, reason: str) -> None:
        """Replace a dead worker and replay its state."""
        _obs.count("shard.respawns")
        incident = f"shard {index} respawned: {reason}"
        self.incidents.append(incident)
        worker = self._workers[index]
        if worker is not None:
            self._terminate(worker)
        self._generations[index] += 1
        self._spawn(index)
        if self._class_key is None:
            return
        self._call_raw(index, self._load_message(index))
        if self._index_paths:
            self._call_raw(index, ("indexes", list(self._index_paths)))
        # The load message already reflects structural inserts/deletes
        # (``mains`` is current), so only value updates replay.
        for __seq, op in self._states[index].journal:
            if op[0] == "update_value":
                self._call_raw(index, op)

    def _record_failure(self, index: int) -> None:
        """Account one infrastructure failure on the shard's breaker."""
        if self._breakers[index].record_failure():
            _obs.count("shard.breaker_trips")
            self.incidents.append(
                f"shard {index} breaker opened after "
                f"{self._breakers[index].consecutive_failures} "
                f"consecutive failures")

    def _call(self, index: int, message: tuple):
        """One RPC with breaker gating and respawn-and-retry on
        infrastructure failure."""
        self._breakers[index].allow()
        try:
            result = self._call_raw(index, message)
        except _WorkerFailure as failure:
            return self._retry_after_failure(index, message, failure)
        self._breakers[index].record_success()
        return result

    def _retry_after_failure(self, index: int, message: tuple,
                             failure: _WorkerFailure):
        """The shared recovery path: account the failure, back off,
        respawn, re-call — until the retry policy or an active deadline
        says stop.

        With replicas, recovery first attempts a **failover**: the
        freshest live replica of the shard is caught up from the
        journal and promoted to primary — much cheaper than a respawn
        (no reload), it consumes no retry attempt, and its success
        closes the shard's breaker.

        Raises :class:`~repro.errors.ShardError` when retries are
        exhausted, :class:`~repro.errors.CircuitOpen` when this
        failure (or an earlier one) tripped the breaker, and
        :class:`~repro.errors.QueryTimeout` when the caller's deadline
        expired while recovering.
        """
        attempt = 0
        while True:
            self._record_failure(index)
            active = _deadline.current()
            if active is not None and active.expired():
                raise QueryTimeout(
                    f"shard {index}: deadline expired during "
                    f"recovery ({failure})",
                    budget_seconds=active.budget) from None
            if self._try_failover(index, str(failure)):
                self._breakers[index].record_success()
            else:
                if not self._retry.allow_retry(attempt):
                    raise ShardError(
                        f"{failure} (after {attempt + 1} "
                        f"attempt{'s' if attempt else ''})") from None
                _obs.count("shard.retries")
                self._retry.pause(attempt)
                self._breakers[index].allow()   # may have tripped above
                try:
                    self._respawn(index, str(failure))
                except _WorkerFailure as again:
                    failure = again
                    attempt += 1
                    continue
            try:
                result = self._call_raw(index, message)
            except _WorkerFailure as again:
                failure = again
                attempt += 1
                continue
            self._breakers[index].record_success()
            return result

    def _try_failover(self, index: int, reason: str) -> bool:
        """Promote the freshest live replica of shard ``index`` to
        primary.  Returns False (leaving respawn as the fallback) when
        no replica is promotable.

        The candidate is detached from its row under the row lock (the
        slot becomes a deficit to backfill), caught up from the
        journal — structural entries included, since unlike a respawn
        it keeps its loaded corpus — then re-tagged to the primary
        namespace under a bumped generation and installed."""
        if not self.replicas or not self._replicas_loaded:
            return False
        best_row, best = 0, None
        for row in range(1, self.replicas + 1):
            worker = self._replica_rows[row - 1][index]
            if worker is None or not worker.process.is_alive():
                continue
            if best is None or worker.applied_seq > best.applied_seq:
                best_row, best = row, worker
        if best is None:
            return False
        if best.applied_seq < self._states[index].journal_floor:
            # The journal no longer reaches back far enough to catch
            # this candidate up (entries below the checkpoint floor
            # were compacted) — fall back to a respawn, which reloads
            # from the checkpoint-refreshed mains.
            self.incidents.append(
                f"shard {index} failover skipped: freshest replica "
                f"(applied_seq {best.applied_seq}) is behind the "
                f"checkpoint floor "
                f"{self._states[index].journal_floor}")
            return False
        with self._row_locks[best_row - 1]:
            self._replica_rows[best_row - 1][index] = None
        self._replica_deficits.add((best_row, index))
        with _obs.span("shard.failover", shard=index, row=best_row):
            try:
                entries = [entry for entry in
                           self._states[index].journal
                           if entry[0] > best.applied_seq]
                best.applied_seq = int(self._call_worker(
                    best, ("replay", self._committed_seq, entries)))
                self._generations[index] += 1
                self._call_worker(
                    best,
                    ("promote",
                     f"w{index}.g{self._generations[index]}"))
            except Exception as exc:  # noqa: BLE001 - abort, fall back
                self._terminate(best)
                self.incidents.append(
                    f"shard {index} failover from replica row "
                    f"{best_row} aborted: {exc}")
                return False
        old = self._workers[index]
        self._workers[index] = best
        if old is not None:
            self._terminate(old)
        self.failovers += 1
        _obs.count("shard.failovers")
        self.incidents.append(
            f"shard {index} failed over to replica row {best_row} "
            f"(applied_seq {best.applied_seq}): {reason}")
        return True

    def _call_raw(self, index: int, message: tuple):
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            raise _WorkerFailure(f"shard {index}: worker not running")
        return self._call_worker(worker, message, f"shard {index}")

    def _call_worker(self, worker: _Worker, message: tuple,
                     label: str | None = None):
        """One deadline/trace-wrapped RPC on an explicit worker handle
        (primary or replica)."""
        wire, budget = self._wire(label or f"shard {worker.index}",
                                  message)
        wire = self._trace_wire(wire)
        call_id = worker.next_call_id()
        self._send(worker, (call_id, wire), op=message[0])
        return self._recv(worker, time.monotonic() + budget, budget,
                          call_id)

    def _trace_wire(self, wire: tuple) -> tuple:
        """Wrap an on-pipe message as ``("trace", ctx, wire)`` when a
        trace is being recorded.

        Requires *both* an ambient :class:`~repro.obs.trace.TraceContext`
        and an installed recorder: without a recorder the worker's span
        records would come back with nowhere to land, and without a
        context there is no trace to join — either way the wire stays
        untouched and the worker takes its untraced fast path.  The
        worker parents under the calling thread's innermost open span
        (the ``shard.fanout``), or the context's own remote parent for
        direct calls.
        """
        ctx = _trace.current()
        recorder = _obs.active()
        if ctx is None or recorder is None:
            return wire
        parent = recorder.tracer.current_span()
        parent_gid = (_trace.gid_of(parent.span_id)
                      if parent is not None else ctx.parent_gid)
        return ("trace", {"trace_id": ctx.trace_id,
                          "parent": parent_gid}, wire)

    def _wire(self, label: str, message: tuple) -> tuple[tuple, float]:
        """The on-pipe form of ``message`` plus the pipe-wait budget.

        With an active deadline the message is wrapped as
        ``("deadline", remaining, message)`` and the pipe wait is
        bounded by the remainder plus :data:`DEADLINE_GRACE`, so the
        worker's cooperative :class:`~repro.errors.QueryTimeout` beats
        the parent's infrastructure timeout.
        """
        active = _deadline.current()
        if active is None:
            return message, self.timeout
        remaining = active.remaining()
        if remaining <= 0:
            raise QueryTimeout(
                f"{label}: deadline expired before dispatch",
                budget_seconds=active.budget)
        return (("deadline", remaining, message),
                min(self.timeout, remaining + DEADLINE_GRACE))

    @staticmethod
    def _send(worker: _Worker, message: tuple,
              op: str | None = None) -> None:
        try:
            _faults.inject("shard.pipe", op=op, shard=worker.index)
            if _obs.active() is not None:
                # What actually crosses the pipe (the connection
                # pickles the same message); priced only while a
                # recorder observes, since it serializes twice.
                try:
                    _obs.count("shard.pipe_bytes",
                               len(pickle.dumps(
                                   message,
                                   protocol=pickle.HIGHEST_PROTOCOL)))
                except (pickle.PicklingError, TypeError,
                        AttributeError):
                    pass
            worker.conn.send(message)
        except FaultInjected as exc:
            raise _WorkerFailure(
                f"shard {worker.index}: {exc}") from None
        except (OSError, ValueError) as exc:
            raise _WorkerFailure(
                f"shard {worker.index}: send failed: {exc}") from None

    def _recv(self, worker: _Worker, deadline: float,
              budget: float | None = None,
              call_id: int | None = None):
        """Receive one reply, watching liveness every 50 ms.

        ``budget`` is the actual wait this call was given (callers may
        use less than ``self.timeout``, e.g. the 2 s stop/ping waits or
        a deadline-bounded query), so the timeout message reports the
        real number.  Replies carrying a different ``call_id`` belong
        to abandoned calls (deadline fired, parent timed out first) and
        are discarded, keeping the pipe aligned without killing a
        worker that is merely slow.
        """
        if budget is None:
            budget = self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerFailure(
                    f"shard {worker.index}: call timed out after "
                    f"{budget:.1f}s")
            try:
                ready = worker.conn.poll(min(0.05, remaining))
            except (OSError, ValueError) as exc:
                raise _WorkerFailure(
                    f"shard {worker.index}: pipe broken: "
                    f"{exc}") from None
            if ready:
                try:
                    reply_id, reply = worker.conn.recv()
                except (EOFError, OSError) as exc:
                    raise _WorkerFailure(
                        f"shard {worker.index}: recv failed: "
                        f"{exc}") from None
                if call_id is not None and reply_id != call_id:
                    continue    # stale reply from an abandoned call
                if reply[0] == "error":
                    raise _rebuild_error(reply[1], reply[2])
                if reply[0] == "okt":
                    # Traced reply: adopt the worker's span records
                    # into the installed recorder.
                    _obs.adopt_spans(reply[2])
                if self._first_reply_ts is None:
                    self._first_reply_ts = time.perf_counter()
                return reply[1]
            if not worker.process.is_alive():
                raise _WorkerFailure(
                    f"shard {worker.index}: worker died (exit code "
                    f"{worker.process.exitcode})")

    def _scatter(self, shard_ids, message_for) -> list:
        """Strict fan-out: every shard must answer or the call fails.

        Used by lifecycle and update operations, where silently
        skipping a shard would diverge parent and worker state."""
        return [reply for __, reply in
                self._fanout(shard_ids, message_for, qid=None)]

    def _fanout(self, shard_ids, message_for,
                qid: str | None = None) -> list[tuple[int, object]]:
        """Fan out and return ``(shard, reply)`` pairs in shard order.

        With ``degraded="partial"`` and a ``qid`` (i.e. a read-only
        query fan-out), pure infrastructure failures drop their shard
        from the answer: the healthy pairs are returned and the query
        is annotated on :attr:`partials` / :attr:`incidents` and the
        ``shard.partial_results`` counter.  Application-level errors —
        and any failure in strict mode — raise as before.
        """
        shard_ids = list(shard_ids)
        replies, failures = self._scatter_impl(shard_ids, message_for)
        if failures:
            infra_only = all(isinstance(exc, ShardError)
                             for __, exc in failures)
            if not (qid is not None and self.degraded == "partial"
                    and infra_only):
                for __, exc in failures:
                    if isinstance(exc, QueryTimeout):
                        raise exc
                raise failures[0][1]
            failed = sorted(index for index, __ in failures)
            reason = "; ".join(f"shard {index}: {exc}"
                               for index, exc in failures)
            _obs.count("shard.partial_results")
            self.partials.append({"qid": qid, "failed_shards": failed,
                                  "reason": reason,
                                  "trace_id": _trace.current_trace_id()})
            self.incidents.append(
                f"PartialResult: {qid} answered without shard(s) "
                f"{failed}: {reason}")
        return [(index, replies[index]) for index in shard_ids
                if index in replies]

    def _scatter_impl(self, shard_ids, message_for):
        """Send to every shard, then collect every reply.

        The send phase is non-blocking (pipes buffer), so workers
        compute in parallel; the collect phase reads each reply with
        the per-call deadline.  Infrastructure failures go through the
        shared breaker/backoff/respawn recovery; the collect phase
        always drains every live shard before reporting, keeping pipes
        message-aligned.  Returns ``(replies, failures)`` where
        ``replies`` maps shard -> result and ``failures`` lists
        ``(shard, exception)`` for everything else.
        """
        # Resolve any active deadline once, before the first send, so a
        # pre-expired deadline cannot abort the loop with replies still
        # in flight (which would misalign the pipes).
        remaining = None
        budget = self.timeout
        active = _deadline.current()
        if active is not None:
            remaining = active.remaining()
            if remaining <= 0:
                raise QueryTimeout(
                    "deadline expired before shard fan-out",
                    budget_seconds=active.budget)
            budget = min(self.timeout, remaining + DEADLINE_GRACE)
        sent: dict[int, tuple] = {}
        call_ids: dict[int, int] = {}
        failed: dict[int, _WorkerFailure] = {}
        skipped: set[int] = set()
        results: dict[int, object] = {}
        failures: list[tuple[int, Exception]] = []
        for index in shard_ids:
            message = message_for(index)
            sent[index] = message
            try:
                self._breakers[index].allow()
            except CircuitOpen as exc:
                skipped.add(index)
                failures.append((index, exc))
                continue
            worker = self._workers[index]
            try:
                if worker is None or not worker.process.is_alive():
                    raise _WorkerFailure(
                        f"shard {index}: worker not running")
                wire = (message if remaining is None
                        else ("deadline", remaining, message))
                wire = self._trace_wire(wire)
                call_ids[index] = worker.next_call_id()
                self._send(worker, (call_ids[index], wire),
                           op=message[0])
            except _WorkerFailure as failure:
                failed[index] = failure
        deadline = time.monotonic() + budget
        for index in shard_ids:
            if index in failed or index in skipped:
                continue
            try:
                results[index] = self._recv(self._workers[index],
                                            deadline, budget,
                                            call_ids[index])
            except _WorkerFailure as failure:
                failed[index] = failure
            except Exception as exc:  # application-level, not retried
                failures.append((index, exc))
            else:
                self._breakers[index].record_success()
        # Recover infrastructure failures on respawned workers.
        for index, failure in failed.items():
            try:
                results[index] = self._retry_after_failure(
                    index, sent[index], failure)
            except Exception as exc:
                failures.append((index, exc))
        return results, failures

    # -- replication plumbing ------------------------------------------------

    def _spawn_replica(self, row: int, index: int) -> _Worker:
        generation = self._replica_generations[row - 1][index]
        worker = self._spawn_process(
            index, generation, f"w{index}r{row}.g{generation}",
            f"repro-shard-{index}-r{row}")
        self._replica_rows[row - 1][index] = worker
        return worker

    def _load_replica_rows(self) -> None:
        """Spawn and load every replica row (bulk-load tail).

        Loads are pipelined per row like the primary scatter; the shm
        segment is still owned by the parent, so replicas attach to
        the same segment instead of re-shipping the corpus.  A fresh
        corpus is at sequence 0, so new workers are born caught up.
        Replica load failures are strict: a half-provisioned row would
        otherwise silently serve nothing."""
        self._replicas_loaded = False
        try:
            for row in range(1, self.replicas + 1):
                workers = [self._spawn_replica(row, index)
                           for index in range(self.shards)]
                call_ids = {}
                for index, worker in enumerate(workers):
                    call_ids[index] = worker.next_call_id()
                    wire = self._trace_wire(self._load_message(index))
                    self._send(worker, (call_ids[index], wire),
                               op="load")
                deadline = time.monotonic() + self.timeout
                for index, worker in enumerate(workers):
                    self._recv(worker, deadline, self.timeout,
                               call_ids[index])
                if self._index_paths:
                    for worker in workers:
                        self._call_worker(
                            worker,
                            ("indexes", list(self._index_paths)))
        except _WorkerFailure as failure:
            raise ShardError(
                f"replica load failed: {failure}") from None
        self._replicas_loaded = True
        self._start_ship_thread()

    def _respawn_replica(self, row: int, index: int,
                         reason: str) -> None:
        """Rebuild one replica slot: load the current corpus, replay
        value updates (the load message carries original document
        text), then stamp it caught up at the committed sequence."""
        _obs.count("shard.replica_respawns")
        self.incidents.append(
            f"replica row {row} shard {index} respawned: {reason}")
        old = self._replica_rows[row - 1][index]
        if old is not None:
            self._terminate(old)
        self._replica_generations[row - 1][index] += 1
        worker = self._spawn_replica(row, index)
        if self._class_key is None:
            return
        self._call_worker(worker, self._load_message(index))
        if self._index_paths:
            self._call_worker(worker,
                              ("indexes", list(self._index_paths)))
        updates = [entry for entry in self._states[index].journal
                   if entry[1][0] == "update_value"]
        worker.applied_seq = int(self._call_worker(
            worker, ("replay", self._committed_seq, updates)))

    def _repair_replicas_locked(self) -> None:
        """Respawn every deficient replica slot (global lock held; the
        affected row locks are taken per slot so an in-flight read on
        another row is untouched).  A slot that fails to come back
        stays dead and deficient — the next lease retries."""
        failed = []
        while True:
            try:
                # Atomic pop: a reader may add deficits concurrently
                # (it holds only its row lock), and none may be lost.
                row, index = self._replica_deficits.pop()
            except KeyError:
                break
            with self._row_locks[row - 1]:
                try:
                    self._respawn_replica(row, index, "deficit repair")
                except (_WorkerFailure, ShardError, OSError) as exc:
                    failed.append((row, index))
                    self.incidents.append(
                        f"replica row {row} shard {index} repair "
                        f"failed: {exc}")
        self._replica_deficits.update(failed)

    def _ship_pending_locked(self) -> None:
        """Ship journal entries past each replica's applied sequence
        (exclusive lock held).

        Batches are idempotent — the worker suppresses duplicate
        sequences — and an empty batch still advances ``applied_seq``
        for replicas whose shard saw no writes.  A failed endpoint
        becomes a deficit; shipping never blocks the write that
        triggered it beyond this one pass."""
        committed = self._committed_seq
        max_lag = 0
        for row in range(1, self.replicas + 1):
            workers = self._replica_rows[row - 1]
            row_applied = committed
            for index in range(self.shards):
                worker = workers[index]
                if worker is None or not worker.process.is_alive():
                    self._replica_deficits.add((row, index))
                    row_applied = 0
                    continue
                if worker.applied_seq < committed:
                    floor = self._states[index].journal_floor
                    if worker.applied_seq < floor:
                        # Checkpoint compaction dropped entries this
                        # replica still needs — incremental ship can
                        # no longer catch it up.  Snapshot catch-up
                        # instead: the deficit repair reloads the slot
                        # from the checkpoint-refreshed ``mains`` and
                        # replays only the journal suffix.
                        _obs.count("shard.snapshot_catchups")
                        self.incidents.append(
                            f"replica row {row} shard {index} behind "
                            f"the checkpoint floor "
                            f"({worker.applied_seq} < {floor}); "
                            "snapshot catch-up scheduled")
                        self._replica_deficits.add((row, index))
                        row_applied = 0
                        continue
                    entries = [entry for entry in
                               self._states[index].journal
                               if entry[0] > worker.applied_seq]
                    try:
                        worker.applied_seq = int(self._call_worker(
                            worker, ("replay", committed, entries)))
                        _obs.count("shard.journal_shipped",
                                   len(entries))
                    except _WorkerFailure as failure:
                        self._replica_deficits.add((row, index))
                        self.incidents.append(
                            f"replica row {row} shard {index} ship "
                            f"failed: {failure}")
                        row_applied = 0
                        continue
                row_applied = min(row_applied, worker.applied_seq)
            max_lag = max(max_lag, committed - row_applied)
        _obs.gauge("shard.replica_lag", max_lag)

    def flush_replication(self) -> None:
        """Ship all pending journal entries and repair deficits now.

        The synchronous form of what the ship thread does every
        ``ship_interval``; tests and the chaos harness call it to
        bound lag deterministically.  Ships first (which is also how
        dead slots are *noticed* and recorded as deficits), then
        repairs and re-ships, so one flush leaves every repairable
        row alive and caught up."""
        with self._exclusive():
            if self._closing or not self._replicas_loaded:
                return
            self._ship_pending_locked()
            if self._replica_deficits:
                self._repair_replicas_locked()
                self._ship_pending_locked()

    def _start_ship_thread(self) -> None:
        if self.ship_interval <= 0 or self._ship_thread is not None:
            return
        self._ship_stop = threading.Event()
        self._ship_thread = threading.Thread(
            target=self._ship_loop, name="repro-journal-ship",
            daemon=True)
        self._ship_thread.start()

    def _ship_loop(self) -> None:
        # The bounded lock acquire keeps shutdown deadlock-free: the
        # stopper holds the global lock while joining, so this thread
        # must never block on it unconditionally.
        while not self._ship_stop.wait(max(self.ship_interval, 0.01)):
            if not self._lock.acquire(timeout=0.2):
                continue
            try:
                if self._ship_stop.is_set() or self._closing \
                        or not self._replicas_loaded:
                    continue
                with ExitStack() as stack:
                    for lock in self._row_locks:
                        stack.enter_context(lock)
                    if self._replica_deficits:
                        self._repair_replicas_locked()
                    self._ship_pending_locked()
            except Exception as exc:  # noqa: BLE001 - keep shipping
                self.incidents.append(f"journal ship failed: {exc}")
            finally:
                self._lock.release()

    def _stop_ship_thread(self) -> None:
        if self._ship_thread is None:
            return
        self._ship_stop.set()
        self._ship_thread.join(timeout=5.0)
        self._ship_thread = None

    def _replica_row_call(self, row: int, index: int, message: tuple):
        """One RPC against replica ``(row, index)``; infrastructure
        failures mark the slot deficient and raise
        :class:`_WorkerFailure` for the primary-fallback path."""
        worker = self._replica_rows[row - 1][index]
        if worker is None or not worker.process.is_alive():
            self._replica_deficits.add((row, index))
            raise _WorkerFailure(
                f"replica row {row} shard {index}: not running")
        try:
            return self._call_worker(worker, message,
                                     f"replica row {row} shard {index}")
        except _WorkerFailure:
            self._replica_deficits.add((row, index))
            raise

    def _replica_row_fanout(self, row: int, shard_ids,
                            message_for) -> list[tuple[int, object]]:
        """Strict pipelined fan-out across one replica row.

        No degraded mode and no inline recovery: any infrastructure
        failure marks its slot deficient and raises, and the caller
        retries the whole read on the primaries.  Abandoned replies
        from the failed fan-out are discarded by call-id on the row's
        next lease, so the pipes stay aligned."""
        shard_ids = list(shard_ids)
        workers = self._replica_rows[row - 1]
        remaining = None
        budget = self.timeout
        active = _deadline.current()
        if active is not None:
            remaining = active.remaining()
            if remaining <= 0:
                raise QueryTimeout(
                    f"deadline expired before replica row {row} "
                    "fan-out", budget_seconds=active.budget)
            budget = min(self.timeout, remaining + DEADLINE_GRACE)
        call_ids: dict[int, int] = {}
        for index in shard_ids:
            worker = workers[index]
            message = message_for(index)
            try:
                if worker is None or not worker.process.is_alive():
                    raise _WorkerFailure(
                        f"replica row {row} shard {index}: "
                        "not running")
                wire = (message if remaining is None
                        else ("deadline", remaining, message))
                wire = self._trace_wire(wire)
                call_ids[index] = worker.next_call_id()
                self._send(worker, (call_ids[index], wire),
                           op=message[0])
            except _WorkerFailure:
                self._replica_deficits.add((row, index))
                raise
        deadline = time.monotonic() + budget
        results = []
        for index in shard_ids:
            try:
                results.append((index, self._recv(
                    workers[index], deadline, budget,
                    call_ids[index])))
            except _WorkerFailure:
                self._replica_deficits.add((row, index))
                raise
        return results


def _first_descendant(element, tag: str):
    """The first descendant element with ``tag`` (document order)."""
    for child in element.children:
        if getattr(child, "kind", None) != "element":
            continue
        if child.tag == tag:
            return child
        found = _first_descendant(child, tag)
        if found is not None:
            return found
    return None


_UNESCAPES = (("&lt;", "<"), ("&gt;", ">"), ("&quot;", '"'),
              ("&apos;", "'"), ("&amp;", "&"))


def _sort_key_of(value: str, tag: str) -> str:
    """Extract the order-by key from one serialized result fragment."""
    marker = f"<{tag}>"
    start = value.find(marker)
    if start < 0:
        return ""
    start += len(marker)
    end = value.find(f"</{tag}>", start)
    if end < 0:
        return ""
    key = value[start:end]
    for entity, char in _UNESCAPES:
        key = key.replace(entity, char)
    return key


def _stable_sort_by_key(values: list[str], tag: str) -> list[str]:
    """Stable re-sort of ordinal-ordered fragments by their sort key.

    Reproduces XQuery ``order by`` semantics: the input is already in
    document order (global ordinals), and Python's ``sorted`` is
    stable, so equal keys keep document order — exactly the oracle's
    tie-breaking.
    """
    return sorted(values, key=lambda value: _sort_key_of(value, tag))


__all__ = ["ShardedEngine", "shard_of", "DEFAULT_TIMEOUT"]
