"""Sharded multi-process execution service (``repro.core.shard``).

XBench 1.0 is "a single machine benchmark"; the paper names distributed
operation as a planned extension, and our own multiuser harness admits
that the GIL serializes all CPU work.  This module is the first layer
that scales with cores: a :class:`ShardedEngine` partitions a
multi-document corpus across N worker *processes* by document-name hash,
each worker owning a fully loaded engine instance built through the
registry factory (:func:`repro.engines.create`), with scatter-gather
``bulk_load`` / ``execute`` / update operations over a pipe-based RPC
protocol.

Correctness model
-----------------

The single-process native engine is the oracle, and its inter-document
order is parse order (:class:`~repro.xml.nodes.Document` serials).  The
service reproduces that order exactly:

* every main document receives a **global ordinal** at partition time;
* *document-selection* queries (the default) are evaluated **per
  document** on each shard (:meth:`Engine.execute_per_document`) and
  reassembled in ordinal order — byte-identical to a whole-collection
  scan;
* queries with explicit merge metadata on the workload
  (:meth:`WorkloadQuery.merge_for`) use cheaper plans: ``point`` queries
  (unique document id) run whole-shard and concatenate, ``sorted``
  queries re-sort per-document results by their order-by key,
  ``regroup`` queries re-aggregate per-shard ``<group>`` fragments, and
  ``route`` queries go straight to the shard owning the named document;
* reference documents named by
  :attr:`DatabaseClass.replicated_documents` (DC/MD's flat tables) are
  replicated to every shard so cross-document joins (Q19) still resolve;
* single-document classes route everything to one *home* shard.

Robustness
----------

Every RPC has a per-call timeout enforced with a poll loop that also
watches worker liveness, so a killed worker is detected in ~50 ms rather
than hanging.  A dead or timed-out worker is respawned and its state
replayed — bulk load, index state and the per-shard journal of update
operations — and the call retried under a
:class:`~repro.faults.policy.RetryPolicy` (exponential backoff with
deterministic jitter and a cumulative retry budget); exhausted retries
raise :class:`~repro.errors.ShardError`.  Each shard has a
:class:`~repro.faults.policy.CircuitBreaker`: K consecutive
infrastructure failures trip it, further calls fail fast with
:class:`~repro.errors.CircuitOpen` until a cooldown probe succeeds.
With ``degraded="partial"`` the fan-out merges answer from the healthy
shards and annotate the query with a
:class:`~repro.errors.PartialResult` incident record instead of failing
it.  Incidents are recorded on :attr:`ShardedEngine.incidents`
(surfaced in benchmark reports) and counted on the ``shard.respawns`` /
``shard.retries`` / ``shard.breaker_trips`` / ``shard.partial_results``
obs counters.  Application-level errors raised inside a worker (e.g.
``UnsupportedQuery``) are re-raised under their own exception type and
never retried.

Deadlines travel with the RPC: when a
:class:`~repro.faults.deadline.Deadline` is active on the calling
thread, its remaining budget is sent as ``("deadline", remaining,
message)`` and installed around the worker-side op, so the worker's
evaluator cancels cooperatively (:class:`~repro.errors.QueryTimeout`)
while the parent bounds its pipe wait by the same remainder plus a
grace period (the typed reply should win the race against the
infrastructure timeout).

Transport
---------

Bulk-load corpora ship through ``multiprocessing.shared_memory`` by
default (``transport="shm"``): the parent packs every payload — XML
text, or pre-encoded :class:`~repro.xml.binary.EncodedDocument` node
arrays when loading from a snapshot — into one segment, and the load
RPC carries only ``(segment name, offset, length)`` triples, so the
pipe cost of scatter is independent of corpus size.  Workers attach
read-only (unregistering from their resource tracker so a crash can
never unlink the parent's segment — :mod:`repro.core.shm`), copy their
slices out, and detach; a respawned worker re-attaches the same
segment instead of re-shipping.  The parent owns the segment via a
reference count and unlinks it on the next ``bulk_load`` or
``close()``.  ``transport="pipe"`` restores inline payloads (and is
the automatic fallback when no shared memory is available).  Documents
inserted after load ride inline as ``extras`` in the respawn replay.
:attr:`ShardedEngine.last_load_report` records the transport used,
parent-side encode/copy time, segment size and per-worker
attach/load phase timings; the ``shard.pipe_bytes`` /
``shard.shm_segments`` / ``shard.shm_bytes`` obs counters quantify
what actually crossed each medium.

Fault-injection sites (:mod:`repro.faults.plan`, free when no plan is
installed): ``shard.rpc`` (worker side, per op), ``shard.pipe`` (parent
side, per send) and ``shard.result`` (worker-side result payload).
"""

from __future__ import annotations

import builtins
import gc
import itertools
import multiprocessing
import pickle
import threading
import time
import zlib
from dataclasses import dataclass, field

from .. import errors as _errors_module
from ..databases import CLASSES_BY_KEY
from ..databases.base import DatabaseClass
from ..engines import create
from ..engines.base import Engine, LoadStats
from ..errors import (
    CircuitOpen,
    FaultInjected,
    QueryTimeout,
    ShardError,
    UnsupportedOperation,
)
from ..faults import deadline as _deadline
from ..faults import plan as _faults
from ..faults.policy import CircuitBreaker, RetryPolicy
from ..obs import recorder as _obs
from ..obs import trace as _trace
from ..obs.export import trace_records as _trace_records
from ..workload.queries import QUERIES_BY_ID
from ..xml.binary import EncodedDocument
from ..xml.nodes import Text
from ..xml.parser import parse_document
from ..xml.serializer import serialize
from . import shm as _shm

#: Default per-RPC timeout (seconds).  Bulk loads at large scales are
#: the slowest calls; queries finish orders of magnitude faster.
DEFAULT_TIMEOUT = 120.0

#: extra pipe-wait past a propagated deadline, so a worker's typed
#: QueryTimeout reply beats the parent's infrastructure timeout.
DEADLINE_GRACE = 0.25


def shard_of(name: str, shards: int) -> int:
    """The shard owning document ``name``.

    Uses ``crc32`` rather than the builtin ``hash`` because the latter
    is salted per process — partitioning must agree across runs (and
    across parent/worker processes).
    """
    return zlib.crc32(name.encode("utf-8")) % shards


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _shard_worker(conn, engine_key: str, shard_index: int = 0,
                  generation: int = 0) -> None:
    """Worker process main loop: one engine, one duplex pipe.

    Replies ``("ok", result)``, ``("okt", result, span_records)`` for
    traced calls, or ``("error", type_name, message)``; the parent
    reconstructs exceptions from :mod:`repro.errors` (or builtins) by
    type name.  Messages may arrive wrapped as ``("trace", ctx,
    inner)`` and/or ``("deadline", remaining, inner)`` (trace
    outermost): the remaining budget is installed as a
    :class:`~repro.faults.deadline.Deadline` around the op so
    evaluation cancels cooperatively, and a trace context makes the op
    record a ``shard.worker`` span (plus any engine spans) into a
    per-call collector whose exported records ride back on the reply —
    workers write no files, so span export stays atomic at the parent.
    """
    # The worker is forked from the parent, which may have an obs
    # recorder installed; observations recorded here would die with the
    # process, so drop the inherited recorder and make the hooks no-op.
    _obs.uninstall()
    # Span gids exported from this process are namespaced by (shard,
    # respawn generation), so a respawned worker can never collide with
    # spans its predecessor already shipped for the same trace.
    _trace.set_process_tag(f"w{shard_index}.g{generation}")
    # The fork also inherits any installed FaultPlan.  Re-key the
    # decision namespace per (shard, respawn generation): decisions stay
    # deterministic, but a respawned worker's retried call draws a fresh
    # decision instead of replaying the crash that killed its
    # predecessor.
    _faults.set_namespace(f"w{shard_index}.g{generation}")
    # Under the fork start method the worker inherits the parent's
    # entire heap copy-on-write.  The first collections in the child
    # would traverse the gc headers of every inherited object, faulting
    # those shared pages into private copies — a large, pure overhead
    # tax on the first bulk load.  Freeze the inherited heap into the
    # permanent generation (an O(1) list splice) so the collector never
    # traverses it; everything this worker allocates is still collected
    # normally.
    gc.freeze()
    # One span-id counter for the whole worker lifetime: each traced
    # call gets a fresh collector, so without this the ids (and hence
    # the exported gids) would restart at 1 on every call and collide.
    span_ids = itertools.count(1)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        # Every request is (call_id, payload); the id is echoed in the
        # reply so the parent can discard replies to calls it abandoned
        # (e.g. a deadline fired while the worker was still computing).
        call_id, message = message
        trace_ctx = None
        if message[0] == "trace":
            __, trace_wire, message = message
            trace_ctx = _trace.from_wire(trace_wire)
        deadline = None
        if message[0] == "deadline":
            __, remaining, message = message
            deadline = _deadline.Deadline(remaining)
        op = message[0]
        try:
            with _deadline.deadline_scope(deadline):
                if trace_ctx is not None:
                    collector = _obs.Recorder(name="shard-worker")
                    collector.tracer._ids = span_ids
                    with _obs.observing(collector), \
                            _trace.trace_scope(trace_ctx):
                        with _obs.span("shard.worker", op=op,
                                       shard=shard_index):
                            result = _run_worker_op(
                                engine_key, shard_index, op, message,
                                deadline)
                    reply = ("okt", result, _trace_records(collector))
                else:
                    result = _run_worker_op(engine_key, shard_index,
                                            op, message, deadline)
                    reply = ("ok", result)
        except _WorkerStop:
            try:
                conn.send((call_id, ("ok", None)))
            except (OSError, ValueError):
                pass
            break
        except Exception as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send((call_id,
                           ("error", type(exc).__name__, str(exc))))
            except (OSError, ValueError):
                break
            continue
        try:
            conn.send((call_id, reply))
        except (OSError, ValueError):
            break
    conn.close()


class _WorkerStop(Exception):
    """Internal: the worker received ``stop`` and should exit."""


def _run_worker_op(engine_key: str, shard_index: int, op: str,
                   message: tuple, deadline):
    """Dispatch one worker op and return its result.

    Split out of the loop so the whole op — injection site, deadline
    check and dispatch — sits under one ``deadline_scope`` / error
    handler (and, when traced, inside the ``shard.worker`` span, which
    must close before the reply is serialized so its duration rides
    along).  ``stop`` raises :class:`_WorkerStop`; the loop acks it.
    """
    global _worker_engine
    engine = _worker_engine
    _faults.inject("shard.rpc", op=op, shard=shard_index)
    if deadline is not None:
        # A delay fault may already have consumed the budget; fail
        # typed before doing any work.
        deadline.check("rpc dispatch")
    if op == "load":
        engine = _worker_engine = create(engine_key)
        db_class = CLASSES_BY_KEY[message[1]]
        if isinstance(message[2], dict):
            texts, phases = _read_segment_corpus(message[2])
        else:
            __, __class_key, mains, replicated = message
            texts = [(name, text) for __ord, name, text in mains]
            texts.extend(replicated)
            phases = None
        stats = engine.timed_load(db_class, texts)
        result = {"documents": stats.documents,
                  "bytes": stats.bytes, "rows": stats.rows,
                  "seconds": stats.seconds}
        if phases is not None:
            phases["load_seconds"] = stats.seconds
            result["phases"] = phases
    elif op == "indexes":
        engine.create_indexes(list(message[1]))
        result = None
    elif op == "drop_indexes":
        engine.drop_indexes()
        result = None
    elif op == "execute":
        __, qid, params = message
        result = engine.execute(qid, dict(params))
    elif op == "execute_per_doc":
        __, qid, params, names = message
        try:
            parts = engine.execute_per_document(
                qid, dict(params), list(names))
            result = {"mode": "per_doc", "parts": parts}
        except UnsupportedOperation:
            result = {"mode": "whole",
                      "values": engine.execute(qid, dict(params))}
    elif op == "adhoc":
        __, text, params = message
        result = engine.adhoc(text, dict(params)).values
    elif op == "insert":
        __, name, text = message
        engine.insert_document(name, text)
        result = None
    elif op == "delete":
        engine.delete_document(message[1])
        result = None
    elif op == "update_value":
        __, id_path, id_value, target_tag, new_value = message
        result = engine.update_value(id_path, id_value,
                                     target_tag, new_value)
    elif op == "ping":
        result = "pong"
    elif op == "stop":
        raise _WorkerStop
    else:
        raise ShardError(f"unknown worker op {op!r}")
    return _faults.corrupt_value("shard.result", result, op=op,
                                 shard=shard_index)


def _payload_from(buf, name: str, kind: str, offset: int, length: int):
    """One load payload copied out of a shared-memory segment.

    Kind ``"b"`` is an RXB1 node array (stays encoded; the engine's
    ``materialize`` decodes it without parsing), ``"t"`` is UTF-8 XML
    text.  Both copy, so the segment can be detached immediately.
    """
    raw = bytes(buf[offset:offset + length])
    if kind == "b":
        return EncodedDocument(name, raw)
    return raw.decode("utf-8")


def _read_segment_corpus(spec: dict) -> tuple[list, dict]:
    """Materialize a worker's corpus from the shm load ``spec``.

    Attaches the named segment, copies this shard's slices out and
    detaches *before* the timed load, so a worker never holds the
    parent's segment open past the RPC that shipped it.  Returns the
    ``(name, payload)`` list (mains in ordinal order, then ``extras``
    inserted after the original load, then replicated documents) plus
    an ``attach_seconds`` phase timing.
    """
    start = time.perf_counter()
    segment = _shm.attach_segment(spec["segment"])
    try:
        buf = segment.buf
        mains = [(ordinal, name,
                  _payload_from(buf, name, kind, offset, length))
                 for ordinal, name, kind, offset, length
                 in spec["entries"]]
        replicated = [(name,
                       _payload_from(buf, name, kind, offset, length))
                      for name, kind, offset, length
                      in spec["replicated"]]
    finally:
        _shm.detach_segment(segment)
    mains.extend(spec.get("extras", ()))
    mains.sort(key=lambda entry: entry[0])
    texts = [(name, payload) for __ord, name, payload in mains]
    texts.extend(replicated)
    return texts, {"attach_seconds": time.perf_counter() - start}


#: the worker process's engine instance (one worker per process).
_worker_engine: Engine | None = None


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Reconstruct a worker-side exception by type name."""
    for namespace in (_errors_module, builtins):
        cls = getattr(namespace, type_name, None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                return cls(message)
            except TypeError:
                break
    return ShardError(f"worker raised {type_name}: {message}")


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _WorkerFailure(Exception):
    """Internal: an RPC failed at the infrastructure level (worker dead,
    pipe broken, or call timed out) — eligible for respawn + retry."""


@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    #: RPC sequence counter; each call's id is echoed in its reply so
    #: replies to abandoned calls are recognisably stale.
    calls: int = 0

    def next_call_id(self) -> int:
        self.calls += 1
        return self.calls


@dataclass
class _ShardState:
    """Everything needed to (re)build one shard's engine."""

    #: main documents owned by this shard: (ordinal, name, text).
    mains: list[tuple[int, str, str]] = field(default_factory=list)
    #: update operations applied since load, replayed on respawn.
    journal: list[tuple] = field(default_factory=list)


class ShardedEngine(Engine):
    """Engine facade that scatter-gathers over N worker processes.

    Satisfies the full :class:`Engine` contract — ``timed_load`` /
    ``timed_execute`` / updates / ``adhoc`` / context manager — so the
    benchmark driver, the multiuser harness and the CLI treat it exactly
    like a local engine.  Public operations are serialized by an RLock
    (concurrent streams queue at the service); each operation still fans
    out across all workers in parallel.
    """

    #: accepted values for the ``degraded`` policy knob.
    DEGRADED_MODES = ("fail", "partial")
    #: accepted values for the bulk-load ``transport`` knob.
    TRANSPORTS = ("shm", "pipe")

    def __init__(self, engine_key: str = "native", shards: int = 2,
                 timeout: float | None = DEFAULT_TIMEOUT,
                 retries: int = 1, *, degraded: str = "fail",
                 seed: int = 0, backoff_base: float = 0.05,
                 retry_budget: float = 30.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 5.0,
                 transport: str = "shm") -> None:
        super().__init__()
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        if degraded not in self.DEGRADED_MODES:
            raise ShardError(
                f"degraded must be one of {self.DEGRADED_MODES}, "
                f"got {degraded!r}")
        if transport not in self.TRANSPORTS:
            raise ShardError(
                f"transport must be one of {self.TRANSPORTS}, "
                f"got {transport!r}")
        inner = create(engine_key)   # metadata + check_supported proxy
        self._inner = inner
        self.engine_key = engine_key
        self.shards = shards
        self.timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        self.retries = retries
        self.degraded = degraded
        self.key = engine_key
        self.row_label = f"{inner.row_label} x{shards}"
        self.description = (f"{inner.description} — sharded across "
                            f"{shards} worker processes")
        #: infrastructure incidents (respawns, retries) for the report.
        self.incidents: list[str] = []
        #: partial-result records: {"qid", "failed_shards", "reason"}.
        self.partials: list[dict] = []
        self._retry = RetryPolicy(retries=retries, base=backoff_base,
                                  budget_seconds=retry_budget,
                                  seed=seed)
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._breakers = self._new_breakers()
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[_Worker | None] = [None] * shards
        self._generations = [0] * shards
        self._states = [_ShardState() for __ in range(shards)]
        self._replicated: list[tuple[str, str]] = []
        self._ordinals: dict[str, int] = {}
        self._next_ordinal = 0
        self._index_paths: list[str] = []
        self._class_key: str | None = None
        self._home: int | None = None   # single-document classes
        #: perf_counter of the first reply of the current execute()
        #: fan-out — the raw material of time-to-first-result.
        self._first_reply_ts: float | None = None
        #: how bulk-load corpora ship to workers ("shm" or "pipe").
        self.transport = transport
        self._segment: _shm.OwnedSegment | None = None
        self._segment_entries: list[dict] = [dict()
                                             for __ in range(shards)]
        self._replicated_entries: list[tuple] = []
        #: transport + phase timings of the most recent bulk load
        #: (None before the first load).
        self.last_load_report: dict | None = None

    def _new_breakers(self) -> list[CircuitBreaker]:
        return [CircuitBreaker(threshold=self._breaker_threshold,
                               cooldown=self._breaker_cooldown,
                               name=f"shard {index} breaker")
                for index in range(self.shards)]

    # -- configuration gating ------------------------------------------------

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        self._inner.check_supported(db_class, scale_name)

    # -- live telemetry ------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (for resource sampling)."""
        return [worker.process.pid for worker in self._workers
                if worker is not None and worker.process.is_alive()]

    def breaker_states(self) -> list[dict]:
        """Per-shard circuit-breaker snapshot for the stats surface."""
        return [{"shard": index, "state": breaker.state,
                 "consecutive_failures": breaker.consecutive_failures,
                 "trips": breaker.trips}
                for index, breaker in enumerate(self._breakers)]

    # -- partitioning --------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard owning main document ``name``."""
        if self._home is not None:
            return self._home
        return shard_of(name, self.shards)

    def _partition(self, db_class: DatabaseClass, texts) -> None:
        replicated_names = set(db_class.replicated_documents)
        for name, text in texts:
            if name in replicated_names:
                self._replicated.append((name, text))
                continue
            if db_class.single_document and self._home is None:
                # All of a single-document class lives on one shard.
                self._home = shard_of(name, self.shards)
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            self._states[self.shard_of(name)].mains.append(
                (ordinal, name, text))

    # -- lifecycle -----------------------------------------------------------

    def bulk_load(self, db_class: DatabaseClass, texts) -> LoadStats:
        with self._lock:
            self._reset_state()
            self._class_key = db_class.key
            self._partition(db_class, texts)
            transport = self.transport
            encode_seconds = 0.0
            if transport == "shm":
                try:
                    encode_seconds = self._build_segment()
                except (OSError, ValueError) as exc:
                    self.incidents.append(
                        f"shared memory unavailable ({exc}); "
                        "falling back to pipe transport")
                    self._release_segment()
                    transport = "pipe"
            try:
                with _obs.span("shard.bulk_load", shards=self.shards,
                               engine=self.engine_key,
                               transport=transport):
                    for index in range(self.shards):
                        self._spawn(index)
                    replies = self._scatter(range(self.shards),
                                            self._load_message)
            except BaseException:
                self._release_segment()
                raise
            self.last_load_report = {
                "transport": transport,
                "encode_seconds": encode_seconds,
                "segment_bytes": (self._segment.size
                                  if self._segment is not None else 0),
                "workers": [reply.get("phases") for reply in replies],
            }
            documents = self._next_ordinal + len(self._replicated)
            loaded_bytes = (sum(len(t) for __, __n, t in
                                self._iter_mains())
                            + sum(len(t) for __, t in self._replicated))
            return LoadStats(
                documents=documents, bytes=loaded_bytes,
                rows=sum(reply["rows"] for reply in replies),
                notes=[f"sharded across {self.shards} workers "
                       f"({self.engine_key})"])

    def _iter_mains(self):
        for state in self._states:
            yield from state.mains

    def _build_segment(self) -> float:
        """Pack every partitioned payload into one shm segment.

        Per document the segment stores either UTF-8 XML text (kind
        ``"t"`` — workers still parse, but in parallel) or an RXB1
        node array (kind ``"b"``, snapshot-fed corpora — workers skip
        parsing entirely).  ``_segment_entries[shard][name]`` maps to
        ``(kind, offset, length)``; replicated documents are stored
        once and referenced by every shard's load message.  Returns
        the parent-side encode+copy wall time.
        """
        start = time.perf_counter()
        blobs: list[bytes] = []
        offset = 0
        entries: list[dict] = [dict() for __ in range(self.shards)]

        def place(payload) -> tuple[str, int, int]:
            nonlocal offset
            if isinstance(payload, EncodedDocument):
                kind, data = "b", payload.tobytes()
            else:
                kind, data = "t", payload.encode("utf-8")
            blobs.append(data)
            entry = (kind, offset, len(data))
            offset += len(data)
            return entry

        for index, state in enumerate(self._states):
            for __ordinal, name, payload in state.mains:
                entries[index][name] = place(payload)
        replicated = [(name,) + place(payload)
                      for name, payload in self._replicated]
        segment = _shm.OwnedSegment(max(1, offset))
        cursor = 0
        buf = segment.buf
        for data in blobs:
            buf[cursor:cursor + len(data)] = data
            cursor += len(data)
        self._segment = segment
        self._segment_entries = entries
        self._replicated_entries = replicated
        _obs.count("shard.shm_segments")
        _obs.count("shard.shm_bytes", offset)
        return time.perf_counter() - start

    def _load_message(self, index: int) -> tuple:
        mains = sorted(self._states[index].mains,
                       key=lambda entry: entry[0])
        if self._segment is None:
            return ("load", self._class_key, mains,
                    list(self._replicated))
        placed = self._segment_entries[index]
        entries = []
        extras = []
        for ordinal, name, payload in mains:
            entry = placed.get(name)
            if entry is not None:
                entries.append((ordinal, name) + entry)
            else:
                # Inserted after the segment was built — ships inline
                # (and replays inline on respawn).
                extras.append((ordinal, name, payload))
        return ("load", self._class_key,
                {"segment": self._segment.name,
                 "entries": entries,
                 "extras": extras,
                 "replicated": list(self._replicated_entries)})

    def _release_segment(self) -> None:
        if self._segment is not None:
            self._segment.release()
            self._segment = None
        self._segment_entries = [dict() for __ in range(self.shards)]
        self._replicated_entries = []

    def _reset_state(self) -> None:
        self._stop_workers()
        self._release_segment()
        self._states = [_ShardState() for __ in range(self.shards)]
        self._replicated = []
        self._ordinals = {}
        self._next_ordinal = 0
        self._index_paths = []
        self._class_key = None
        self._home = None
        self.incidents = []
        self.partials = []
        self._breakers = self._new_breakers()
        self.last_load_report = None

    def _release(self) -> None:
        with self._lock:
            self._reset_state()

    def _stop_workers(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                call_id = worker.next_call_id()
                worker.conn.send((call_id, ("stop",)))
                self._recv(worker, time.monotonic() + 2.0, 2.0,
                           call_id)
            except (_WorkerFailure, OSError, ValueError):
                pass
            self._terminate(worker)
            self._workers[index] = None

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)

    # -- indexes -------------------------------------------------------------

    def create_indexes(self, paths: list[str]) -> None:
        with self._lock:
            self._index_paths.extend(
                path for path in paths if path not in self._index_paths)
            self._scatter(range(self.shards),
                          lambda __: ("indexes", list(paths)))

    def drop_indexes(self) -> None:
        with self._lock:
            self._index_paths = []
            self._scatter(range(self.shards),
                          lambda __: ("drop_indexes",))

    # -- query execution -----------------------------------------------------

    def execute(self, qid: str, params: dict) -> list[str]:
        with self._lock:
            self._require_loaded()
            assert self.db_class is not None
            spec = QUERIES_BY_ID[qid].merge_for(self.db_class.key)
            if self.db_class.single_document:
                spec = {"kind": "home"}
            kind = spec["kind"]
            _obs.count("shard.fanout_calls")
            self._first_reply_ts = None
            start = time.perf_counter()
            with _obs.span("shard.fanout", shards=self.shards,
                           merge=kind, qid=qid):
                with _obs.plan_node("shard.fanout", shards=self.shards,
                                    merge=kind, qid=qid) as node:
                    values = self._execute_merged(qid, params, spec)
                    node.add(rows_out=len(values))
            first = self._first_reply_ts
            self.last_ttfr_seconds = (
                (first - start) if first is not None
                else time.perf_counter() - start)
            return values

    def _execute_merged(self, qid: str, params: dict,
                        spec: dict) -> list[str]:
        kind = spec["kind"]
        if kind == "home":
            home = self._home if self._home is not None else 0
            return self._call(home, ("execute", qid, dict(params)))
        if kind == "route":
            name = str(params[spec["param"]])
            return self._call(self.shard_of(name),
                              ("execute", qid, dict(params)))
        if kind == "point":
            pairs = self._fanout(
                range(self.shards),
                lambda __: ("execute", qid, dict(params)), qid=qid)
            with _obs.span("shard.merge", kind="point"):
                return [value for __, values in pairs
                        for value in values]
        if kind == "regroup":
            pairs = self._fanout(
                range(self.shards),
                lambda __: ("execute", qid, dict(params)), qid=qid)
            with _obs.span("shard.merge", kind="regroup"):
                return self._merge_regroup(
                    [values for __, values in pairs], spec)
        # concat / sorted: per-document evaluation on every shard.
        pairs = self._fanout(
            range(self.shards),
            lambda index: ("execute_per_doc", qid, dict(params),
                           [name for __, name in
                            self._shard_names(index)]),
            qid=qid)
        with _obs.span("shard.merge", kind=kind):
            merged = self._merge_per_document(pairs)
            if kind == "sorted":
                merged = _stable_sort_by_key(merged, spec["key"])
        return merged

    def _shard_names(self, index: int) -> list[tuple[int, str]]:
        return sorted((ordinal, name) for ordinal, name, __ in
                      self._states[index].mains)

    def _merge_per_document(
            self, pairs: list[tuple[int, dict]]) -> list[str]:
        """Reassemble per-document results in global ordinal order.

        ``pairs`` carries ``(shard, reply)`` (degraded fan-outs may
        omit shards).  Shards whose engine cannot scope evaluation per
        document fall back to whole-shard results; those blocks are
        ordered by the shard's smallest ordinal — correct only when
        results do not interleave across shards (hence the native
        engine, which supports per-document evaluation, is the
        sharding default).
        """
        keyed: list[tuple[int, int, list[str]]] = []
        for index, reply in pairs:
            if reply["mode"] == "per_doc":
                for name, values in reply["parts"]:
                    ordinal = self._ordinals.get(name)
                    if ordinal is not None and values:
                        keyed.append((ordinal, 0, values))
            else:
                names = self._shard_names(index)
                block_ordinal = names[0][0] if names else index
                keyed.append((block_ordinal, 1, reply["values"]))
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        return [value for __, __m, values in keyed for value in values]

    def _merge_regroup(self, replies: list[list[str]],
                       spec: dict) -> list[str]:
        """Re-aggregate per-shard ``<group>`` fragments.

        Each fragment carries a ``group_by`` child (the key) and a
        ``total`` child (the per-shard count); keys are unioned, totals
        summed, and the first fragment seen for a key is re-serialized
        with the summed total — matching the oracle's ``order by`` on
        the group key.
        """
        group_tag, total_tag = spec["group_by"], spec["total"]
        groups: dict[str, tuple[object, object, int]] = {}
        for values in replies:
            for value in values:
                root = parse_document(value).root_element
                key_el = _first_descendant(root, group_tag)
                total_el = _first_descendant(root, total_tag)
                key = key_el.text_content() if key_el is not None else ""
                total = int(total_el.text_content()) \
                    if total_el is not None else 0
                if key in groups:
                    rep, rep_total_el, seen = groups[key]
                    groups[key] = (rep, rep_total_el, seen + total)
                else:
                    groups[key] = (root, total_el, total)
        out = []
        for key in sorted(groups):
            root, total_el, total = groups[key]
            if total_el is not None:
                replacement = Text(str(total))
                replacement.parent = total_el
                total_el.children = [replacement]
            out.append(serialize(root))
        return out

    # -- ad-hoc queries ------------------------------------------------------

    def _adhoc(self, text: str, params: dict) -> list[str]:
        with self._lock:
            if self._home is not None:
                return self._call(self._home, ("adhoc", text, params))
            pairs = self._fanout(
                range(self.shards), lambda __: ("adhoc", text, params),
                qid="adhoc")
            return [value for __, values in pairs for value in values]

    # -- update workload -----------------------------------------------------

    def insert_document(self, name: str, text: str) -> None:
        with self._lock:
            self._require_loaded()
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            index = self.shard_of(name)
            self._states[index].mains.append((ordinal, name, text))
            try:
                self._call(index, ("insert", name, text))
            except Exception:
                # Keep parent bookkeeping consistent with the worker.
                self._states[index].mains.pop()
                del self._ordinals[name]
                self._next_ordinal = ordinal
                raise

    def delete_document(self, name: str) -> None:
        with self._lock:
            self._require_loaded()
            index = self.shard_of(name)
            self._call(index, ("delete", name))
            self._ordinals.pop(name, None)
            self._states[index].mains = [
                entry for entry in self._states[index].mains
                if entry[1] != name]

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        with self._lock:
            self._require_loaded()
            message = ("update_value", id_path, id_value, target_tag,
                       new_value)
            replies = self._scatter(range(self.shards),
                                    lambda __: message)
            for state in self._states:
                state.journal.append(message)
            return sum(replies)

    # -- RPC plumbing --------------------------------------------------------

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker,
            args=(child_conn, self.engine_key, index,
                  self._generations[index]),
            name=f"repro-shard-{index}", daemon=True)
        process.start()
        child_conn.close()
        self._workers[index] = _Worker(index, process, parent_conn)

    def _respawn(self, index: int, reason: str) -> None:
        """Replace a dead worker and replay its state."""
        _obs.count("shard.respawns")
        incident = f"shard {index} respawned: {reason}"
        self.incidents.append(incident)
        worker = self._workers[index]
        if worker is not None:
            self._terminate(worker)
        self._generations[index] += 1
        self._spawn(index)
        if self._class_key is None:
            return
        self._call_raw(index, self._load_message(index))
        if self._index_paths:
            self._call_raw(index, ("indexes", list(self._index_paths)))
        for op in self._states[index].journal:
            self._call_raw(index, op)

    def _record_failure(self, index: int) -> None:
        """Account one infrastructure failure on the shard's breaker."""
        if self._breakers[index].record_failure():
            _obs.count("shard.breaker_trips")
            self.incidents.append(
                f"shard {index} breaker opened after "
                f"{self._breakers[index].consecutive_failures} "
                f"consecutive failures")

    def _call(self, index: int, message: tuple):
        """One RPC with breaker gating and respawn-and-retry on
        infrastructure failure."""
        self._breakers[index].allow()
        try:
            result = self._call_raw(index, message)
        except _WorkerFailure as failure:
            return self._retry_after_failure(index, message, failure)
        self._breakers[index].record_success()
        return result

    def _retry_after_failure(self, index: int, message: tuple,
                             failure: _WorkerFailure):
        """The shared recovery path: account the failure, back off,
        respawn, re-call — until the retry policy or an active deadline
        says stop.

        Raises :class:`~repro.errors.ShardError` when retries are
        exhausted, :class:`~repro.errors.CircuitOpen` when this
        failure (or an earlier one) tripped the breaker, and
        :class:`~repro.errors.QueryTimeout` when the caller's deadline
        expired while recovering.
        """
        attempt = 0
        while True:
            self._record_failure(index)
            active = _deadline.current()
            if active is not None and active.expired():
                raise QueryTimeout(
                    f"shard {index}: deadline expired during "
                    f"recovery ({failure})",
                    budget_seconds=active.budget) from None
            if not self._retry.allow_retry(attempt):
                raise ShardError(
                    f"{failure} (after {attempt + 1} "
                    f"attempt{'s' if attempt else ''})") from None
            _obs.count("shard.retries")
            self._retry.pause(attempt)
            self._breakers[index].allow()   # may have tripped above
            try:
                self._respawn(index, str(failure))
                result = self._call_raw(index, message)
            except _WorkerFailure as again:
                failure = again
                attempt += 1
                continue
            self._breakers[index].record_success()
            return result

    def _call_raw(self, index: int, message: tuple):
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            raise _WorkerFailure(f"shard {index}: worker not running")
        wire, budget = self._wire(index, message)
        wire = self._trace_wire(wire)
        call_id = worker.next_call_id()
        self._send(worker, (call_id, wire), op=message[0])
        return self._recv(worker, time.monotonic() + budget, budget,
                          call_id)

    def _trace_wire(self, wire: tuple) -> tuple:
        """Wrap an on-pipe message as ``("trace", ctx, wire)`` when a
        trace is being recorded.

        Requires *both* an ambient :class:`~repro.obs.trace.TraceContext`
        and an installed recorder: without a recorder the worker's span
        records would come back with nowhere to land, and without a
        context there is no trace to join — either way the wire stays
        untouched and the worker takes its untraced fast path.  The
        worker parents under the calling thread's innermost open span
        (the ``shard.fanout``), or the context's own remote parent for
        direct calls.
        """
        ctx = _trace.current()
        recorder = _obs.active()
        if ctx is None or recorder is None:
            return wire
        parent = recorder.tracer.current_span()
        parent_gid = (_trace.gid_of(parent.span_id)
                      if parent is not None else ctx.parent_gid)
        return ("trace", {"trace_id": ctx.trace_id,
                          "parent": parent_gid}, wire)

    def _wire(self, index: int, message: tuple) -> tuple[tuple, float]:
        """The on-pipe form of ``message`` plus the pipe-wait budget.

        With an active deadline the message is wrapped as
        ``("deadline", remaining, message)`` and the pipe wait is
        bounded by the remainder plus :data:`DEADLINE_GRACE`, so the
        worker's cooperative :class:`~repro.errors.QueryTimeout` beats
        the parent's infrastructure timeout.
        """
        active = _deadline.current()
        if active is None:
            return message, self.timeout
        remaining = active.remaining()
        if remaining <= 0:
            raise QueryTimeout(
                f"shard {index}: deadline expired before dispatch",
                budget_seconds=active.budget)
        return (("deadline", remaining, message),
                min(self.timeout, remaining + DEADLINE_GRACE))

    @staticmethod
    def _send(worker: _Worker, message: tuple,
              op: str | None = None) -> None:
        try:
            _faults.inject("shard.pipe", op=op, shard=worker.index)
            if _obs.active() is not None:
                # What actually crosses the pipe (the connection
                # pickles the same message); priced only while a
                # recorder observes, since it serializes twice.
                try:
                    _obs.count("shard.pipe_bytes",
                               len(pickle.dumps(
                                   message,
                                   protocol=pickle.HIGHEST_PROTOCOL)))
                except (pickle.PicklingError, TypeError,
                        AttributeError):
                    pass
            worker.conn.send(message)
        except FaultInjected as exc:
            raise _WorkerFailure(
                f"shard {worker.index}: {exc}") from None
        except (OSError, ValueError) as exc:
            raise _WorkerFailure(
                f"shard {worker.index}: send failed: {exc}") from None

    def _recv(self, worker: _Worker, deadline: float,
              budget: float | None = None,
              call_id: int | None = None):
        """Receive one reply, watching liveness every 50 ms.

        ``budget`` is the actual wait this call was given (callers may
        use less than ``self.timeout``, e.g. the 2 s stop/ping waits or
        a deadline-bounded query), so the timeout message reports the
        real number.  Replies carrying a different ``call_id`` belong
        to abandoned calls (deadline fired, parent timed out first) and
        are discarded, keeping the pipe aligned without killing a
        worker that is merely slow.
        """
        if budget is None:
            budget = self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerFailure(
                    f"shard {worker.index}: call timed out after "
                    f"{budget:.1f}s")
            try:
                ready = worker.conn.poll(min(0.05, remaining))
            except (OSError, ValueError) as exc:
                raise _WorkerFailure(
                    f"shard {worker.index}: pipe broken: "
                    f"{exc}") from None
            if ready:
                try:
                    reply_id, reply = worker.conn.recv()
                except (EOFError, OSError) as exc:
                    raise _WorkerFailure(
                        f"shard {worker.index}: recv failed: "
                        f"{exc}") from None
                if call_id is not None and reply_id != call_id:
                    continue    # stale reply from an abandoned call
                if reply[0] == "error":
                    raise _rebuild_error(reply[1], reply[2])
                if reply[0] == "okt":
                    # Traced reply: adopt the worker's span records
                    # into the installed recorder.
                    _obs.adopt_spans(reply[2])
                if self._first_reply_ts is None:
                    self._first_reply_ts = time.perf_counter()
                return reply[1]
            if not worker.process.is_alive():
                raise _WorkerFailure(
                    f"shard {worker.index}: worker died (exit code "
                    f"{worker.process.exitcode})")

    def _scatter(self, shard_ids, message_for) -> list:
        """Strict fan-out: every shard must answer or the call fails.

        Used by lifecycle and update operations, where silently
        skipping a shard would diverge parent and worker state."""
        return [reply for __, reply in
                self._fanout(shard_ids, message_for, qid=None)]

    def _fanout(self, shard_ids, message_for,
                qid: str | None = None) -> list[tuple[int, object]]:
        """Fan out and return ``(shard, reply)`` pairs in shard order.

        With ``degraded="partial"`` and a ``qid`` (i.e. a read-only
        query fan-out), pure infrastructure failures drop their shard
        from the answer: the healthy pairs are returned and the query
        is annotated on :attr:`partials` / :attr:`incidents` and the
        ``shard.partial_results`` counter.  Application-level errors —
        and any failure in strict mode — raise as before.
        """
        shard_ids = list(shard_ids)
        replies, failures = self._scatter_impl(shard_ids, message_for)
        if failures:
            infra_only = all(isinstance(exc, ShardError)
                             for __, exc in failures)
            if not (qid is not None and self.degraded == "partial"
                    and infra_only):
                for __, exc in failures:
                    if isinstance(exc, QueryTimeout):
                        raise exc
                raise failures[0][1]
            failed = sorted(index for index, __ in failures)
            reason = "; ".join(f"shard {index}: {exc}"
                               for index, exc in failures)
            _obs.count("shard.partial_results")
            self.partials.append({"qid": qid, "failed_shards": failed,
                                  "reason": reason,
                                  "trace_id": _trace.current_trace_id()})
            self.incidents.append(
                f"PartialResult: {qid} answered without shard(s) "
                f"{failed}: {reason}")
        return [(index, replies[index]) for index in shard_ids
                if index in replies]

    def _scatter_impl(self, shard_ids, message_for):
        """Send to every shard, then collect every reply.

        The send phase is non-blocking (pipes buffer), so workers
        compute in parallel; the collect phase reads each reply with
        the per-call deadline.  Infrastructure failures go through the
        shared breaker/backoff/respawn recovery; the collect phase
        always drains every live shard before reporting, keeping pipes
        message-aligned.  Returns ``(replies, failures)`` where
        ``replies`` maps shard -> result and ``failures`` lists
        ``(shard, exception)`` for everything else.
        """
        # Resolve any active deadline once, before the first send, so a
        # pre-expired deadline cannot abort the loop with replies still
        # in flight (which would misalign the pipes).
        remaining = None
        budget = self.timeout
        active = _deadline.current()
        if active is not None:
            remaining = active.remaining()
            if remaining <= 0:
                raise QueryTimeout(
                    "deadline expired before shard fan-out",
                    budget_seconds=active.budget)
            budget = min(self.timeout, remaining + DEADLINE_GRACE)
        sent: dict[int, tuple] = {}
        call_ids: dict[int, int] = {}
        failed: dict[int, _WorkerFailure] = {}
        skipped: set[int] = set()
        results: dict[int, object] = {}
        failures: list[tuple[int, Exception]] = []
        for index in shard_ids:
            message = message_for(index)
            sent[index] = message
            try:
                self._breakers[index].allow()
            except CircuitOpen as exc:
                skipped.add(index)
                failures.append((index, exc))
                continue
            worker = self._workers[index]
            try:
                if worker is None or not worker.process.is_alive():
                    raise _WorkerFailure(
                        f"shard {index}: worker not running")
                wire = (message if remaining is None
                        else ("deadline", remaining, message))
                wire = self._trace_wire(wire)
                call_ids[index] = worker.next_call_id()
                self._send(worker, (call_ids[index], wire),
                           op=message[0])
            except _WorkerFailure as failure:
                failed[index] = failure
        deadline = time.monotonic() + budget
        for index in shard_ids:
            if index in failed or index in skipped:
                continue
            try:
                results[index] = self._recv(self._workers[index],
                                            deadline, budget,
                                            call_ids[index])
            except _WorkerFailure as failure:
                failed[index] = failure
            except Exception as exc:  # application-level, not retried
                failures.append((index, exc))
            else:
                self._breakers[index].record_success()
        # Recover infrastructure failures on respawned workers.
        for index, failure in failed.items():
            try:
                results[index] = self._retry_after_failure(
                    index, sent[index], failure)
            except Exception as exc:
                failures.append((index, exc))
        return results, failures


def _first_descendant(element, tag: str):
    """The first descendant element with ``tag`` (document order)."""
    for child in element.children:
        if getattr(child, "kind", None) != "element":
            continue
        if child.tag == tag:
            return child
        found = _first_descendant(child, tag)
        if found is not None:
            return found
    return None


_UNESCAPES = (("&lt;", "<"), ("&gt;", ">"), ("&quot;", '"'),
              ("&apos;", "'"), ("&amp;", "&"))


def _sort_key_of(value: str, tag: str) -> str:
    """Extract the order-by key from one serialized result fragment."""
    marker = f"<{tag}>"
    start = value.find(marker)
    if start < 0:
        return ""
    start += len(marker)
    end = value.find(f"</{tag}>", start)
    if end < 0:
        return ""
    key = value[start:end]
    for entity, char in _UNESCAPES:
        key = key.replace(entity, char)
    return key


def _stable_sort_by_key(values: list[str], tag: str) -> list[str]:
    """Stable re-sort of ordinal-ordered fragments by their sort key.

    Reproduces XQuery ``order by`` semantics: the input is already in
    document order (global ordinals), and Python's ``sorted`` is
    stable, so equal keys keep document order — exactly the oracle's
    tie-breaking.
    """
    return sorted(values, key=lambda value: _sort_key_of(value, tag))


__all__ = ["ShardedEngine", "shard_of", "DEFAULT_TIMEOUT"]
