"""Sharded multi-process execution service (``repro.core.shard``).

XBench 1.0 is "a single machine benchmark"; the paper names distributed
operation as a planned extension, and our own multiuser harness admits
that the GIL serializes all CPU work.  This module is the first layer
that scales with cores: a :class:`ShardedEngine` partitions a
multi-document corpus across N worker *processes* by document-name hash,
each worker owning a fully loaded engine instance built through the
registry factory (:func:`repro.engines.create`), with scatter-gather
``bulk_load`` / ``execute`` / update operations over a pipe-based RPC
protocol.

Correctness model
-----------------

The single-process native engine is the oracle, and its inter-document
order is parse order (:class:`~repro.xml.nodes.Document` serials).  The
service reproduces that order exactly:

* every main document receives a **global ordinal** at partition time;
* *document-selection* queries (the default) are evaluated **per
  document** on each shard (:meth:`Engine.execute_per_document`) and
  reassembled in ordinal order — byte-identical to a whole-collection
  scan;
* queries with explicit merge metadata on the workload
  (:meth:`WorkloadQuery.merge_for`) use cheaper plans: ``point`` queries
  (unique document id) run whole-shard and concatenate, ``sorted``
  queries re-sort per-document results by their order-by key,
  ``regroup`` queries re-aggregate per-shard ``<group>`` fragments, and
  ``route`` queries go straight to the shard owning the named document;
* reference documents named by
  :attr:`DatabaseClass.replicated_documents` (DC/MD's flat tables) are
  replicated to every shard so cross-document joins (Q19) still resolve;
* single-document classes route everything to one *home* shard.

Robustness
----------

Every RPC has a per-call timeout enforced with a poll loop that also
watches worker liveness, so a killed worker is detected in ~50 ms rather
than hanging.  A dead or timed-out worker is respawned and its state
replayed — bulk load, index state and the per-shard journal of update
operations — and the call retried; exhausted retries raise
:class:`~repro.errors.ShardError`.  Incidents are recorded on
:attr:`ShardedEngine.incidents` (surfaced in benchmark reports) and
counted on the ``shard.respawns`` obs counter.  Application-level errors
raised inside a worker (e.g. ``UnsupportedQuery``) are re-raised under
their own exception type and never retried.
"""

from __future__ import annotations

import builtins
import multiprocessing
import threading
import time
import zlib
from dataclasses import dataclass, field

from .. import errors as _errors_module
from ..databases import CLASSES_BY_KEY
from ..databases.base import DatabaseClass
from ..engines import create
from ..engines.base import Engine, LoadStats
from ..errors import ShardError, UnsupportedOperation
from ..obs import recorder as _obs
from ..workload.queries import QUERIES_BY_ID
from ..xml.nodes import Text
from ..xml.parser import parse_document
from ..xml.serializer import serialize

#: Default per-RPC timeout (seconds).  Bulk loads at large scales are
#: the slowest calls; queries finish orders of magnitude faster.
DEFAULT_TIMEOUT = 120.0


def shard_of(name: str, shards: int) -> int:
    """The shard owning document ``name``.

    Uses ``crc32`` rather than the builtin ``hash`` because the latter
    is salted per process — partitioning must agree across runs (and
    across parent/worker processes).
    """
    return zlib.crc32(name.encode("utf-8")) % shards


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _shard_worker(conn, engine_key: str) -> None:
    """Worker process main loop: one engine, one duplex pipe.

    Replies ``("ok", result)`` or ``("error", type_name, message)``;
    the parent reconstructs exceptions from :mod:`repro.errors` (or
    builtins) by type name.
    """
    # The worker is forked from the parent, which may have an obs
    # recorder installed; observations recorded here would die with the
    # process, so drop the inherited recorder and make the hooks no-op.
    _obs.uninstall()
    engine: Engine | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        try:
            if op == "load":
                __, class_key, mains, replicated = message
                engine = create(engine_key)
                db_class = CLASSES_BY_KEY[class_key]
                texts = [(name, text) for __ord, name, text in mains]
                texts.extend(replicated)
                stats = engine.timed_load(db_class, texts)
                result = {"documents": stats.documents,
                          "bytes": stats.bytes, "rows": stats.rows,
                          "seconds": stats.seconds}
            elif op == "indexes":
                engine.create_indexes(list(message[1]))
                result = None
            elif op == "drop_indexes":
                engine.drop_indexes()
                result = None
            elif op == "execute":
                __, qid, params = message
                result = engine.execute(qid, dict(params))
            elif op == "execute_per_doc":
                __, qid, params, names = message
                try:
                    parts = engine.execute_per_document(
                        qid, dict(params), list(names))
                    result = {"mode": "per_doc", "parts": parts}
                except UnsupportedOperation:
                    result = {"mode": "whole",
                              "values": engine.execute(qid, dict(params))}
            elif op == "adhoc":
                __, text, params = message
                result = engine.adhoc(text, dict(params)).values
            elif op == "insert":
                __, name, text = message
                engine.insert_document(name, text)
                result = None
            elif op == "delete":
                engine.delete_document(message[1])
                result = None
            elif op == "update_value":
                __, id_path, id_value, target_tag, new_value = message
                result = engine.update_value(id_path, id_value,
                                             target_tag, new_value)
            elif op == "ping":
                result = "pong"
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                raise ShardError(f"unknown worker op {op!r}")
            conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except (OSError, ValueError):
                break
    conn.close()


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Reconstruct a worker-side exception by type name."""
    for namespace in (_errors_module, builtins):
        cls = getattr(namespace, type_name, None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                return cls(message)
            except TypeError:
                break
    return ShardError(f"worker raised {type_name}: {message}")


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _WorkerFailure(Exception):
    """Internal: an RPC failed at the infrastructure level (worker dead,
    pipe broken, or call timed out) — eligible for respawn + retry."""


@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection


@dataclass
class _ShardState:
    """Everything needed to (re)build one shard's engine."""

    #: main documents owned by this shard: (ordinal, name, text).
    mains: list[tuple[int, str, str]] = field(default_factory=list)
    #: update operations applied since load, replayed on respawn.
    journal: list[tuple] = field(default_factory=list)


class ShardedEngine(Engine):
    """Engine facade that scatter-gathers over N worker processes.

    Satisfies the full :class:`Engine` contract — ``timed_load`` /
    ``timed_execute`` / updates / ``adhoc`` / context manager — so the
    benchmark driver, the multiuser harness and the CLI treat it exactly
    like a local engine.  Public operations are serialized by an RLock
    (concurrent streams queue at the service); each operation still fans
    out across all workers in parallel.
    """

    def __init__(self, engine_key: str = "native", shards: int = 2,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 1) -> None:
        super().__init__()
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        inner = create(engine_key)   # metadata + check_supported proxy
        self._inner = inner
        self.engine_key = engine_key
        self.shards = shards
        self.timeout = timeout
        self.retries = retries
        self.key = engine_key
        self.row_label = f"{inner.row_label} x{shards}"
        self.description = (f"{inner.description} — sharded across "
                            f"{shards} worker processes")
        #: infrastructure incidents (respawns, retries) for the report.
        self.incidents: list[str] = []
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[_Worker | None] = [None] * shards
        self._states = [_ShardState() for __ in range(shards)]
        self._replicated: list[tuple[str, str]] = []
        self._ordinals: dict[str, int] = {}
        self._next_ordinal = 0
        self._index_paths: list[str] = []
        self._class_key: str | None = None
        self._home: int | None = None   # single-document classes

    # -- configuration gating ------------------------------------------------

    def check_supported(self, db_class: DatabaseClass,
                        scale_name: str) -> None:
        self._inner.check_supported(db_class, scale_name)

    # -- partitioning --------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard owning main document ``name``."""
        if self._home is not None:
            return self._home
        return shard_of(name, self.shards)

    def _partition(self, db_class: DatabaseClass, texts) -> None:
        replicated_names = set(db_class.replicated_documents)
        for name, text in texts:
            if name in replicated_names:
                self._replicated.append((name, text))
                continue
            if db_class.single_document and self._home is None:
                # All of a single-document class lives on one shard.
                self._home = shard_of(name, self.shards)
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            self._states[self.shard_of(name)].mains.append(
                (ordinal, name, text))

    # -- lifecycle -----------------------------------------------------------

    def bulk_load(self, db_class: DatabaseClass, texts) -> LoadStats:
        with self._lock:
            self._reset_state()
            self._class_key = db_class.key
            self._partition(db_class, texts)
            with _obs.span("shard.bulk_load", shards=self.shards,
                           engine=self.engine_key):
                for index in range(self.shards):
                    self._spawn(index)
                replies = self._scatter(range(self.shards),
                                        self._load_message)
            documents = self._next_ordinal + len(self._replicated)
            loaded_bytes = (sum(len(t) for __, __n, t in
                                self._iter_mains())
                            + sum(len(t) for __, t in self._replicated))
            return LoadStats(
                documents=documents, bytes=loaded_bytes,
                rows=sum(reply["rows"] for reply in replies),
                notes=[f"sharded across {self.shards} workers "
                       f"({self.engine_key})"])

    def _iter_mains(self):
        for state in self._states:
            yield from state.mains

    def _load_message(self, index: int) -> tuple:
        mains = sorted(self._states[index].mains)
        return ("load", self._class_key, mains, list(self._replicated))

    def _reset_state(self) -> None:
        self._stop_workers()
        self._states = [_ShardState() for __ in range(self.shards)]
        self._replicated = []
        self._ordinals = {}
        self._next_ordinal = 0
        self._index_paths = []
        self._class_key = None
        self._home = None
        self.incidents = []

    def _release(self) -> None:
        with self._lock:
            self._reset_state()

    def _stop_workers(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
                deadline = time.monotonic() + 2.0
                self._recv(worker, deadline)
            except (_WorkerFailure, OSError, ValueError):
                pass
            self._terminate(worker)
            self._workers[index] = None

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)

    # -- indexes -------------------------------------------------------------

    def create_indexes(self, paths: list[str]) -> None:
        with self._lock:
            self._index_paths.extend(
                path for path in paths if path not in self._index_paths)
            self._scatter(range(self.shards),
                          lambda __: ("indexes", list(paths)))

    def drop_indexes(self) -> None:
        with self._lock:
            self._index_paths = []
            self._scatter(range(self.shards),
                          lambda __: ("drop_indexes",))

    # -- query execution -----------------------------------------------------

    def execute(self, qid: str, params: dict) -> list[str]:
        with self._lock:
            self._require_loaded()
            assert self.db_class is not None
            spec = QUERIES_BY_ID[qid].merge_for(self.db_class.key)
            if self.db_class.single_document:
                spec = {"kind": "home"}
            kind = spec["kind"]
            _obs.count("shard.fanout_calls")
            with _obs.plan_node("shard.fanout", shards=self.shards,
                                merge=kind, qid=qid) as node:
                values = self._execute_merged(qid, params, spec)
                node.add(rows_out=len(values))
            return values

    def _execute_merged(self, qid: str, params: dict,
                        spec: dict) -> list[str]:
        kind = spec["kind"]
        if kind == "home":
            home = self._home if self._home is not None else 0
            return self._call(home, ("execute", qid, dict(params)))
        if kind == "route":
            name = str(params[spec["param"]])
            return self._call(self.shard_of(name),
                              ("execute", qid, dict(params)))
        if kind == "point":
            replies = self._scatter(
                range(self.shards),
                lambda __: ("execute", qid, dict(params)))
            return [value for values in replies for value in values]
        if kind == "regroup":
            replies = self._scatter(
                range(self.shards),
                lambda __: ("execute", qid, dict(params)))
            return self._merge_regroup(replies, spec)
        # concat / sorted: per-document evaluation on every shard.
        replies = self._scatter(
            range(self.shards),
            lambda index: ("execute_per_doc", qid, dict(params),
                           [name for __, name in
                            self._shard_names(index)]))
        merged = self._merge_per_document(replies)
        if kind == "sorted":
            merged = _stable_sort_by_key(merged, spec["key"])
        return merged

    def _shard_names(self, index: int) -> list[tuple[int, str]]:
        return sorted((ordinal, name) for ordinal, name, __ in
                      self._states[index].mains)

    def _merge_per_document(self, replies: list[dict]) -> list[str]:
        """Reassemble per-document results in global ordinal order.

        Shards whose engine cannot scope evaluation per document fall
        back to whole-shard results; those blocks are ordered by the
        shard's smallest ordinal — correct only when results do not
        interleave across shards (hence the native engine, which
        supports per-document evaluation, is the sharding default).
        """
        keyed: list[tuple[int, int, list[str]]] = []
        for index, reply in enumerate(replies):
            if reply["mode"] == "per_doc":
                for name, values in reply["parts"]:
                    ordinal = self._ordinals.get(name)
                    if ordinal is not None and values:
                        keyed.append((ordinal, 0, values))
            else:
                names = self._shard_names(index)
                block_ordinal = names[0][0] if names else index
                keyed.append((block_ordinal, 1, reply["values"]))
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        return [value for __, __m, values in keyed for value in values]

    def _merge_regroup(self, replies: list[list[str]],
                       spec: dict) -> list[str]:
        """Re-aggregate per-shard ``<group>`` fragments.

        Each fragment carries a ``group_by`` child (the key) and a
        ``total`` child (the per-shard count); keys are unioned, totals
        summed, and the first fragment seen for a key is re-serialized
        with the summed total — matching the oracle's ``order by`` on
        the group key.
        """
        group_tag, total_tag = spec["group_by"], spec["total"]
        groups: dict[str, tuple[object, object, int]] = {}
        for values in replies:
            for value in values:
                root = parse_document(value).root_element
                key_el = _first_descendant(root, group_tag)
                total_el = _first_descendant(root, total_tag)
                key = key_el.text_content() if key_el is not None else ""
                total = int(total_el.text_content()) \
                    if total_el is not None else 0
                if key in groups:
                    rep, rep_total_el, seen = groups[key]
                    groups[key] = (rep, rep_total_el, seen + total)
                else:
                    groups[key] = (root, total_el, total)
        out = []
        for key in sorted(groups):
            root, total_el, total = groups[key]
            if total_el is not None:
                replacement = Text(str(total))
                replacement.parent = total_el
                total_el.children = [replacement]
            out.append(serialize(root))
        return out

    # -- ad-hoc queries ------------------------------------------------------

    def _adhoc(self, text: str, params: dict) -> list[str]:
        with self._lock:
            if self._home is not None:
                return self._call(self._home, ("adhoc", text, params))
            replies = self._scatter(
                range(self.shards), lambda __: ("adhoc", text, params))
            return [value for values in replies for value in values]

    # -- update workload -----------------------------------------------------

    def insert_document(self, name: str, text: str) -> None:
        with self._lock:
            self._require_loaded()
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[name] = ordinal
            index = self.shard_of(name)
            self._states[index].mains.append((ordinal, name, text))
            try:
                self._call(index, ("insert", name, text))
            except Exception:
                # Keep parent bookkeeping consistent with the worker.
                self._states[index].mains.pop()
                del self._ordinals[name]
                self._next_ordinal = ordinal
                raise

    def delete_document(self, name: str) -> None:
        with self._lock:
            self._require_loaded()
            index = self.shard_of(name)
            self._call(index, ("delete", name))
            self._ordinals.pop(name, None)
            self._states[index].mains = [
                entry for entry in self._states[index].mains
                if entry[1] != name]

    def update_value(self, id_path: str, id_value: str, target_tag: str,
                     new_value: str) -> int:
        with self._lock:
            self._require_loaded()
            message = ("update_value", id_path, id_value, target_tag,
                       new_value)
            replies = self._scatter(range(self.shards),
                                    lambda __: message)
            for state in self._states:
                state.journal.append(message)
            return sum(replies)

    # -- RPC plumbing --------------------------------------------------------

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker, args=(child_conn, self.engine_key),
            name=f"repro-shard-{index}", daemon=True)
        process.start()
        child_conn.close()
        self._workers[index] = _Worker(index, process, parent_conn)

    def _respawn(self, index: int, reason: str) -> None:
        """Replace a dead worker and replay its state."""
        _obs.count("shard.respawns")
        incident = f"shard {index} respawned: {reason}"
        self.incidents.append(incident)
        worker = self._workers[index]
        if worker is not None:
            self._terminate(worker)
        self._spawn(index)
        if self._class_key is None:
            return
        self._call_raw(index, self._load_message(index))
        if self._index_paths:
            self._call_raw(index, ("indexes", list(self._index_paths)))
        for op in self._states[index].journal:
            self._call_raw(index, op)

    def _call(self, index: int, message: tuple):
        """One RPC with respawn-and-retry on infrastructure failure."""
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                return self._call_raw(index, message)
            except _WorkerFailure as failure:
                if attempt + 1 >= attempts:
                    raise ShardError(
                        f"shard {index}: {failure} "
                        f"(after {attempts} attempts)") from None
                self._respawn(index, str(failure))
        raise AssertionError("unreachable")

    def _call_raw(self, index: int, message: tuple):
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            raise _WorkerFailure("worker not running")
        self._send(worker, message)
        return self._recv(worker,
                          time.monotonic() + self.timeout)

    @staticmethod
    def _send(worker: _Worker, message: tuple) -> None:
        try:
            worker.conn.send(message)
        except (OSError, ValueError) as exc:
            raise _WorkerFailure(f"send failed: {exc}") from None

    def _recv(self, worker: _Worker, deadline: float):
        """Receive one reply, watching liveness every 50 ms."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerFailure(
                    f"call timed out after {self.timeout:.0f}s")
            try:
                ready = worker.conn.poll(min(0.05, remaining))
            except (OSError, ValueError) as exc:
                raise _WorkerFailure(f"pipe broken: {exc}") from None
            if ready:
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError) as exc:
                    raise _WorkerFailure(
                        f"recv failed: {exc}") from None
                if reply[0] == "error":
                    raise _rebuild_error(reply[1], reply[2])
                return reply[1]
            if not worker.process.is_alive():
                raise _WorkerFailure(
                    f"worker died (exit code "
                    f"{worker.process.exitcode})")

    def _scatter(self, shard_ids, message_for) -> list:
        """Send to every shard, then collect every reply.

        The send phase is non-blocking (pipes buffer), so workers
        compute in parallel; the collect phase reads each reply with
        the per-call deadline.  Failures respawn + retry per shard; the
        collect phase always drains every shard before re-raising the
        first application-level error, keeping pipes message-aligned.
        """
        shard_ids = list(shard_ids)
        sent: dict[int, tuple] = {}
        failed: dict[int, _WorkerFailure] = {}
        for index in shard_ids:
            message = message_for(index)
            sent[index] = message
            worker = self._workers[index]
            try:
                if worker is None or not worker.process.is_alive():
                    raise _WorkerFailure("worker not running")
                self._send(worker, message)
            except _WorkerFailure as failure:
                failed[index] = failure
        deadline = time.monotonic() + self.timeout
        results: dict[int, object] = {}
        errors: list[tuple[int, Exception]] = []
        for index in shard_ids:
            if index in failed:
                continue
            try:
                results[index] = self._recv(self._workers[index],
                                            deadline)
            except _WorkerFailure as failure:
                failed[index] = failure
            except Exception as exc:  # application-level, not retried
                errors.append((index, exc))
        # Retry infrastructure failures on respawned workers.
        for index, failure in failed.items():
            if self.retries < 1:
                errors.append((index, ShardError(
                    f"shard {index}: {failure}")))
                continue
            try:
                self._respawn(index, str(failure))
                results[index] = self._call_raw(index, sent[index])
            except _WorkerFailure as again:
                errors.append((index, ShardError(
                    f"shard {index}: {again} (after respawn)")))
            except Exception as exc:
                errors.append((index, exc))
        if errors:
            raise errors[0][1]
        return [results[index] for index in shard_ids]


def _first_descendant(element, tag: str):
    """The first descendant element with ``tag`` (document order)."""
    for child in element.children:
        if getattr(child, "kind", None) != "element":
            continue
        if child.tag == tag:
            return child
        found = _first_descendant(child, tag)
        if found is not None:
            return found
    return None


_UNESCAPES = (("&lt;", "<"), ("&gt;", ">"), ("&quot;", '"'),
              ("&apos;", "'"), ("&amp;", "&"))


def _sort_key_of(value: str, tag: str) -> str:
    """Extract the order-by key from one serialized result fragment."""
    marker = f"<{tag}>"
    start = value.find(marker)
    if start < 0:
        return ""
    start += len(marker)
    end = value.find(f"</{tag}>", start)
    if end < 0:
        return ""
    key = value[start:end]
    for entity, char in _UNESCAPES:
        key = key.replace(entity, char)
    return key


def _stable_sort_by_key(values: list[str], tag: str) -> list[str]:
    """Stable re-sort of ordinal-ordered fragments by their sort key.

    Reproduces XQuery ``order by`` semantics: the input is already in
    document order (global ordinals), and Python's ``sorted`` is
    stable, so equal keys keep document order — exactly the oracle's
    tie-breaking.
    """
    return sorted(values, key=lambda value: _sort_key_of(value, tag))


__all__ = ["ShardedEngine", "shard_of", "DEFAULT_TIMEOUT"]
