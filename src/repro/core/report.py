"""Render experiment results in the paper's table layout.

The paper's result tables have one row per system (Xcolumn, Xcollection,
SQL Server, X-Hive) and columns grouped by database class (DC/SD, DC/MD,
TC/SD, TC/MD), each split into Small/Normal/Large.  ``-`` marks
configurations a system cannot run.  Cells whose result set disagrees
with the native oracle carry a ``*`` (the paper reports such times while
noting the results "are not necessarily accurate").
"""

from __future__ import annotations

import re

from ..databases import CLASSES_BY_KEY
from ..engines import make_engines
from .benchmark import ExperimentResult, SuiteResult

#: paper column order.
CLASS_ORDER = ("dcsd", "dcmd", "tcsd", "tcmd")
SCALE_ORDER = ("small", "normal", "large")

#: the sharded execution service's row suffix (``X-Hive x2``).
_SHARD_SUFFIX = re.compile(r" x\d+$")


def _row_labels(result: ExperimentResult) -> list[str]:
    """Table rows for one result, in paper order.

    The four paper rows always render (an engine with no cells shows
    ``-``, matching the paper's layout) — unless the run was entirely
    sharded, where dash rows for the unsharded systems would just be
    noise.  Sharded rows (``<system> xN``) sort with their base
    system, so a ``--shards`` run keeps the paper's row order.
    """
    paper_order = [engine.row_label for engine in make_engines()]
    present = {row for (row, __, ___) in result.cells}

    def order(row: str) -> tuple[int, str]:
        base = _SHARD_SUFFIX.sub("", row)
        index = (paper_order.index(base) if base in paper_order
                 else len(paper_order))
        return (index, row)

    if present and not (present & set(paper_order)):
        return sorted(present, key=order)
    return sorted(set(paper_order) | present, key=order)


def format_cell(result: ExperimentResult, row_label: str, class_key: str,
                scale_name: str) -> str:
    cell = result.cells.get((row_label, class_key, scale_name))
    if cell is None or cell.seconds is None:
        return "-"
    value = cell.seconds * (1000.0 if result.unit == "ms" else 1.0)
    if value >= 100:
        text = f"{value:.0f}"
    elif value >= 1:
        text = f"{value:.1f}"
    else:
        text = f"{value:.2f}"
    if cell.correct is False:
        text += "*"
    return text


def format_table(result: ExperimentResult,
                 scale_names: tuple[str, ...] = SCALE_ORDER,
                 class_keys: tuple[str, ...] = CLASS_ORDER) -> str:
    """One experiment as a paper-style ASCII table."""
    row_labels = _row_labels(result)
    class_keys = tuple(key for key in class_keys
                       if any((row, key, scale) in result.cells
                              for row in row_labels
                              for scale in scale_names))

    headers = ["System"]
    for class_key in class_keys:
        label = CLASSES_BY_KEY[class_key].label
        for scale_name in scale_names:
            headers.append(f"{label} {scale_name[0].upper()}")

    rows = []
    for row_label in row_labels:
        row = [row_label]
        for class_key in class_keys:
            for scale_name in scale_names:
                row.append(format_cell(result, row_label, class_key,
                                       scale_name))
        rows.append(row)

    widths = [max(len(row[index]) for row in [headers] + rows)
              for index in range(len(headers))]

    def format_row(row: list[str]) -> str:
        return "  ".join(value.rjust(width)
                         for value, width in zip(row, widths))

    unit_note = ("(in Seconds)" if result.unit == "s"
                 else "(in Milliseconds)")
    lines = [f"{result.title} {unit_note}", format_row(headers),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(format_row(row) for row in rows)
    lines.append("- : configuration not supported; "
                 "* : result differs from native oracle")
    return "\n".join(lines)


def format_suite(suite: SuiteResult,
                 scale_names: tuple[str, ...] = SCALE_ORDER) -> str:
    """All tables of one run, in the paper's order (Tables 4-9)."""
    parts = [format_table(suite.load, scale_names)]
    for qid in ("Q5", "Q12", "Q17", "Q8", "Q14"):
        if qid in suite.queries:
            parts.append(format_table(suite.queries[qid], scale_names))
    for qid, result in suite.queries.items():
        if qid not in ("Q5", "Q12", "Q17", "Q8", "Q14"):
            parts.append(format_table(result, scale_names))
    return "\n\n".join(parts)


def suite_records(suite: SuiteResult) -> list[dict]:
    """Flatten a suite into analysis-friendly records.

    One dict per measured (or unsupported) cell with keys: ``table``
    (load or query id), ``system``, ``class``, ``scale``, ``seconds``
    (None for ``-`` cells) and ``correct``.  Cells carrying warm-run
    stats or obs counters (``repeats > 1`` / ``observe=True``) include
    them under ``warm`` and ``counters``.
    """
    records = []

    def add(table: str, result: ExperimentResult) -> None:
        for (row_label, class_key, scale_name), cell in \
                sorted(result.cells.items()):
            record = {
                "table": table,
                "system": row_label,
                "class": CLASSES_BY_KEY[class_key].label,
                "scale": scale_name,
                "seconds": cell.seconds,
                "correct": cell.correct,
            }
            if cell.warm:
                record["warm"] = dict(cell.warm)
            if cell.counters:
                record["counters"] = dict(cell.counters)
            records.append(record)

    add("load", suite.load)
    for qid, result in suite.queries.items():
        add(qid, result)
    return records


def format_csv(suite: SuiteResult) -> str:
    """The suite as CSV (header + one row per cell)."""
    lines = ["table,system,class,scale,seconds,correct"]
    for record in suite_records(suite):
        seconds = "" if record["seconds"] is None \
            else f"{record['seconds']:.6f}"
        correct = "" if record["correct"] is None \
            else str(record["correct"]).lower()
        lines.append(f"{record['table']},{record['system']},"
                     f"{record['class']},{record['scale']},"
                     f"{seconds},{correct}")
    return "\n".join(lines)


def format_json(suite: SuiteResult) -> str:
    """The suite as a JSON array of cell records."""
    import json
    return json.dumps(suite_records(suite), indent=2)


def shape_summary(suite: SuiteResult) -> list[str]:
    """Qualitative findings, stated like the paper's Section 3.2 prose.

    Returns human-readable statements about who wins where, computed from
    the measured cells — used by EXPERIMENTS.md and by the sanity tests
    that assert the paper's shapes hold.
    """
    statements = []
    load = suite.load

    def seconds(row: str, class_key: str, scale: str) -> float | None:
        cell = load.cells.get((row, class_key, scale))
        return None if cell is None else cell.seconds

    for class_key in CLASS_ORDER:
        native = seconds("X-Hive", class_key, "large")
        shredded = seconds("SQL Server", class_key, "large")
        if native is not None and shredded is not None:
            who = "native" if native < shredded else "relational"
            statements.append(
                f"bulk load {class_key} large: {who} faster "
                f"({native:.3f}s vs {shredded:.3f}s)")
    return statements
