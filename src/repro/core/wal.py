"""Durable write-ahead log for the per-shard replication journal.

The in-memory journal (:class:`repro.core.shard._ShardState`) is the
replication log: every acknowledged write appends one sequence-numbered
entry.  This module persists that stream so acknowledged writes survive
the process — the classic checkpointed-WAL shape that RadegastXDB (and
every durable DBMS) layers over its page store.

On-disk layout (one directory per shard)::

    <data_dir>/shard-<i>/wal/seg-<base_seq:012d>.wal

Each segment starts with a fixed header::

    RXWL | version u32 | shard u32 | base_seq u64

followed by length-prefixed frames::

    <u32 payload_len> <u32 crc32(payload)> <payload>

where the payload is the UTF-8 JSON array ``[seq, [op, ...]]`` — journal
ops are tuples of strings, so JSON round-trips them exactly and the log
stays inspectable with ``xxd``.  ``base_seq`` is the sequence of the
first record the segment *may* hold; segments are strictly ordered by
it, so compaction can delete a whole segment the moment the next
segment's base is at or below the checkpoint cutoff.

Corruption policy (exercised by the recovery tests):

* a **torn tail** — an incomplete frame at the end of the *last*
  segment, the signature of a crash mid-append — is truncated away on
  open (under ``fsync="always"`` that write was never acknowledged);
* a **corrupt mid-log record** (CRC mismatch on a fully-present frame)
  is *skipped*: :meth:`WriteAheadLog.records` keeps replaying the
  frames after it and the skip surfaces as a typed
  :class:`~repro.errors.WalCorruption` on :attr:`WriteAheadLog.incidents`
  — data loss is reported, not turned into a crash;
* an **implausible frame length** (past end-of-file, or absurdly large)
  means the length word itself is damaged and resynchronisation is
  impossible — the rest of that segment is abandoned (truncated when it
  is the live tail).

``fsync`` policy knob:

* ``"always"`` — fsync after every append: an acknowledged write is on
  stable storage before the client sees the ack (the kill -9 gate in CI
  runs this mode);
* ``"batch"`` — appends reach the OS immediately (``flush``) but fsync
  happens only on :meth:`WriteAheadLog.sync` (the checkpoint daemon
  calls it), rotation and close — a crash of the *process* loses
  nothing, a crash of the *machine* loses the tail since the last sync;
* ``"off"`` — never fsync; durability rides entirely on the OS.

Fault-injection sites (:mod:`repro.faults.plan`, free when no plan is
installed): ``wal.append`` (before the frame is written) and
``wal.fsync`` (before the fsync call) — the disk-fault chaos scenario
drives both.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

from ..errors import ShardError, WalCorruption
from ..faults import plan as _faults
from ..obs import recorder as _obs

WAL_MAGIC = b"RXWL"
WAL_VERSION = 1
#: magic, version, shard index, base sequence.
_SEG_HEADER = struct.Struct("<4sIIQ")
#: payload length, payload crc32.
_FRAME_HEADER = struct.Struct("<II")
#: hard ceiling on a single frame's payload — a length word beyond this
#: is treated as corruption (resync impossible), not as a giant record.
MAX_FRAME_BYTES = 64 * 1024 * 1024
#: default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

FSYNC_POLICIES = ("always", "batch", "off")


def wal_dir(data_dir: str | Path, shard: int) -> Path:
    """The WAL directory of shard ``shard`` under ``data_dir``."""
    return Path(data_dir) / f"shard-{shard}" / "wal"


def _segment_name(base_seq: int) -> str:
    return f"seg-{base_seq:012d}.wal"


def _encode_frame(seq: int, op: tuple) -> bytes:
    payload = json.dumps([seq, list(op)],
                         separators=(",", ":")).encode("utf-8")
    return _FRAME_HEADER.pack(len(payload),
                              zlib.crc32(payload)) + payload


class WriteAheadLog:
    """One shard's append-only segmented log.

    Opening scans the existing segments (crash recovery path): the torn
    tail of the last segment is truncated, mid-log CRC corruption is
    recorded on :attr:`incidents`, and appends resume at the end of the
    last segment.  :meth:`records` re-scans from disk — recovery calls
    it once to rebuild the journal suffix.
    """

    def __init__(self, data_dir: str | Path, shard: int, *,
                 fsync: str = "batch",
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ShardError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.shard = shard
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.dir = wal_dir(data_dir, shard)
        self.dir.mkdir(parents=True, exist_ok=True)
        #: typed corruption incidents found by open/replay scans.
        self.incidents: list[WalCorruption] = []
        #: highest sequence appended or recovered (0 = empty log).
        self.last_seq = 0
        self._handle = None
        self._active: Path | None = None
        self._recover_tail()

    # -- open-time scan ------------------------------------------------------

    def segments(self) -> list[Path]:
        """Existing segment paths in base-sequence order."""
        return sorted(self.dir.glob("seg-*.wal"))

    def _recover_tail(self) -> None:
        """Truncate the torn tail of the last segment and position
        appends after its last valid frame."""
        segments = self.segments()
        if not segments:
            self._open_segment(base_seq=1)
            return
        for path in segments[:-1]:
            # Full scan keeps last_seq exact; torn frames before the
            # last segment mean the file system lost an already-rotated
            # region — report, never truncate a non-tail segment.
            self._scan(path, truncate=False)
        last = segments[-1]
        self._scan(last, truncate=True)
        self._active = last
        self._handle = open(last, "ab")
        self._handle.seek(0, os.SEEK_END)

    def _scan(self, path: Path, *, truncate: bool,
              collect: list | None = None) -> None:
        """Validate one segment; optionally truncate its torn tail and
        collect ``(seq, op)`` tuples of the valid frames."""
        with open(path, "r+b" if truncate else "rb") as handle:
            data = handle.read()
            size = len(data)
            if size < _SEG_HEADER.size:
                self._corrupt(path, 0, "segment shorter than header")
                if truncate:
                    handle.truncate(0)
                    self._write_header(handle, self._base_of(path))
                return
            magic, version, shard, __base = _SEG_HEADER.unpack_from(
                data, 0)
            if magic != WAL_MAGIC or version != WAL_VERSION \
                    or shard != self.shard:
                self._corrupt(
                    path, 0,
                    f"bad segment header (magic {magic!r}, version "
                    f"{version}, shard {shard})")
                return
            offset = _SEG_HEADER.size
            good_end = offset
            while offset < size:
                if offset + _FRAME_HEADER.size > size:
                    self._corrupt(path, offset, "torn frame header")
                    break
                length, crc = _FRAME_HEADER.unpack_from(data, offset)
                if length > MAX_FRAME_BYTES:
                    self._corrupt(
                        path, offset,
                        f"implausible frame length {length}; "
                        "abandoning segment remainder")
                    break
                end = offset + _FRAME_HEADER.size + length
                if end > size:
                    self._corrupt(path, offset, "torn frame payload")
                    break
                payload = data[offset + _FRAME_HEADER.size:end]
                if zlib.crc32(payload) != crc:
                    # Mid-log corruption: skip this record, keep going.
                    if self._corrupt(path, offset,
                                     "crc mismatch; record skipped"):
                        _obs.count("wal.corrupt_records")
                    offset = end
                    good_end = end
                    continue
                try:
                    seq, op = json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    if self._corrupt(path, offset,
                                     "undecodable record skipped"):
                        _obs.count("wal.corrupt_records")
                    offset = end
                    good_end = end
                    continue
                self.last_seq = max(self.last_seq, int(seq))
                if collect is not None:
                    collect.append((int(seq), tuple(op)))
                offset = end
                good_end = end
            if truncate and good_end < size:
                handle.truncate(good_end)
                _obs.count("wal.torn_tails")

    def _corrupt(self, path: Path, offset: int, message: str) -> bool:
        # Scans run twice over the same frames (once at open, again
        # when recovery calls records()) — the same damage must not
        # surface as two incidents.  Returns whether it was new.
        for incident in self.incidents:
            if incident.path == str(path) \
                    and incident.offset == offset:
                return False
        self.incidents.append(
            WalCorruption(message, path=str(path), offset=offset))
        return True

    @staticmethod
    def _base_of(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 1

    # -- appending -----------------------------------------------------------

    def _write_header(self, handle, base_seq: int) -> None:
        handle.write(_SEG_HEADER.pack(WAL_MAGIC, WAL_VERSION,
                                      self.shard, base_seq))

    def _open_segment(self, base_seq: int) -> None:
        path = self.dir / _segment_name(base_seq)
        handle = open(path, "ab")
        handle.seek(0, os.SEEK_END)
        if handle.tell() == 0:
            self._write_header(handle, base_seq)
            handle.flush()
        self._active = path
        self._handle = handle
        _obs.count("wal.segments_opened")

    def append(self, seq: int, op: tuple) -> None:
        """Durably append one journal entry per the fsync policy."""
        _faults.inject("wal.append", shard=self.shard, seq=seq)
        frame = _encode_frame(seq, op)
        handle = self._handle
        if handle is None:
            raise ShardError(f"wal shard {self.shard}: log is closed")
        if handle.tell() + len(frame) > self.segment_bytes \
                and handle.tell() > _SEG_HEADER.size:
            self.rotate(next_base=seq)
            handle = self._handle
        try:
            handle.write(frame)
            handle.flush()
            if self.fsync == "always":
                self._fsync(handle)
        except OSError as exc:
            raise ShardError(
                f"wal shard {self.shard}: append failed: "
                f"{exc}") from exc
        self.last_seq = max(self.last_seq, seq)
        _obs.count("wal.appends")
        _obs.count("wal.bytes", len(frame))

    def _fsync(self, handle) -> None:
        _faults.inject("wal.fsync", shard=self.shard)
        os.fsync(handle.fileno())
        _obs.count("wal.fsyncs")

    def sync(self) -> None:
        """Force the active segment to stable storage (the ``batch``
        policy's flush point; a no-op under ``off``)."""
        if self._handle is None or self.fsync == "off":
            return
        try:
            self._handle.flush()
            self._fsync(self._handle)
        except OSError as exc:
            raise ShardError(
                f"wal shard {self.shard}: fsync failed: "
                f"{exc}") from exc

    def rotate(self, next_base: int | None = None) -> None:
        """Close the active segment and start a new one whose base is
        ``next_base`` (default: one past the last appended sequence)."""
        if self._handle is not None:
            if self.fsync != "off":
                try:
                    self._handle.flush()
                    self._fsync(self._handle)
                except OSError:
                    pass
            self._handle.close()
        self._open_segment(self.last_seq + 1 if next_base is None
                           else next_base)
        _obs.count("wal.segments_rotated")

    # -- compaction & replay -------------------------------------------------

    def truncate_below(self, cutoff_seq: int) -> int:
        """Delete segments whose records all have ``seq <= cutoff_seq``
        (checkpoint compaction).  The active segment is first rotated
        when it holds any records, so a checkpoint taken at the current
        committed sequence leaves only an empty live segment behind.
        Returns the number of segments deleted."""
        if self._handle is not None \
                and self._handle.tell() > _SEG_HEADER.size:
            # Rotate at last_seq + 1, never cutoff + 1: the active
            # segment may hold records above the cutoff (the newest
            # checkpoint's suffix, which the manifest fallback needs),
            # and the successor's base is what marks them retained.
            self.rotate()
        segments = self.segments()
        deleted = 0
        for path, successor in zip(segments, segments[1:]):
            # Everything in ``path`` is < successor's base.
            if self._base_of(successor) <= cutoff_seq + 1 \
                    and path != self._active:
                try:
                    path.unlink()
                    deleted += 1
                except OSError:
                    pass
        if deleted:
            _obs.count("wal.segments_compacted", deleted)
        return deleted

    def records(self, after_seq: int = 0) -> list[tuple[int, tuple]]:
        """Re-scan every segment and return the valid ``(seq, op)``
        records with ``seq > after_seq``, in log order.  Corruption
        found by the scan lands on :attr:`incidents` (recovery surfaces
        it as engine incidents)."""
        collected: list[tuple[int, tuple]] = []
        for path in self.segments():
            self._scan(path, truncate=False, collect=collected)
        return [(seq, op) for seq, op in collected if seq > after_seq]

    def disk_bytes(self) -> int:
        """Total on-disk size of all segments (the compaction bound)."""
        if self._handle is not None:
            try:
                self._handle.flush()
            except OSError:
                pass
        return sum(path.stat().st_size for path in self.segments()
                   if path.exists())

    def close(self) -> None:
        if self._handle is not None:
            try:
                if self.fsync != "off":
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


__all__ = ["WriteAheadLog", "wal_dir", "FSYNC_POLICIES",
           "DEFAULT_SEGMENT_BYTES", "WAL_MAGIC", "WAL_VERSION"]
