"""Per-class value indexes (the paper's Table 3).

"For fairness, we only create value indexes on the elements/attributes
that are most frequently used by the queries in each document class, and
can be implemented for all systems."
"""

from __future__ import annotations

#: class key -> index paths, exactly as Table 3 lists them.
TABLE3_INDEXES: dict[str, tuple[str, ...]] = {
    "tcsd": ("hw",),
    "tcmd": ("article/@id",),
    "dcsd": ("item/@id", "date_of_release"),
    "dcmd": ("order/@id",),
}


def indexes_for(class_key: str) -> tuple[str, ...]:
    """The Table 3 index paths for one database class."""
    return TABLE3_INDEXES.get(class_key, ())
