"""Cross-engine verification: every engine vs. the native oracle.

The paper repeatedly notes that the relational mappings "may not
generate correct results, even though we report their performance".
This module turns that caveat into a first-class report: for one (class,
scale) scenario it runs every translated query on every supported engine
and classifies each cell as

* ``ok``      — result sequence identical to the native engine's,
* ``differs`` — result differs (the mapping infidelities),
* ``-``       — engine unsupported on the class, or query untranslated.

Exposed on the CLI as ``xbench verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines import PAPER_ENGINE_KEYS, create
from ..errors import UnsupportedConfiguration, UnsupportedQuery
from ..workload import bind_params
from ..workload.queries import ALL_QUERIES
from .benchmark import XBench
from .indexes import indexes_for


@dataclass
class VerificationReport:
    """Outcome matrix: (engine label, qid) -> status string."""

    class_key: str
    scale_name: str
    cells: dict = field(default_factory=dict)
    query_ids: list = field(default_factory=list)
    engine_labels: list = field(default_factory=list)

    def status(self, engine_label: str, qid: str) -> str:
        return self.cells.get((engine_label, qid), "-")

    def mismatches(self) -> list[tuple[str, str]]:
        return sorted((label, qid)
                      for (label, qid), status in self.cells.items()
                      if status == "differs")

    def format(self) -> str:
        width = max(len(label) for label in self.engine_labels) + 2
        header = "Query".ljust(8) + "".join(
            label.rjust(width) for label in self.engine_labels)
        lines = [f"Verification matrix - {self.class_key} "
                 f"({self.scale_name} scale), oracle: X-Hive",
                 header, "-" * len(header)]
        for qid in self.query_ids:
            row = qid.ljust(8)
            for label in self.engine_labels:
                row += self.status(label, qid).rjust(width)
            lines.append(row)
        lines.append("ok: matches native oracle; differs: mapping "
                     "infidelity; -: unsupported/untranslated")
        return "\n".join(lines)


def verify_scenario(bench: XBench, class_key: str,
                    scale_name: str = "small",
                    shards: int = 0,
                    rpc_timeout: float | None = None,
                    replicas: int = 0) -> VerificationReport:
    """Build the verification matrix for one scenario.

    With ``shards > 1`` an extra row runs the native engine behind the
    sharded execution service (``rpc_timeout`` bounds its per-call
    waits), verifying that the scatter-gather merge is byte-identical
    to the single-process oracle.  With ``replicas > 0`` that row also
    provisions read replicas and reads under ``eventual`` consistency,
    so every cell additionally verifies that journal-shipped replica
    state answers byte-identically to the primaries.
    """
    scenario = bench.corpus.scenario(class_key, scale_name)
    query_ids = [query.qid for query in ALL_QUERIES
                 if query.applies_to(class_key)]
    report = VerificationReport(class_key, scale_name,
                                query_ids=query_ids)

    engines = sorted((create(key) for key in PAPER_ENGINE_KEYS),
                     key=lambda e: e.key != "native")
    if shards > 1:
        from .shard import ShardedEngine
        engines.insert(1, ShardedEngine(
            "native", shards=shards, timeout=rpc_timeout,
            replicas=replicas,
            default_consistency=("eventual" if replicas else "strong")))
    oracles: dict[str, list[str]] = {}
    for engine in engines:
        report.engine_labels.append(engine.row_label)
        try:
            engine.check_supported(scenario.db_class, scale_name)
        except UnsupportedConfiguration:
            continue
        try:
            engine.timed_load(scenario.db_class, scenario.texts)
            engine.create_indexes(list(indexes_for(class_key)))
            for qid in query_ids:
                params = bind_params(qid, class_key, scenario.units)
                try:
                    values = engine.execute(qid, params)
                except UnsupportedQuery:
                    continue
                if engine.key == "native" and qid not in oracles:
                    oracles[qid] = values
                    report.cells[(engine.row_label, qid)] = "ok"
                elif qid in oracles:
                    matches = values == oracles[qid]
                    report.cells[(engine.row_label, qid)] = \
                        "ok" if matches else "differs"
        finally:
            engine.close()
    return report
