"""XBench core: the benchmark driver, experiments, reporting, figures."""

from .benchmark import (
    BenchmarkConfig,
    Cell,
    CorpusCache,
    ExperimentResult,
    Scenario,
    SuiteResult,
    XBench,
    class_by_key,
)
from .diagrams import FIGURES, render_all_figures, render_figure
from .indexes import TABLE3_INDEXES, indexes_for
from .report import format_suite, format_table, shape_summary

__all__ = [
    "BenchmarkConfig",
    "Cell",
    "CorpusCache",
    "ExperimentResult",
    "Scenario",
    "SuiteResult",
    "XBench",
    "class_by_key",
    "FIGURES",
    "render_all_figures",
    "render_figure",
    "TABLE3_INDEXES",
    "indexes_for",
    "format_suite",
    "format_table",
    "shape_summary",
]
