"""The XBench driver: corpus preparation, loading, indexing, timing.

Mirrors the paper's experimental setup (Section 3.1):

* a separate database instance per (class, scale) scenario;
* bulk loading timed with validation off;
* the Table 3 value indexes created after loading;
* query times are cold-run wall-clock times;
* configurations a system cannot run are reported as ``-``.

The native engine doubles as the correctness oracle: result sets that
disagree with it are flagged, reproducing the paper's caveat that the
relational mappings "may not generate correct results, even though we
report their performance".
"""

from __future__ import annotations

import statistics
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

from ..databases import ALL_CLASSES, SCALES_BY_NAME
from ..databases.base import DatabaseClass, Scale
from ..engines import PAPER_ENGINE_KEYS, Engine, create
from ..errors import BenchmarkError, QueryTimeout, ShardError, \
    UnsupportedConfiguration, UnsupportedQuery
from ..faults.deadline import Deadline, deadline_scope
from ..obs import Recorder, observing
from ..obs import recorder as obs_hooks
from ..workload import bind_params
from ..workload.queries import EXPERIMENT_QUERIES
from ..xml.serializer import serialize
from .indexes import indexes_for


@dataclass
class BenchmarkConfig:
    """Knobs of one benchmark run.

    ``scale_divisor`` divides the paper's byte budgets (10 MB / 100 MB /
    1 GB) while preserving their 1:10:100 ratios; the default of 1000
    yields ~10 KB / ~100 KB / ~1 MB databases, which a pure-Python stack
    processes in benchmark-friendly time.  Lower it (e.g. 100) for
    larger, slower, higher-resolution runs.
    """

    scale_divisor: int = 1000
    seed: int = 42
    scale_names: tuple[str, ...] = ("small", "normal", "large")
    class_keys: tuple[str, ...] = ("dcsd", "dcmd", "tcsd", "tcmd")
    query_ids: tuple[str, ...] = EXPERIMENT_QUERIES
    #: create the Table 3 value indexes after loading.
    with_indexes: bool = True
    #: cross-check every engine's result against the native oracle.
    check_correctness: bool = True
    #: when set, scenario corpora are written under this directory and
    #: engines bulk-load by *reading the files* (the paper loads files;
    #: per-file I/O is what makes DC/MD loading dominate Experiment 1).
    corpus_dir: str | None = None
    #: restrict the run to these engine keys (None = all four).
    engine_keys: tuple[str, ...] | None = None
    #: executions per query cell.  The first (cold) run is the paper's
    #: Table 4-9 number; extra runs feed warm min/median stats and the
    #: latency histograms instead of being discarded.
    repeats: int = 1
    #: record spans/counters/histograms into an obs Recorder.
    observe: bool = False
    #: attach a PlanProfiler (EXPLAIN ANALYZE): per-cell operator plan
    #: trees embedded in the BENCH artifact.  Implies nothing unless
    #: ``observe`` is also on (the profiler rides the recorder).
    explain: bool = False
    #: run every engine behind the sharded multi-process execution
    #: service with this many worker processes (0/1 = single-process).
    shards: int = 0
    #: per-RPC timeout for the sharded service (None = the service's
    #: DEFAULT_TIMEOUT).
    rpc_timeout: float | None = None
    #: per-query deadline (seconds): queries exceeding it are cancelled
    #: cooperatively and reported as QueryTimeout incidents (None = no
    #: deadline).
    deadline_seconds: float | None = None
    #: sharded degradation policy: "fail" (any shard failure fails the
    #: query) or "partial" (answer from healthy shards + incident).
    degraded: str = "fail"
    #: directory of ``repro snapshot build`` artifacts: scenario corpora
    #: whose (class, units, seed) snapshot exists are mmap-loaded as
    #: pre-encoded node arrays instead of generated and re-parsed
    #: (warm start).  Missing or stale snapshots fall back silently.
    snapshot_dir: str | None = None

    def record(self) -> dict:
        """The config as a JSON-ready dict (for BENCH_* artifacts)."""
        return asdict(self)


@dataclass
class Cell:
    """One (engine, class, scale) measurement.

    ``seconds`` stays the paper-faithful cold-run number; ``warm`` (set
    when ``repeats > 1``) carries min/median of the extra runs, and
    ``counters`` the per-operation obs counter deltas (set when a
    recorder is installed).
    """

    seconds: float | None = None        # None = unsupported ("-")
    correct: bool | None = None         # None = not checked / no oracle
    detail: str = ""
    warm: dict | None = None
    counters: dict | None = None


@dataclass
class Scenario:
    """One prepared (class, scale) database instance."""

    db_class: DatabaseClass
    scale: Scale
    units: int
    #: ``(name, payload)`` pairs — a plain list of XML text, a lazy
    #: :class:`~repro.core.corpus_io.FileCorpus` when file-backed, or
    #: a :class:`~repro.core.corpus_io.SnapshotCorpus` of pre-encoded
    #: node arrays when loaded from a snapshot.
    texts: object

    @property
    def name(self) -> str:
        """Instance name in the paper's style, e.g. ``TCSDS``."""
        return (self.db_class.label.replace("/", "")
                + self.scale.name[0].upper())

    @property
    def bytes(self) -> int:
        total = getattr(self.texts, "total_bytes", None)
        if total is not None:
            return total()
        return sum(len(text) for __, text in self.texts)


class CorpusCache:
    """Generate-once cache of scenario corpora (generation is untimed)."""

    def __init__(self, config: BenchmarkConfig) -> None:
        self.config = config
        self._cache: dict[tuple[str, str], Scenario] = {}

    def scenario(self, class_key: str, scale_name: str) -> Scenario:
        key = (class_key, scale_name)
        if key not in self._cache:
            self._cache[key] = self._build(class_key, scale_name)
        return self._cache[key]

    def _build(self, class_key: str, scale_name: str) -> Scenario:
        db_class = class_by_key(class_key)
        scale = SCALES_BY_NAME[scale_name]
        budget = scale.budget(self.config.scale_divisor)
        units = db_class.units_for_budget(budget, seed=self.config.seed)
        if self.config.snapshot_dir is not None:
            from .corpus_io import open_snapshot_corpus
            corpus = open_snapshot_corpus(self.config.snapshot_dir,
                                          class_key, units,
                                          self.config.seed)
            if corpus is not None:
                obs_hooks.count("snapshot.hits")
                return Scenario(db_class, scale, units, corpus)
            obs_hooks.count("snapshot.misses")
        documents = db_class.generate(units, seed=self.config.seed)
        texts: object = [(document.name, serialize(document))
                         for document in documents]
        if self.config.corpus_dir is not None:
            from .corpus_io import write_corpus
            directory = (f"{self.config.corpus_dir}/"
                         f"{class_key}_{scale_name}")
            texts = write_corpus(texts, directory)
        return Scenario(db_class, scale, units, texts)


def class_by_key(class_key: str) -> DatabaseClass:
    """Resolve a class key like ``"dcsd"`` to its DatabaseClass."""
    for db_class in ALL_CLASSES:
        if db_class.key == class_key:
            return db_class
    raise BenchmarkError(f"unknown database class {class_key!r}")


@dataclass
class ExperimentResult:
    """One table's worth of cells: engine row label -> scenario -> cell."""

    title: str
    unit: str                                      # "s" or "ms"
    cells: dict = field(default_factory=dict)      # (row, class, scale) -> Cell

    def cell(self, row_label: str, class_key: str,
             scale_name: str) -> Cell:
        return self.cells.setdefault((row_label, class_key, scale_name),
                                     Cell())


@dataclass
class SuiteResult:
    """Everything one full run produces (Tables 4-9 analogues)."""

    load: ExperimentResult
    queries: dict = field(default_factory=dict)    # qid -> ExperimentResult


#: Paper table number for each experiment query.
QUERY_TABLE_TITLES = {
    "Q5": "Table 5. Query Q5 Execution Time",
    "Q12": "Table 6. Query Q12 Execution Time",
    "Q17": "Table 7. Query Q17 Execution Time",
    "Q8": "Table 8. Query Q8 Execution Time",
    "Q14": "Table 9. Query Q14 Execution Time",
}


class XBench:
    """Top-level benchmark driver."""

    def __init__(self, config: BenchmarkConfig | None = None,
                 recorder: Recorder | None = None) -> None:
        self.config = config or BenchmarkConfig()
        self.corpus = CorpusCache(self.config)
        if recorder is None and self.config.observe:
            from ..obs import PlanProfiler
            recorder = Recorder(
                name="xbench",
                plan=PlanProfiler() if self.config.explain else None)
        #: obs Recorder of this driver (None = observability off).
        self.recorder = recorder

    # -- engine preparation -----------------------------------------------------

    def _engines_oracle_first(self) -> list[Engine]:
        keys = list(PAPER_ENGINE_KEYS)
        if self.config.engine_keys is not None:
            known = set(keys)
            unknown = [key for key in self.config.engine_keys
                       if key not in known]
            if unknown:
                raise BenchmarkError(
                    f"unknown engine key(s) {', '.join(sorted(unknown))!s}; "
                    f"choose from {', '.join(sorted(known))}")
            keys = [key for key in keys
                    if key in self.config.engine_keys]
        if self.config.shards > 1:
            from .shard import ShardedEngine
            engines: list[Engine] = [
                ShardedEngine(key, shards=self.config.shards,
                              timeout=self.config.rpc_timeout,
                              degraded=self.config.degraded,
                              seed=self.config.seed)
                for key in keys]
        else:
            engines = [create(key) for key in keys]
        engines.sort(key=lambda e: e.key != "native")
        return engines

    def load_engine(self, engine: Engine, class_key: str,
                    scale_name: str):
        """Load one engine with one scenario; returns (scenario, stats)."""
        scenario = self.corpus.scenario(class_key, scale_name)
        engine.check_supported(scenario.db_class, scale_name)
        stats, __ = self._load_and_index(engine, scenario, scale_name)
        return scenario, stats

    def _load_and_index(self, engine: Engine, scenario: Scenario,
                        scale_name: str):
        """Timed bulk load plus the Table 3 value indexes.

        The single load/index path (shared by :meth:`load_engine` and
        :meth:`_run_scenario`), and therefore the single place carrying
        the phase spans; returns ``(stats, counter_delta)``.
        """
        class_key = scenario.db_class.key
        attrs = {"engine": engine.key, "class": class_key,
                 "scale": scale_name}
        before = obs_hooks.counters_snapshot()
        with obs_hooks.span("load", **attrs):
            stats = engine.timed_load(scenario.db_class, scenario.texts)
        if self.config.with_indexes:
            with obs_hooks.span("index", **attrs):
                engine.create_indexes(list(indexes_for(class_key)))
        return stats, obs_hooks.counters_delta(before)

    # -- experiments ----------------------------------------------------------------

    def run_suite(self, query_ids: tuple[str, ...] | None = None
                  ) -> SuiteResult:
        """Run bulk loading plus all experiment queries.

        Each engine is loaded once per (class, scale) scenario; the load
        itself is the Table 4 measurement and the loaded instance then
        serves all query measurements, like the paper's database
        instances (TCSDS, TCSDN, ...).
        """
        query_ids = query_ids or self.config.query_ids
        load_result = ExperimentResult("Table 4. Bulk Loading Time",
                                       unit="s")
        query_results = {
            qid: ExperimentResult(
                QUERY_TABLE_TITLES.get(
                    qid, f"Query {qid} Execution Time"), unit="ms")
            for qid in query_ids}

        scope = (observing(self.recorder) if self.recorder is not None
                 else nullcontext())
        with scope:
            for class_key in self.config.class_keys:
                for scale_name in self.config.scale_names:
                    self._run_scenario(class_key, scale_name, query_ids,
                                       load_result, query_results)
        return SuiteResult(load_result, query_results)

    def _run_scenario(self, class_key: str, scale_name: str,
                      query_ids: tuple[str, ...],
                      load_result: ExperimentResult,
                      query_results: dict) -> None:
        # One umbrella span per scenario; the generate/load/index/query
        # phase spans nest under it in the trace.
        with obs_hooks.span("scenario", **{"class": class_key,
                                           "scale": scale_name}), \
                obs_hooks.plan_scope(scale=scale_name):
            self._run_scenario_inner(class_key, scale_name, query_ids,
                                     load_result, query_results)

    def _run_scenario_inner(self, class_key: str, scale_name: str,
                            query_ids: tuple[str, ...],
                            load_result: ExperimentResult,
                            query_results: dict) -> None:
        with obs_hooks.span("generate", **{"class": class_key,
                                           "scale": scale_name}):
            scenario = self.corpus.scenario(class_key, scale_name)
        oracles: dict[str, list[str]] = {}

        for engine in self._engines_oracle_first():
            load_cell = load_result.cell(engine.row_label, class_key,
                                         scale_name)
            try:
                engine.check_supported(scenario.db_class, scale_name)
            except UnsupportedConfiguration as exc:
                load_cell.detail = str(exc)
                for qid in query_ids:
                    query_results[qid].cell(engine.row_label, class_key,
                                            scale_name).detail = str(exc)
                continue

            try:
                stats, load_counters = self._load_and_index(
                    engine, scenario, scale_name)
                load_cell.seconds = stats.seconds
                if load_counters:
                    load_cell.counters = load_counters

                for qid in query_ids:
                    cell = query_results[qid].cell(engine.row_label,
                                                   class_key, scale_name)
                    params = bind_params(qid, class_key, scenario.units)
                    attrs = {"engine": engine.key, "class": class_key,
                             "scale": scale_name, "qid": qid}
                    deadline = (
                        Deadline(self.config.deadline_seconds)
                        if self.config.deadline_seconds is not None
                        else None)
                    try:
                        with obs_hooks.span("query", **attrs), \
                                deadline_scope(deadline):
                            outcome = engine.timed_execute(qid, params)
                    except UnsupportedQuery as exc:
                        cell.detail = str(exc)
                        continue
                    except (QueryTimeout, ShardError) as exc:
                        # Typed incident (CircuitOpen is a ShardError):
                        # the cell stays unsupported-shaped but names
                        # the failure, like the shard incident column.
                        cell.detail = f"{type(exc).__name__}: {exc}"
                        continue
                    cell.seconds = outcome.seconds
                    if outcome.counters:
                        cell.counters = outcome.counters
                    self._warm_runs(engine, qid, params, attrs, cell,
                                    outcome.seconds)
                    if not self.config.check_correctness:
                        continue
                    if engine.key == "native":
                        oracles[qid] = outcome.values
                        cell.correct = True
                    elif qid in oracles:
                        cell.correct = outcome.values == oracles[qid]
                        if not cell.correct:
                            detail = ("result differs from native "
                                      "oracle (mapping infidelity)")
                            cell.detail = (f"{detail}; {cell.detail}"
                                           if cell.detail else detail)
                incidents = getattr(engine, "incidents", None)
                if incidents:
                    note = (f"{len(incidents)} shard incident(s): "
                            + "; ".join(incidents))
                    load_cell.detail = (f"{load_cell.detail}; {note}"
                                        if load_cell.detail else note)
            finally:
                engine.close()

    def _warm_runs(self, engine: Engine, qid: str, params: dict,
                   attrs: dict, cell: Cell, cold_seconds: float) -> None:
        """Extra (warm) executions behind ``repeats``.

        The cold time stays the cell value (paper-faithful); the warm
        min/median land in ``cell.warm``/``detail`` and every run feeds
        the per-cell latency histogram.
        """
        key = (f"query/{qid}/{attrs['engine']}/"
               f"{attrs['class']}/{attrs['scale']}")
        obs_hooks.record_latency(key, cold_seconds)
        if self.config.repeats <= 1:
            return
        samples: list[float] = []
        for __ in range(self.config.repeats - 1):
            with obs_hooks.span("query", warm=True, **attrs):
                repeat = engine.timed_execute(qid, params)
            samples.append(repeat.seconds)
            obs_hooks.record_latency(key, repeat.seconds)
        cell.warm = {"runs": len(samples),
                     "min_seconds": min(samples),
                     "median_seconds": statistics.median(samples)}
        note = (f"warm min {min(samples) * 1000:.2f} ms, "
                f"median {statistics.median(samples) * 1000:.2f} ms "
                f"over {len(samples)} run(s)")
        cell.detail = f"{cell.detail}; {note}" if cell.detail else note

    def run_bulk_load(self) -> ExperimentResult:
        """Experiment 1 only (Table 4)."""
        return self.run_suite(query_ids=()).load

    def run_query(self, qid: str) -> ExperimentResult:
        """One query's table (Experiments 2/3)."""
        return self.run_suite(query_ids=(qid,)).queries[qid]
