"""Multi-user workload harness (toward the paper's planned extension #1).

XBench 1.0 is "a single machine benchmark"; the paper plans "support for
distributed environments" and contrasts itself with XMach-1's multi-user
design.  This module adds the single-machine half of that roadmap: N
concurrent client streams issuing randomized query mixes against one
loaded engine, reporting aggregate throughput (queries/second, XMach-1's
Xqps metric in spirit) and per-stream latency statistics.

Streams run on Python threads.  The engines are pure Python, so the GIL
serializes CPU work — throughput therefore measures engine efficiency
under interleaving (lock-free read-only data structures, no
cross-stream interference), not parallel speed-up; the ``interleaved``
mode makes the same measurement deterministically without threads.

For parallel speed-up that actually moves with cores, run the streams
against the sharded execution service
(:class:`repro.core.shard.ShardedEngine`, CLI ``multiuser --shards N``):
each query then fans out across N worker *processes*, so the GIL bounds
only the scatter-gather coordination, not the query work itself.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from ..errors import (
    BenchmarkError,
    QueryTimeout,
    ShardError,
    UnsupportedQuery,
)
from ..faults.deadline import Deadline, deadline_scope
from ..obs import LatencyHistogram
from ..obs import recorder as obs_hooks
from ..workload import bind_params
from ..workload.queries import EXPERIMENT_QUERIES, QUERIES_BY_ID


@dataclass
class StreamResult:
    """One client stream's outcome.

    Latency statistics are backed by
    :class:`~repro.obs.histogram.LatencyHistogram` — mean-only latency
    hides tail behaviour, so the percentiles are first-class here.
    """

    stream_id: int
    queries: int = 0
    errors: int = 0
    latencies: list = field(default_factory=list)
    #: typed incident counts (QueryTimeout, ShardError, CircuitOpen...)
    #: — unsupported queries stay in ``errors``.
    incidents: dict = field(default_factory=dict)

    def latency_histogram(self) -> LatencyHistogram:
        return LatencyHistogram(self.latencies)

    def mean_latency_ms(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) * 1000.0 / len(self.latencies)

    def p50_latency_ms(self) -> float:
        return self.latency_histogram().p50 * 1000.0

    def p95_latency_ms(self) -> float:
        return self.latency_histogram().p95 * 1000.0

    def p99_latency_ms(self) -> float:
        return self.latency_histogram().p99 * 1000.0

    def max_latency_ms(self) -> float:
        return max(self.latencies, default=0.0) * 1000.0


@dataclass
class MultiUserResult:
    """Aggregate outcome of one multi-user run."""

    streams: list = field(default_factory=list)
    wall_seconds: float = 0.0
    #: end-of-run per-consistency-tier replica staleness (from
    #: :meth:`~repro.core.shard.ShardedEngine.staleness_by_tier`);
    #: ``None`` for engines without replicas.
    staleness: dict | None = None

    @property
    def total_queries(self) -> int:
        return sum(stream.queries for stream in self.streams)

    @property
    def throughput_qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_queries / self.wall_seconds

    def latency_histogram(self) -> LatencyHistogram:
        """All streams' latencies merged into one histogram."""
        return LatencyHistogram.merged(
            stream.latency_histogram() for stream in self.streams)

    def summary(self) -> str:
        overall = self.latency_histogram()
        lines = [f"{len(self.streams)} streams, "
                 f"{self.total_queries} queries in "
                 f"{self.wall_seconds:.2f}s -> "
                 f"{self.throughput_qps:.1f} q/s",
                 f"  overall: {overall.format_ms()}"]
        incidents = self.incident_counts()
        if incidents:
            lines.append("  incidents: " + ", ".join(
                f"{name} x{count}"
                for name, count in sorted(incidents.items())))
        for stream in self.streams:
            lines.append(
                f"  stream {stream.stream_id}: {stream.queries} queries, "
                f"mean {stream.mean_latency_ms():.2f} ms, "
                f"{stream.latency_histogram().format_ms()}")
        if self.staleness:
            lines.append(
                f"  replication: committed_seq "
                f"{self.staleness.get('committed_seq', 0)}, "
                f"{self.staleness.get('live_rows', 0)}/"
                f"{self.staleness.get('replicas', 0)} replica rows "
                "live")
            lines.append("    tier                    rows  "
                         "max staleness")
            for tier, info in self.staleness.get("tiers", {}).items():
                lines.append(
                    f"    {tier:<22}  {info.get('rows', 0):>4}  "
                    f"{info.get('max_staleness', 0):>13}")
        return "\n".join(lines)

    def incident_counts(self) -> dict:
        """Typed incidents aggregated across streams."""
        totals: dict[str, int] = {}
        for stream in self.streams:
            for name, count in stream.incidents.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def record(self) -> dict:
        """JSON-ready summary (for BENCH_* artifacts)."""
        return {
            "streams": len(self.streams),
            "total_queries": self.total_queries,
            "errors": sum(stream.errors for stream in self.streams),
            "incidents": self.incident_counts(),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency_histogram().summary(),
            "per_stream": [stream.latency_histogram().summary()
                           for stream in self.streams],
            "staleness": self.staleness,
        }


def _stream_plan(class_key: str, units: int, queries_per_stream: int,
                 seed: int, query_ids: tuple[str, ...]) -> list[tuple]:
    """A deterministic (qid, params) sequence for one stream."""
    rng = random.Random(seed)
    applicable = [qid for qid in query_ids
                  if QUERIES_BY_ID[qid].applies_to(class_key)]
    if not applicable:
        raise BenchmarkError(
            f"no queries of the mix apply to {class_key!r}")
    plan = []
    for __ in range(queries_per_stream):
        qid = rng.choice(applicable)
        params = dict(bind_params(qid, class_key, units))
        # Vary the point-query target per client, like distinct users.
        if "id" in params:
            params["id"] = str(rng.randint(1, units))
        plan.append((qid, params))
    return plan


def _execute_once(engine, qid: str, params: dict, index: int,
                  result: StreamResult,
                  deadline_seconds: float | None) -> None:
    """One stream query: time it, classify any typed incident.

    The deadline scope and the plan-tree stack are both thread-local,
    so concurrent streams never interfere.
    """
    deadline = (Deadline(deadline_seconds)
                if deadline_seconds is not None else None)
    start = time.perf_counter()
    try:
        # Plan trees are keyed per stream (and built on a thread-local
        # stack), so concurrent streams never cross-link operator nodes.
        with obs_hooks.plan_tree(qid=qid, stream=index), \
                deadline_scope(deadline):
            engine.execute(qid, params)
    except UnsupportedQuery:
        result.errors += 1
        return
    except (QueryTimeout, ShardError) as exc:
        # Typed incidents (CircuitOpen is a ShardError): the stream
        # keeps going, the outcome is counted by exception type.
        name = type(exc).__name__
        result.errors += 1
        result.incidents[name] = result.incidents.get(name, 0) + 1
        obs_hooks.count("multiuser.incidents")
        return
    elapsed = time.perf_counter() - start
    result.latencies.append(elapsed)
    result.queries += 1
    obs_hooks.record_latency("multiuser.query", elapsed)
    obs_hooks.count("multiuser.queries")


def run_multi_user(engine, class_key: str, units: int,
                   streams: int = 4, queries_per_stream: int = 20,
                   seed: int = 17,
                   query_ids: tuple[str, ...] = EXPERIMENT_QUERIES,
                   mode: str = "threads",
                   deadline_seconds: float | None = None) -> MultiUserResult:
    """Run N client streams against one loaded engine.

    ``mode`` is ``"threads"`` (real threads, wall-clock throughput) or
    ``"interleaved"`` (deterministic round-robin on one thread).
    ``deadline_seconds`` installs a per-query
    :class:`~repro.faults.deadline.Deadline`; queries over budget are
    cancelled cooperatively and counted as ``QueryTimeout`` incidents.
    """
    plans = [_stream_plan(class_key, units, queries_per_stream,
                          seed + index, query_ids)
             for index in range(streams)]
    results = [StreamResult(index) for index in range(streams)]

    def run_one(index: int) -> None:
        # The span stack is thread-local, so each stream's span tree is
        # independent of its siblings.
        with obs_hooks.span("multiuser.stream", stream=index):
            for qid, params in plans[index]:
                _execute_once(engine, qid, params, index,
                              results[index], deadline_seconds)

    wall_start = time.perf_counter()
    if mode == "threads":
        workers = [threading.Thread(target=run_one, args=(index,))
                   for index in range(streams)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    elif mode == "interleaved":
        cursors = [iter(plan) for plan in plans]
        live = set(range(streams))
        while live:
            for index in sorted(live):
                try:
                    qid, params = next(cursors[index])
                except StopIteration:
                    live.discard(index)
                    continue
                _execute_once(engine, qid, params, index,
                              results[index], deadline_seconds)
    else:
        raise BenchmarkError(f"unknown multi-user mode {mode!r}")

    wall = time.perf_counter() - wall_start
    # End-of-run replication staleness (replicated sharded engines
    # only): what lag each consistency tier's readers would see now.
    tiers = getattr(engine, "staleness_by_tier", None)
    staleness = tiers() if tiers is not None \
        and getattr(engine, "replicas", 0) else None
    return MultiUserResult(results, wall, staleness=staleness)
