"""Regenerate the paper's figures (schema diagrams, Figures 1-4)."""

from __future__ import annotations

from ..databases import CLASSES_BY_KEY
from ..xml.schema import render_diagram

#: figure number -> (class key, paper caption)
FIGURES = {
    1: ("tcsd", "Figure 1. Schema Diagram of TC/SD (Dictionary)"),
    2: ("tcmd", "Figure 2. Schema Diagram of TC/MD (ArticleXXX)"),
    3: ("dcsd", "Figure 3. Schema Diagram of DC/SD (Catalog)"),
    4: ("dcmd", "Figure 4. Schema Diagram of DC/MD (OrderXXX)"),
}


def render_figure(number: int) -> str:
    """The ASCII rendering of one paper figure."""
    class_key, caption = FIGURES[number]
    schema = CLASSES_BY_KEY[class_key].schema()
    return render_diagram(schema, caption)


def render_all_figures() -> str:
    """All four schema diagrams, in figure order."""
    return "\n\n".join(render_figure(number) for number in sorted(FIGURES))
