"""Shared-memory segment lifecycle for the sharded transport.

``multiprocessing.shared_memory`` on Python < 3.13 has a well-known
footgun: *attaching* to an existing segment registers it with the
process's ``resource_tracker``, so a worker that crashes (or merely
exits) can unlink a segment the parent still owns — and chaos runs end
with ``resource_tracker`` leak warnings for segments that were cleaned
up correctly.  This module centralizes the fix:

* the **parent** creates segments through :class:`OwnedSegment`, which
  reference-counts hand-outs and unlinks exactly once on release;
* **workers** attach through :func:`attach_segment`, which immediately
  unregisters the segment from their resource tracker — a crashing
  worker then just drops its mapping, and a clean worker detaches with
  :func:`detach_segment`.

Ownership rule: the creating process is the only unlinker.  Workers
treat segments as read-only, attach for the duration of one bulk load,
and never outlive the parent's handle.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory


class OwnedSegment:
    """A created segment plus a reference count.

    The creator holds one reference; consumers that need the segment to
    outlive a scope take extra ones with :meth:`retain`.  The segment
    is unlinked when the last reference is released.  ``release`` is
    idempotent past zero, so error paths can release unconditionally.
    """

    __slots__ = ("shm", "refs")

    def __init__(self, size: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.refs = 1

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    @property
    def size(self) -> int:
        return self.shm.size

    def retain(self) -> "OwnedSegment":
        self.refs += 1
        return self

    def release(self) -> None:
        if self.refs <= 0:
            return
        self.refs -= 1
        if self.refs == 0:
            try:
                self.shm.close()
            except (OSError, BufferError):
                pass
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting ownership.

    Python 3.11's ``SharedMemory(name=...)`` registers even a plain
    attachment with the resource tracker, which unlinks the segment
    when this process dies — even though the parent created it and
    still needs it.  Worse, under the ``fork`` start method every
    process talks to the *same* tracker daemon, whose per-name cache
    is a set: an attach's register is a duplicate no-op, so
    unregistering afterwards would erase the parent's registration
    and the parent's own unlink would then trip a tracker ``KeyError``.
    The only clean fix before 3.13's ``track=False`` is to suppress
    the register call for the duration of the attach.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def detach_segment(segment: shared_memory.SharedMemory) -> None:
    """Close an attached segment (never unlinks)."""
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - close races
        pass


__all__ = ["OwnedSegment", "attach_segment", "detach_segment"]
