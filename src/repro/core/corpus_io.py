"""File-backed corpora: write scenarios to disk, load them lazily.

The paper bulk-loads *files* — for DC/MD that means hundreds of
thousands of small files whose open/read cost dominates Experiment 1.
A :class:`FileCorpus` makes that cost real: it looks like a sequence of
``(name, xml_text)`` pairs, but each text is read from disk at iteration
time, inside the engine's timed load loop.

This module also owns the **snapshot** container (``RXSN``): a corpus
pre-encoded into :mod:`repro.xml.binary` node arrays and written as one
mmap-loadable file, so warm starts skip XML parsing entirely.  Layout::

    RXSN | version u32 | meta_len u32 | meta JSON | payload bytes

The JSON meta carries identity fields (class, units, seed — validated
on open) plus a directory of ``{name, offset, length, nodes, interns}``
entries whose offsets index the payload region; each payload slice is
one ``RXB1`` document.  A :class:`SnapshotCorpus` is the engine-facing
view: a sequence of ``(name, EncodedDocument)`` pairs sliced lazily out
of the mmap.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from pathlib import Path
from typing import Iterator

from ..errors import BenchmarkError
from ..xml.binary import EncodedDocument, encode_document


class FileCorpus:
    """A lazy sequence of ``(name, text)`` pairs backed by files."""

    def __init__(self, entries: list[tuple[str, Path]]) -> None:
        self._entries = list(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        for name, path in self._entries:
            yield name, path.read_text(encoding="utf-8")

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [(name, path.read_text(encoding="utf-8"))
                    for name, path in self._entries[index]]
        name, path = self._entries[index]
        return name, path.read_text(encoding="utf-8")

    def total_bytes(self) -> int:
        """Corpus size from file metadata (no reads)."""
        return sum(os.stat(path).st_size for __, path in self._entries)

    @property
    def paths(self) -> list[Path]:
        return [path for __, path in self._entries]


def write_corpus(texts, directory: str | Path) -> FileCorpus:
    """Write ``(name, text)`` pairs under ``directory``; return the
    lazy file-backed view."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    entries = []
    for name, text in texts:
        path = base / name
        path.write_text(text, encoding="utf-8")
        entries.append((name, path))
    return FileCorpus(entries)


# --------------------------------------------------------------------------
# Snapshots (pre-encoded corpora, mmap-loaded for warm starts)
# --------------------------------------------------------------------------

SNAPSHOT_MAGIC = b"RXSN"
SNAPSHOT_VERSION = 1
_SNAP_HEADER = struct.Struct("<4sII")   # magic, version, meta_len
#: snapshot file suffix (``dcmd_u24.rxs``).
SNAPSHOT_SUFFIX = ".rxs"


def snapshot_filename(class_key: str, units: int) -> str:
    """Canonical snapshot name for a (class, units) corpus."""
    return f"{class_key}_u{units}{SNAPSHOT_SUFFIX}"


def write_snapshot(path: str | Path, documents,
                   meta: dict | None = None) -> dict:
    """Encode ``documents`` (parsed :class:`~repro.xml.nodes.Document`
    trees, in collection order) into one snapshot file at ``path``.

    ``meta`` carries identity fields (``class``, ``units``, ``seed``)
    that :func:`open_snapshot` callers validate before trusting the
    corpus.  Returns the full meta dict (identity + directory).  The
    write is atomic (temp file + rename), so a crashed build never
    leaves a half-readable snapshot behind.
    """
    return write_snapshot_payloads(
        path,
        ((document.name, encode_document(document), None)
         for document in documents),
        meta)


def write_snapshot_payloads(path: str | Path, payload_entries,
                            meta: dict | None = None) -> dict:
    """Write already-encoded RXB1 payloads as one snapshot file.

    ``payload_entries`` yields ``(name, payload, extra)`` triples:
    ``payload`` is the raw RXB1 bytes (what
    :func:`~repro.xml.binary.encode_document` returns, or what a shard
    worker exports at checkpoint time), and ``extra`` is an optional
    dict merged into that document's directory entry — checkpoints use
    it to carry each document's global ordinal and replicated flag
    through the container.  Same atomicity and layout as
    :func:`write_snapshot`; that function is now a thin encode-then-
    delegate wrapper over this one.
    """
    entries = []
    payloads = []
    offset = 0
    for name, payload, extra in payload_entries:
        payload = bytes(payload)
        wrapper = EncodedDocument(name, payload)
        entry = {"name": name, "offset": offset,
                 "length": len(payload),
                 "nodes": wrapper.node_count(),
                 "interns": wrapper.intern_count()}
        if extra:
            entry.update(extra)
        entries.append(entry)
        payloads.append(payload)
        offset += len(payload)
    full_meta = dict(meta or {})
    full_meta["format"] = f"rxsn/{SNAPSHOT_VERSION}"
    full_meta["documents"] = len(entries)
    full_meta["payload_bytes"] = offset
    full_meta["entries"] = entries
    meta_blob = json.dumps(full_meta).encode("utf-8")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(_SNAP_HEADER.pack(SNAPSHOT_MAGIC,
                                       SNAPSHOT_VERSION,
                                       len(meta_blob)))
        handle.write(meta_blob)
        for payload in payloads:
            handle.write(payload)
    os.replace(temp, target)
    return full_meta


class Snapshot:
    """One open snapshot file: parsed meta plus the mmapped payload.

    Keep the snapshot open for as long as decoded corpora are being
    loaded from it — :class:`SnapshotCorpus` slices are views into the
    mmap (decoding copies, so finished engines never pin it).
    """

    def __init__(self, path: Path, handle, mm: mmap.mmap,
                 meta: dict, payload_base: int) -> None:
        self.path = path
        self._handle = handle
        self._mm = mm
        self.meta = meta
        self._base = payload_base
        self._view = memoryview(mm)

    @classmethod
    def open(cls, path: str | Path) -> "Snapshot":
        target = Path(path)
        handle = open(target, "rb")
        try:
            header = handle.read(_SNAP_HEADER.size)
            if len(header) < _SNAP_HEADER.size:
                raise BenchmarkError(f"{target}: truncated snapshot")
            magic, version, meta_len = _SNAP_HEADER.unpack(header)
            if magic != SNAPSHOT_MAGIC:
                raise BenchmarkError(
                    f"{target}: not a snapshot (magic {magic!r})")
            if version != SNAPSHOT_VERSION:
                raise BenchmarkError(
                    f"{target}: snapshot version {version} "
                    f"(supported: {SNAPSHOT_VERSION})")
            meta = json.loads(handle.read(meta_len).decode("utf-8"))
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            handle.close()
            raise
        return cls(target, handle, mm, meta,
                   _SNAP_HEADER.size + meta_len)

    @property
    def entries(self) -> list[dict]:
        return self.meta.get("entries", [])

    def payload(self, entry: dict) -> memoryview:
        start = self._base + entry["offset"]
        return self._view[start:start + entry["length"]]

    def corpus(self) -> "SnapshotCorpus":
        return SnapshotCorpus(self)

    def close(self) -> None:
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - live exports
            pass
        try:
            self._mm.close()
        except BufferError:  # pragma: no cover - live exports
            pass
        self._handle.close()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SnapshotCorpus:
    """Engine-facing view of a snapshot: lazily sliced
    ``(name, EncodedDocument)`` pairs in collection order."""

    def __init__(self, snapshot: Snapshot) -> None:
        self._snapshot = snapshot
        self._entries = snapshot.entries

    def __len__(self) -> int:
        return len(self._entries)

    def _pair(self, entry: dict) -> tuple[str, EncodedDocument]:
        return (entry["name"],
                EncodedDocument(entry["name"],
                                self._snapshot.payload(entry)))

    def __iter__(self) -> Iterator[tuple[str, EncodedDocument]]:
        for entry in self._entries:
            yield self._pair(entry)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._pair(entry) for entry in self._entries[index]]
        return self._pair(self._entries[index])

    def total_bytes(self) -> int:
        """Encoded corpus size (snapshot payload bytes, no reads)."""
        return sum(entry["length"] for entry in self._entries)


def open_snapshot_corpus(directory: str | Path, class_key: str,
                         units: int, seed: int
                         ) -> SnapshotCorpus | None:
    """The snapshot corpus for ``(class, units, seed)`` under
    ``directory``, or ``None`` when absent or when its identity meta
    disagrees (a stale snapshot is *skipped*, never trusted)."""
    path = Path(directory) / snapshot_filename(class_key, units)
    if not path.exists():
        return None
    snapshot = Snapshot.open(path)
    meta = snapshot.meta
    if (meta.get("class") != class_key or meta.get("units") != units
            or meta.get("seed") != seed):
        snapshot.close()
        return None
    return snapshot.corpus()
