"""File-backed corpora: write scenarios to disk, load them lazily.

The paper bulk-loads *files* — for DC/MD that means hundreds of
thousands of small files whose open/read cost dominates Experiment 1.
A :class:`FileCorpus` makes that cost real: it looks like a sequence of
``(name, xml_text)`` pairs, but each text is read from disk at iteration
time, inside the engine's timed load loop.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator


class FileCorpus:
    """A lazy sequence of ``(name, text)`` pairs backed by files."""

    def __init__(self, entries: list[tuple[str, Path]]) -> None:
        self._entries = list(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        for name, path in self._entries:
            yield name, path.read_text(encoding="utf-8")

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [(name, path.read_text(encoding="utf-8"))
                    for name, path in self._entries[index]]
        name, path = self._entries[index]
        return name, path.read_text(encoding="utf-8")

    def total_bytes(self) -> int:
        """Corpus size from file metadata (no reads)."""
        return sum(os.stat(path).st_size for __, path in self._entries)

    @property
    def paths(self) -> list[Path]:
        return [path for __, path in self._entries]


def write_corpus(texts, directory: str | Path) -> FileCorpus:
    """Write ``(name, text)`` pairs under ``directory``; return the
    lazy file-backed view."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    entries = []
    for name, text in texts:
        path = base / name
        path.write_text(text, encoding="utf-8")
        entries.append((name, path))
    return FileCorpus(entries)
