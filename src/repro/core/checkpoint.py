"""Checkpoint manifests for the durable sharded engine.

A checkpoint is a consistent cut of the whole engine at one committed
sequence: every shard's worker exports its current documents as RXB1
payloads, the parent writes them as per-shard RXSN snapshot files
(:func:`repro.core.corpus_io.write_snapshot_payloads`, so the same
container serves warm starts and recovery), and this module records the
cut in an atomically-replaced JSON manifest::

    <data_dir>/checkpoint.json
    <data_dir>/checkpoints/ckpt-<seq:012d>-shard<i>.rxs

The manifest keeps the newest :data:`CheckpointManager.KEEP`
checkpoints.  Keeping more than one is the recovery fallback: a
manifest entry whose snapshot files were deleted or damaged is skipped
and the previous checkpoint is used instead (its WAL suffix is longer,
but nothing acknowledged is lost — WAL segments are only compacted
below the *oldest retained* checkpoint).

Each snapshot directory entry carries two extra fields beyond the
standard RXSN meta: ``ordinal`` (the document's global ordinal, ``-1``
for replicated reference documents) and ``replicated`` — enough to
rebuild the parent's partition map without re-hashing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..errors import BenchmarkError
from .corpus_io import Snapshot

MANIFEST_FORMAT = "rxck/1"
MANIFEST_NAME = "checkpoint.json"
SNAPSHOT_DIR = "checkpoints"


class CheckpointManager:
    """Owns ``<data_dir>/checkpoint.json`` and its snapshot files."""

    #: checkpoints retained in the manifest (newest last).  The older
    #: ones exist purely as recovery fallbacks.
    KEEP = 2

    def __init__(self, data_dir: str | Path) -> None:
        self.data_dir = Path(data_dir)
        self.manifest_path = self.data_dir / MANIFEST_NAME
        self.snapshot_dir = self.data_dir / SNAPSHOT_DIR

    @staticmethod
    def exists(data_dir: str | Path) -> bool:
        """Whether ``data_dir`` holds a checkpoint manifest (i.e. the
        directory is recoverable-from rather than fresh)."""
        return (Path(data_dir) / MANIFEST_NAME).is_file()

    # -- manifest I/O --------------------------------------------------------

    def load(self) -> dict | None:
        """The parsed manifest, or ``None`` when absent/unreadable."""
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if manifest.get("format") != MANIFEST_FORMAT:
            return None
        return manifest

    def _store(self, manifest: dict) -> None:
        self.data_dir.mkdir(parents=True, exist_ok=True)
        temp = self.manifest_path.with_name(MANIFEST_NAME + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.manifest_path)

    # -- checkpoint lifecycle ------------------------------------------------

    def snapshot_path(self, seq: int, shard: int) -> Path:
        return (self.snapshot_dir
                / f"ckpt-{seq:012d}-shard{shard}.rxs")

    def record(self, *, seq: int, class_key: str, engine_key: str,
               shards: int, snapshot_paths: list[Path],
               index_paths: list[str], next_ordinal: int,
               home: int | None) -> dict:
        """Append one checkpoint entry, trim to :attr:`KEEP`, and
        delete the snapshot files of entries that fell off.  Returns
        the stored manifest."""
        manifest = self.load() or {"format": MANIFEST_FORMAT,
                                   "checkpoints": []}
        manifest.update({"class": class_key, "engine": engine_key,
                         "shards": shards})
        entry = {
            "seq": seq,
            "snapshots": [os.path.relpath(path, self.data_dir)
                          for path in snapshot_paths],
            "index_paths": list(index_paths),
            "next_ordinal": next_ordinal,
            "home": home,
        }
        checkpoints = [existing for existing
                       in manifest.get("checkpoints", [])
                       if existing.get("seq") != seq]
        checkpoints.append(entry)
        checkpoints.sort(key=lambda item: item.get("seq", 0))
        dropped = checkpoints[:-self.KEEP]
        manifest["checkpoints"] = checkpoints[-self.KEEP:]
        self._store(manifest)
        kept = {relative for item in manifest["checkpoints"]
                for relative in item.get("snapshots", ())}
        for item in dropped:
            for relative in item.get("snapshots", ()):
                if relative in kept:
                    continue
                try:
                    (self.data_dir / relative).unlink()
                except OSError:
                    pass
        return manifest

    def oldest_retained_seq(self) -> int:
        """The oldest checkpoint sequence still in the manifest — the
        WAL compaction cutoff (segments below it serve no retained
        checkpoint)."""
        manifest = self.load()
        if not manifest or not manifest.get("checkpoints"):
            return 0
        return min(item.get("seq", 0)
                   for item in manifest["checkpoints"])

    def latest_valid(self) -> tuple[dict, list[Snapshot], list[str]] \
            | None:
        """The newest checkpoint whose snapshot files all open.

        Walks the manifest newest-first; an entry with a missing or
        unreadable snapshot is skipped (the fallback the recovery tests
        exercise) and the skip is reported in the returned incident
        strings.  Returns ``(entry, snapshots, incidents)`` — the
        caller owns (and must close) the opened snapshots — or ``None``
        when no entry is usable.
        """
        manifest = self.load()
        if not manifest:
            return None
        incidents: list[str] = []
        for entry in reversed(manifest.get("checkpoints", [])):
            snapshots: list[Snapshot] = []
            try:
                for relative in entry.get("snapshots", ()):
                    snapshots.append(
                        Snapshot.open(self.data_dir / relative))
            except (OSError, BenchmarkError) as exc:
                for snapshot in snapshots:
                    snapshot.close()
                incidents.append(
                    f"checkpoint seq {entry.get('seq')} unusable "
                    f"({exc}); falling back to previous checkpoint")
                continue
            return entry, snapshots, incidents
        return None


__all__ = ["CheckpointManager", "MANIFEST_NAME", "MANIFEST_FORMAT"]
