"""DC/SD: the e-commerce catalog (``catalog.xml``).

A single document with complex structure and little text, produced by the
nested join mapping over the TPC-W tables (Section 2.1.2 of the paper).
Size is controlled by the number of items.
"""

from __future__ import annotations

from ..tpcw.mapping import build_catalog
from ..tpcw.population import populate
from ..xml.nodes import Document
from ..xml.schema import SchemaElement
from .base import DatabaseClass


class DCSD(DatabaseClass):
    """Data-centric, single document: the catalog."""

    key = "dcsd"
    label = "DC/SD"
    size_parameter = "item_num"
    default_units = 30000
    single_document = True
    _calibration_units = 12

    def generate(self, units: int, seed: int = 42) -> list[Document]:
        population = populate(num_items=units,
                              num_orders=max(units // 10, 1), seed=seed)
        return [build_catalog(population)]

    def schema(self) -> SchemaElement:
        root = SchemaElement("catalog")
        item = root.child("item", repeated=True)
        item.attributes.append("id")
        item.child("title")
        item.child("subject")
        item.child("description")
        item.child("isbn")
        item.child("date_of_release")
        item.child("number_of_pages")
        item.child("backing")
        item.child("availability_date")
        pricing = item.child("pricing")
        pricing.child("suggested_retail_price")
        pricing.child("cost")
        authors = item.child("authors")
        author = authors.child("author", repeated=True)
        author.attributes.append("id")
        name = author.child("name")
        name.child("first_name")
        name.child("middle_name", optional=True)
        name.child("last_name")
        author.child("date_of_birth")
        author.child("biography")
        contact = author.child("contact_information", optional=True)
        mailing = contact.child("mailing_address")
        mailing.child("street1")
        mailing.child("street2", optional=True)
        mailing.child("city")
        mailing.child("state", optional=True)
        mailing.child("zip")
        country = mailing.child("country")
        country.child("name")
        country.child("currency")
        contact.child("phone")
        contact.child("email")
        publisher = item.child("publisher")
        publisher.attributes.append("id")
        publisher.child("name")
        publisher.child("phone")
        publisher.child("fax", optional=True)
        publisher.child("email")
        return root
