"""Database-class abstraction and the XBench scale model.

XBench classifies databases along two axes (Table 1 of the paper):
text-centric vs. data-centric, and single-document vs. multi-document.
Each concrete class (TC/SD, TC/MD, DC/SD, DC/MD) subclasses
:class:`DatabaseClass` and provides a generator, a schema description and
its size-control parameter (``entry_num``, ``article_num``, item count or
order count).

The paper's scales are 10 MB / 100 MB / 1 GB / 10 GB.  Generating and
querying gigabytes in-process is not meaningful for a pure-Python
reproduction, so :class:`Scale` carries the paper's byte budget and the
driver divides it by a configurable ``scale_divisor`` (default 100) while
preserving the 1:10:100(:1000) ratios that produce every crossover in the
paper's result tables.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..xml.nodes import Document
from ..xml.schema import SchemaElement
from ..xml.serializer import serialize


@dataclass(frozen=True)
class Scale:
    """One benchmark scale: the paper's name and byte budget."""

    name: str
    paper_bytes: int

    def budget(self, divisor: int = 100) -> int:
        """The scaled-down byte budget used by this reproduction."""
        return max(self.paper_bytes // divisor, 10_000)


SMALL = Scale("small", 10 * 1024 * 1024)
NORMAL = Scale("normal", 100 * 1024 * 1024)
LARGE = Scale("large", 1024 * 1024 * 1024)
HUGE = Scale("huge", 10 * 1024 * 1024 * 1024)

PAPER_SCALES: tuple[Scale, ...] = (SMALL, NORMAL, LARGE, HUGE)
REPORTED_SCALES: tuple[Scale, ...] = (SMALL, NORMAL, LARGE)
SCALES_BY_NAME: dict[str, Scale] = {s.name: s for s in PAPER_SCALES}


class DatabaseClass(ABC):
    """One member of the XBench family."""

    #: short key, e.g. ``"dcsd"``.
    key: str = ""
    #: paper notation, e.g. ``"DC/SD"``.
    label: str = ""
    #: name of the paper's size-control parameter.
    size_parameter: str = ""
    #: the paper's default value of that parameter (at 100 MB).
    default_units: int = 0
    #: True for single-document classes.
    single_document: bool = False
    #: Document names that are *reference data* shared by the whole
    #: collection (e.g. DC/MD's flat-translated table documents that
    #: Q19 joins against).  The sharded execution service replicates
    #: these to every shard instead of hash-partitioning them.
    replicated_documents: tuple[str, ...] = ()

    # Units used when estimating bytes-per-unit for scaling.
    _calibration_units: int = 8

    @abstractmethod
    def generate(self, units: int, seed: int = 42) -> list[Document]:
        """Generate the database with ``units`` of the size parameter."""

    @abstractmethod
    def schema(self) -> SchemaElement:
        """Schema description of the class's main document type."""

    def schemas(self) -> list[SchemaElement]:
        """All document-type schemas of the class (collections may mix
        document types, e.g. DC/MD's orders plus flat table documents)."""
        return [self.schema()]

    def units_for_budget(self, budget_bytes: int, seed: int = 42) -> int:
        """Calibrate: how many units produce roughly ``budget_bytes``.

        Generates a small sample, measures its serialized size and
        extrapolates — the same role as the paper's ``entry_num`` /
        ``article_num`` calibration against target database sizes.
        """
        sample = self.generate(self._calibration_units, seed=seed)
        sample_bytes = sum(len(serialize(doc)) for doc in sample)
        per_unit = max(sample_bytes / self._calibration_units, 1.0)
        return max(int(budget_bytes / per_unit), 1)

    def generate_scaled(self, scale: Scale, divisor: int = 100,
                        seed: int = 42) -> list[Document]:
        """Generate the database at a (scaled-down) paper scale."""
        units = self.units_for_budget(scale.budget(divisor), seed=seed)
        return self.generate(units, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label}>"
