"""The four XBench database classes and the scale model."""

from .base import (
    HUGE,
    LARGE,
    NORMAL,
    PAPER_SCALES,
    REPORTED_SCALES,
    SCALES_BY_NAME,
    SMALL,
    DatabaseClass,
    Scale,
)
from .dcmd import DCMD
from .dcsd import DCSD
from .tcmd import TCMD
from .tcsd import TCSD

#: All four classes in the paper's column order (DC/SD, DC/MD, TC/SD, TC/MD).
ALL_CLASSES: tuple[DatabaseClass, ...] = (DCSD(), DCMD(), TCSD(), TCMD())
CLASSES_BY_KEY: dict[str, DatabaseClass] = {c.key: c for c in ALL_CLASSES}

__all__ = [
    "HUGE",
    "LARGE",
    "NORMAL",
    "PAPER_SCALES",
    "REPORTED_SCALES",
    "SCALES_BY_NAME",
    "SMALL",
    "DatabaseClass",
    "Scale",
    "DCMD",
    "DCSD",
    "TCMD",
    "TCSD",
    "ALL_CLASSES",
    "CLASSES_BY_KEY",
]
