"""DC/MD: transactional data (``order1.xml`` ... plus flat side docs).

Many small flat documents, one per order (ORDERS ⋈ ORDER_LINE ⋈ CC_XACTS),
accompanied by the five flat-translated table documents (customer.xml,
item.xml, author.xml, address.xml, country.xml) that Q19 joins against.
Size is controlled by the number of orders; the document count dominates
bulk-loading here exactly as in the paper's Experiment 1.
"""

from __future__ import annotations

from ..tpcw.mapping import FLAT_DOCUMENT_NAMES, build_order_documents, \
    flat_documents
from ..tpcw.population import populate
from ..tpcw.schema import TABLES_BY_NAME
from ..xml.nodes import Document
from ..xml.schema import SchemaElement
from .base import DatabaseClass


class DCMD(DatabaseClass):
    """Data-centric, multiple documents: orders + exchanged tables."""

    key = "dcmd"
    label = "DC/MD"
    size_parameter = "order_num"
    default_units = 200000
    single_document = False
    #: The flat table documents are reference data joined from any
    #: order (Q19), so sharding replicates them everywhere.
    replicated_documents = tuple(
        value[2] for value in FLAT_DOCUMENT_NAMES.values())
    _calibration_units = 20

    def generate(self, units: int, seed: int = 42) -> list[Document]:
        population = populate(num_items=max(units // 4, 5),
                              num_orders=units, seed=seed)
        documents = build_order_documents(population)
        documents.extend(flat_documents(population))
        return documents

    def schema(self) -> SchemaElement:
        root = SchemaElement("order")
        root.attributes.append("id")
        root.child("customer_id")
        root.child("order_date")
        root.child("total")
        shipping = root.child("shipping_information")
        shipping.child("ship_type")
        shipping.child("ship_date")
        delivery = shipping.child("delivery")
        delivery.child("order_status")
        ship_addr = shipping.child("shipping_address", optional=True)
        for tag in ("street1", "street2", "city", "zip", "country"):
            ship_addr.child(tag, optional=(tag in ("street2", "country")))
        billing = root.child("billing_information")
        card = billing.child("credit_card", optional=True)
        for tag in ("cc_type", "cc_number", "cc_name", "cc_expire",
                    "cc_auth_id", "transaction_amount",
                    "transaction_date"):
            card.child(tag)
        bill_addr = billing.child("billing_address", optional=True)
        for tag in ("street1", "street2", "city", "zip", "country"):
            bill_addr.child(tag, optional=(tag in ("street2", "country")))
        lines = root.child("order_lines")
        line = lines.child("order_line", repeated=True)
        line.attributes.append("id")
        line.child("item_id")
        line.child("quantity")
        line.child("discount")
        line.child("comments", optional=True)
        return root

    def schemas(self) -> list[SchemaElement]:
        """Order schema plus the five flat-translated table schemas."""
        all_schemas = [self.schema()]
        for table_name, (root_tag, row_tag, __) in \
                FLAT_DOCUMENT_NAMES.items():
            root = SchemaElement(root_tag)
            row = root.child(row_tag, repeated=True)
            for column in TABLES_BY_NAME[table_name].columns:
                row.child(column, optional=True)
            all_schemas.append(root)
        return all_schemas
