"""TC/SD: the dictionary database (``dictionary.xml``).

One big text-dominated document with numerous word entries, deep nesting,
mixed-content quotation text (the ``qt`` element the paper calls out as a
relational-mapping problem) and cross-references between entries —
modelled on GCIDE/OED.  Size is controlled by ``entry_num`` (paper
default 7333 ≈ 100 MB).
"""

from __future__ import annotations

from ..toxgene.distributions import Bernoulli, Normal, UniformInt
from ..toxgene.generator import generate_document
from ..toxgene.template import (
    ChildTemplate,
    ElementTemplate,
    GenContext,
    choice,
    date_between,
    sentences,
    words,
)
from ..xml.nodes import Document
from ..xml.schema import SchemaElement
from .base import DatabaseClass

PARTS_OF_SPEECH = ["noun", "verb", "adjective", "adverb", "pronoun",
                   "preposition", "conjunction", "interjection"]
QUOTE_LOCATIONS = ["london", "paris", "boston", "dublin", "edinburgh",
                   "york", "oxford", "cambridge", "bath", "bristol"]

# One entry in _TARGET_PERIOD gets a planted target headword, cycling
# through word_1..word_10, so headword lookups are selective but non-empty
# at every scale.
_TARGET_PERIOD = 40


def _headword(ctx: GenContext) -> str:
    number = ctx.next_number("entry_hw")
    residue = number % _TARGET_PERIOD
    if 1 <= residue <= 10:
        return f"word_{residue}"
    base = ctx.pool.word(ctx.rng)
    return f"{base}_{number}"


def _entry_id(ctx: GenContext) -> str:
    return ctx.issue_id("entry", "e")


def _cross_reference(ctx: GenContext) -> str:
    target = ctx.reference("entry")
    return target if target is not None else "e1"


def build_entry_template() -> ElementTemplate:
    """The ``entry`` element template (Figure 1 analogue)."""
    quote = ElementTemplate("quote")
    quote.child(ElementTemplate(
        "qt",
        text=sentences(UniformInt(1, 3), words_per_sentence=8),
        mixed=True,
        children=[ChildTemplate(
            ElementTemplate("emphasis", text=words(UniformInt(1, 2))),
            UniformInt(0, 2))],
    ))
    quote.child(ElementTemplate("author", text=words(UniformInt(2, 3))),
                Bernoulli(0.8))
    quote.child(ElementTemplate("date", text=date_between(1700, 2000)),
                Bernoulli(0.9))
    quote.child(ElementTemplate("location", text=choice(QUOTE_LOCATIONS)),
                Bernoulli(0.7))

    definition = ElementTemplate("definition")
    definition.child(ElementTemplate(
        "def_text", text=sentences(UniformInt(1, 4))))
    definition.child(quote, Normal(2.0, 1.5, minimum=0, maximum=8))

    entry = ElementTemplate("entry")
    entry.attr("id", _entry_id)
    entry.child(ElementTemplate("hw", text=_headword))
    entry.child(ElementTemplate("pronunciation",
                                text=words(UniformInt(1, 1))),
                Bernoulli(0.8))
    entry.child(ElementTemplate("pos", text=choice(PARTS_OF_SPEECH)))
    entry.child(ElementTemplate("etymology",
                                text=sentences(UniformInt(1, 2))),
                Bernoulli(0.6))
    entry.child(definition, Normal(2.0, 1.0, minimum=1, maximum=6))
    cross_ref = ElementTemplate("cross_reference")
    cross_ref.attr("target", _cross_reference)
    entry.child(cross_ref, Bernoulli(0.5))
    return entry


class TCSD(DatabaseClass):
    """Text-centric, single document: the dictionary."""

    key = "tcsd"
    label = "TC/SD"
    size_parameter = "entry_num"
    default_units = 7333
    single_document = True

    def generate(self, units: int, seed: int = 42) -> list[Document]:
        context = GenContext(seed=seed)
        entry_template = build_entry_template()
        dictionary = ElementTemplate("dictionary")
        root = generate_document(dictionary, context, name="dictionary.xml")
        root_element = root.root_element
        for _ in range(units):
            from ..toxgene.generator import generate_element
            root_element.append(generate_element(entry_template, context))
        root.refresh_order()
        return [root]

    def schema(self) -> SchemaElement:
        root = SchemaElement("dictionary")
        entry = root.child("entry", repeated=True)
        entry.attributes.append("id")
        entry.child("hw")
        entry.child("pronunciation", optional=True)
        entry.child("pos")
        entry.child("etymology", optional=True)
        definition = entry.child("definition", repeated=True)
        definition.child("def_text")
        quote = definition.child("quote", optional=True, repeated=True)
        qt = quote.child("qt", mixed=True)
        qt.child("emphasis", optional=True, repeated=True)
        quote.child("author", optional=True)
        quote.child("date", optional=True)
        quote.child("location", optional=True)
        cross_ref = entry.child("cross_reference", optional=True)
        cross_ref.attributes.append("target")
        return root
