"""TC/MD: the article corpus (``article1.xml`` ... ``articleN.xml``).

Numerous relatively small text-centric documents with references between
them, a loose schema and recursive ``sec`` elements — modelled on the
Reuters news corpus and the Springer digital library.  Size is controlled
by ``article_num`` (paper default 266 ≈ 100 MB; individual files range
from a few KB to a few hundred KB).
"""

from __future__ import annotations

import random

from ..toxgene.distributions import Bernoulli, Exponential, UniformInt
from ..toxgene.generator import generate_element
from ..toxgene.template import ElementTemplate, GenContext, date_between
from ..xml.nodes import Document, Element
from ..xml.schema import SchemaElement
from .base import DatabaseClass

# Keyword vocabulary: workload target words appear as article keywords so
# the existential-quantification query (Q6) has controllable selectivity.
_KEYWORDS = ["parsing", "indexing", "storage", "recovery", "replication",
             "optimization", "caching", "scheduling", "streaming",
             "benchmarking", "word_1", "word_2", "word_3"]


class TCMD(DatabaseClass):
    """Text-centric, multiple documents: the article corpus."""

    key = "tcmd"
    label = "TC/MD"
    size_parameter = "article_num"
    default_units = 266
    single_document = False
    _calibration_units = 6

    def generate(self, units: int, seed: int = 42) -> list[Document]:
        context = GenContext(seed=seed)
        documents = []
        for number in range(1, units + 1):
            documents.append(_build_article(context, number, units))
        return documents

    def schema(self) -> SchemaElement:
        root = SchemaElement("article")
        root.attributes.append("id")
        prolog = root.child("prolog")
        prolog.child("title")
        authors = prolog.child("authors")
        author = authors.child("author", repeated=True)
        name = author.child("name")
        name.child("first_name")
        name.child("last_name")
        contact = author.child("contact", optional=True)
        contact.child("email", optional=True)
        contact.child("phone", optional=True)
        author.child("affiliation", optional=True)
        keywords = prolog.child("keywords", optional=True)
        keywords.child("keyword", repeated=True)
        prolog.child("date_of_publication")
        abstract = prolog.child("abstract", optional=True)
        abstract.child("p", repeated=True)
        body = root.child("body")
        # Marked optional because the same node doubles as its own child
        # (nested secs need not be present at every level).
        sec = body.child("sec", optional=True, repeated=True)
        sec.attributes.append("id")
        sec.child("heading", optional=True)
        p = sec.child("p", repeated=True, mixed=True)
        p.child("citation", optional=True, repeated=True)
        # Recursive element type: a sec may contain nested secs (the
        # "possibly recursive elements" feature the paper assigns to TC/MD).
        sec.children.append(sec)
        epilog = root.child("epilog", optional=True)
        references = epilog.child("references", optional=True)
        ref = references.child("ref", repeated=True)
        ref.attributes.append("article")
        return root


def _build_article(context: GenContext, number: int,
                   total: int) -> Document:
    """Build one article document by direct construction.

    Direct construction (rather than a static template) is used because
    sections recurse with depth-dependent probabilities and Q4 needs an
    ``Introduction`` section planted as the first section of roughly half
    of the articles.
    """
    rng = context.rng
    article = Element("article", {"id": str(number)})
    context.issue_id("article", "")

    prolog = article.append_element("prolog")
    prolog.append_element(
        "title", text=" ".join(context.pool.words_sample(
            rng, rng.randint(3, 8))))
    authors = prolog.append_element("authors")
    for _ in range(rng.randint(1, 4)):
        authors.append(_build_author(context))
    if rng.random() < 0.9:
        keywords = prolog.append_element("keywords")
        for keyword in rng.sample(_KEYWORDS, rng.randint(2, 5)):
            keywords.append_element("keyword", text=keyword)
    prolog.append_element("date_of_publication",
                          text=date_between(1995, 2003)(context))
    if rng.random() < 0.85:
        abstract = prolog.append_element("abstract")
        for _ in range(rng.randint(1, 3)):
            abstract.append_element(
                "p", text=context.pool.paragraph(rng, rng.randint(2, 5)))

    body = article.append_element("body")
    # Article sizes are heavy-tailed (the paper's corpora range from 1 KB
    # to hundreds of KB): draw the section count from an exponential.
    section_count = max(int(Exponential(3.0, minimum=1, maximum=30)
                            .sample(rng)), 1)
    for section_index in range(section_count):
        body.append(_build_section(context, depth=0,
                                   first=(section_index == 0),
                                   article_number=number))

    if rng.random() < 0.6:
        epilog = article.append_element("epilog")
        references = epilog.append_element("references")
        for _ in range(rng.randint(1, 5)):
            target = rng.randint(1, max(total, 1))
            ref = references.append_element("ref")
            ref.set_attribute("article", str(target))

    document = Document(article, name=f"article{number}.xml")
    document.refresh_order()
    return document


def _build_author(context: GenContext) -> Element:
    from ..toxgene.text import email_address, person_name, phone_number
    rng = context.rng
    author = Element("author")
    first, last = person_name(rng)
    name = author.append_element("name")
    name.append_element("first_name", text=first)
    name.append_element("last_name", text=last)
    if rng.random() < 0.8:
        contact = author.append_element("contact")
        # Empty contact elements are the Q15 irregularity target.
        if rng.random() >= 0.25:
            if rng.random() < 0.8:
                contact.append_element(
                    "email", text=email_address(rng, first, last))
            if rng.random() < 0.5:
                contact.append_element("phone", text=phone_number(rng))
    if rng.random() < 0.5:
        author.append_element(
            "affiliation",
            text=f"{rng.choice(['University', 'Institute', 'Laboratory'])} "
                 f"of {context.pool.word(rng).capitalize()}")
    return author


def _build_section(context: GenContext, depth: int, first: bool,
                   article_number: int) -> Element:
    rng = context.rng
    section = Element("sec")
    # The paper adds a unique id attribute to sec elements because chain
    # relationships without unique values cannot be shredded faithfully.
    section.set_attribute("id", f"s{context.next_number('sec')}")

    if first:
        section.append_element("heading", text="Introduction")
    elif rng.random() < 0.8:
        section.append_element(
            "heading", text=" ".join(context.pool.words_sample(
                rng, rng.randint(1, 4))).capitalize())

    for _ in range(rng.randint(1, 6)):
        section.append(_build_paragraph(context))

    if depth < 2 and rng.random() < 0.35 - 0.15 * depth:
        for _ in range(rng.randint(1, 3)):
            section.append(_build_section(context, depth + 1, False,
                                          article_number))
    return section


def _build_paragraph(context: GenContext) -> Element:
    rng = context.rng
    paragraph = Element("p")
    paragraph.append_text(context.pool.paragraph(rng, rng.randint(2, 6)))
    if rng.random() < 0.2:
        citation = paragraph.append_element(
            "citation", text=context.pool.phrase(rng, 2))
        del citation
        paragraph.append_text(context.pool.sentence(rng, 8))
    return paragraph
