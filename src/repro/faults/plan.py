"""Deterministic, seed-driven fault injection (``repro.faults.plan``).

A :class:`FaultPlan` is a seeded set of :class:`FaultRule` entries, each
naming an *injection site* (a string like ``"shard.rpc"``), a fault
``kind`` and a trigger (per-call probability and/or an every-nth-call
counter).  Instrumented layers call :func:`inject` (or
:func:`corrupt_value`) at their sites; while no plan is installed — the
default — every hook is a single global read plus a ``None`` check, so
fault injection costs effectively nothing when off, mirroring the obs
recorder's design.

Determinism
-----------

Probability triggers do **not** draw from shared RNG state (which would
make decisions depend on cross-thread/cross-process interleaving).
Instead every decision is a pure function of ``(seed, namespace, site,
call_number)`` hashed through crc32, so the same seed reproduces the
identical fault sequence run after run.  Forked shard workers inherit
the installed plan and re-namespace themselves per ``(shard,
generation)`` via :func:`set_namespace`, so a respawned worker's retried
call sees a *different* decision than the crash that killed its
predecessor — deterministically.

Fault kinds
-----------

``delay``    sleep ``seconds`` then continue normally
``hang``     sleep ``seconds`` (default 30) — long enough to trip RPC
             timeouts and deadlines, short enough not to leak forever
``crash``    ``os._exit(86)`` — only meaningful at worker-process sites
``error``    raise :class:`~repro.errors.FaultInjected`
``corrupt``  mutate the payload at :func:`corrupt_value` sites
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import FaultInjected

#: exit code used by ``crash`` faults (recognizable in incident text).
CRASH_EXIT_CODE = 86

KINDS = ("delay", "hang", "crash", "corrupt", "error")


@dataclass
class FaultRule:
    """One injection rule.

    ``site`` must match the injection site exactly.  ``match`` filters
    on the site's keyword attributes: a plain value must compare equal,
    a tuple/set/list means membership (e.g. ``{"op": ("execute",
    "adhoc")}``).  The rule fires when the (deterministic) probability
    draw passes or the per-site matched-call counter hits ``every``;
    ``limit`` caps total fires per process.
    """

    site: str
    kind: str
    probability: float = 0.0
    every: int | None = None
    seconds: float = 0.0
    match: dict = field(default_factory=dict)
    limit: int | None = None
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {', '.join(KINDS)}")

    def matches(self, attrs: dict) -> bool:
        for key, want in self.match.items():
            got = attrs.get(key)
            if isinstance(want, (tuple, set, frozenset, list)):
                if got not in want:
                    return False
            elif got != want:
                return False
        return True


def _decision(seed: int, namespace: str, site: str, call: int) -> float:
    """Deterministic pseudo-uniform draw in [0, 1) for one call."""
    token = f"{seed}:{namespace}:{site}:{call}".encode("utf-8")
    return zlib.crc32(token) / 4294967296.0


class FaultPlan:
    """A seeded rule set plus per-site call counters and a fired log.

    The ``log`` records every fired fault as ``(site, kind, call,
    attrs)`` in this process, which is what the determinism tests (and
    the chaos scorecard's injected-fault count) read back.
    """

    def __init__(self, seed: int, rules: list[FaultRule]) -> None:
        self.seed = seed
        self.rules = list(rules)
        self.counters: dict[str, int] = {}
        self.log: list[tuple[str, str, int, dict]] = []
        self._sites = {rule.site for rule in self.rules}

    def fire(self, site: str, attrs: dict) -> None:
        """Apply every matching rule for one call at ``site``."""
        if site not in self._sites:
            return
        call = self.counters.get(site, 0) + 1
        self.counters[site] = call
        for rule in self.rules:
            if rule.site != site or not rule.matches(attrs):
                continue
            if rule.limit is not None and rule.fired >= rule.limit:
                continue
            triggered = False
            if rule.every is not None and call % rule.every == 0:
                triggered = True
            elif rule.probability > 0.0:
                draw = _decision(self.seed, _namespace, site, call)
                triggered = draw < rule.probability
            if not triggered:
                continue
            rule.fired += 1
            self.log.append((site, rule.kind, call, dict(attrs)))
            self._apply(rule, site, attrs)

    def corrupt(self, site: str, value, attrs: dict):
        """Like :meth:`fire` but for payload sites: a triggered
        ``corrupt`` rule returns a deterministically mangled copy of
        ``value``; any other outcome returns ``value`` unchanged
        (non-corrupt kinds still apply their side effects)."""
        if site not in self._sites:
            return value
        call = self.counters.get(site, 0) + 1
        self.counters[site] = call
        for rule in self.rules:
            if rule.site != site or not rule.matches(attrs):
                continue
            if rule.limit is not None and rule.fired >= rule.limit:
                continue
            triggered = False
            if rule.every is not None and call % rule.every == 0:
                triggered = True
            elif rule.probability > 0.0:
                draw = _decision(self.seed, _namespace, site, call)
                triggered = draw < rule.probability
            if not triggered:
                continue
            rule.fired += 1
            self.log.append((site, rule.kind, call, dict(attrs)))
            if rule.kind == "corrupt":
                value = _mangle(value)
            else:
                self._apply(rule, site, attrs)
        return value

    @staticmethod
    def _apply(rule: FaultRule, site: str, attrs: dict) -> None:
        if rule.kind == "delay":
            time.sleep(rule.seconds)
        elif rule.kind == "hang":
            time.sleep(rule.seconds or 30.0)
        elif rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif rule.kind == "error":
            detail = (f" (op {attrs['op']})" if "op" in attrs else "")
            raise FaultInjected(f"injected fault at {site}{detail}")
        # "corrupt" at a fire-only site is a no-op: the payload lives
        # at corrupt_value sites.


def _mangle(value):
    """Deterministic corruption of a result payload."""
    if isinstance(value, list):
        return (value[:-1] if value
                else ["<corrupt/>"])          # drop the last item
    if isinstance(value, str):
        return value + "\x00corrupt"
    if isinstance(value, dict):
        mangled = dict(value)
        if "values" in mangled and isinstance(mangled["values"], list):
            mangled["values"] = _mangle(mangled["values"])
        elif "parts" in mangled and mangled["parts"]:
            name, values = mangled["parts"][-1]
            mangled["parts"] = (list(mangled["parts"][:-1])
                                + [(name, _mangle(list(values)))])
        return mangled
    return value


#: The installed plan; ``None`` means fault injection is off.
_active: FaultPlan | None = None
#: Decision namespace: re-keyed per worker process + generation so a
#: respawned worker's retried calls draw fresh decisions.
_namespace: str = ""


def install(plan: FaultPlan) -> None:
    """Route the injection hooks into ``plan``."""
    global _active
    _active = plan


def uninstall() -> None:
    """Disable fault injection (hooks become no-ops again)."""
    global _active
    _active = None


def active() -> FaultPlan | None:
    """The installed plan, if any."""
    return _active


def set_namespace(namespace: str) -> None:
    """Re-key probability decisions (worker processes call this with
    their ``shard``/``generation`` identity after fork)."""
    global _namespace
    _namespace = namespace


@contextmanager
def fault_scope(plan: FaultPlan | None):
    """Install ``plan`` for a block, then restore the previous plan.
    ``None`` makes the block a no-op scope."""
    global _active
    previous = _active
    if plan is not None:
        _active = plan
    try:
        yield plan
    finally:
        _active = previous


# -- hook API (what the instrumented layers call) ---------------------------

def inject(site: str, **attrs) -> None:
    """One injection site; free (global read + None check) when no
    plan is installed.  May sleep, raise
    :class:`~repro.errors.FaultInjected`, or kill the process,
    depending on the matching rule."""
    plan = _active
    if plan is not None:
        plan.fire(site, attrs)


def corrupt_value(site: str, value, **attrs):
    """A payload-carrying injection site: returns ``value`` (possibly
    mangled by a ``corrupt`` rule); free when no plan is installed."""
    plan = _active
    if plan is None:
        return value
    return plan.corrupt(site, value, attrs)
