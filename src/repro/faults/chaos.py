"""The chaos harness: run a workload under a named fault scenario.

Drives a deterministic query stream against a
:class:`~repro.core.shard.ShardedEngine` while a seeded
:class:`~repro.faults.plan.FaultPlan` injects failures, and scores the
service's behaviour: every query must return a result (possibly
partial) or a *typed* incident — no hangs, no unhandled exceptions.
The scorecard (availability %, P99 under faults, retries, breaker
trips, partial results) lands in ``BENCH_chaos.json`` through the obs
recorder, and the same ``(scenario, seed)`` reproduces the identical
fault sequence and counts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..api import consistency_scope
from ..errors import (
    CircuitOpen,
    QueryTimeout,
    ReproError,
    ShardError,
    UnsupportedQuery,
)
from ..obs import LatencyHistogram, Recorder, observing
from ..obs import recorder as _obs
from ..obs import trace as _trace
from .deadline import Deadline, deadline_scope
from .plan import fault_scope
from .scenarios import Scenario, build_scenario

# NOTE: repro.core.shard (and through it the engines) import this
# package's siblings for their injection sites, so the execution-stack
# imports below must stay inside run_chaos() to avoid a cycle.

#: corpus generation seed — fixed so the scenario seed varies only the
#: fault sequence and query mix, never the data.
CORPUS_SEED = 42


@dataclass
class ChaosResult:
    """One chaos run's scorecard."""

    scenario: str
    seed: int
    engine_key: str
    class_key: str
    shards: int
    replicas: int = 0
    consistency: str = "strong"
    #: total operations scored (reads + interleaved writes).
    queries: int = 0
    ok: int = 0
    partial: int = 0
    failed: int = 0
    unhandled: int = 0
    #: interleaved write-stream accounting.  An *acknowledged* write is
    #: one ``update_value`` that returned; the post-storm verification
    #: reads every acknowledged token back under ``strong`` and counts
    #: any mismatch as a lost write (the CI gate requires zero).
    writes: int = 0
    writes_acked: int = 0
    writes_failed: int = 0
    writes_verified: int = 0
    writes_unverified: int = 0
    lost_writes: int = 0
    #: primary->replica promotions the engine performed.
    failovers: int = 0
    #: final :meth:`ShardedEngine.replication_state` snapshot.
    replication: dict = field(default_factory=dict)
    #: durable-mode accounting: whether the run journaled to disk, how
    #: many kill -9 + cold-start cycles it survived, and each cycle's
    #: recovery report (committed seq, WAL records replayed, corrupt
    #: records skipped, wall seconds).
    durable: bool = False
    restarts: int = 0
    recoveries: list = field(default_factory=list)
    wall_seconds: float = 0.0
    latencies: list = field(default_factory=list)
    #: typed incidents: {"qid", "type", "message", "trace_id"} per
    #: failed query; the trace id joins the incident to its spans.
    incidents: list = field(default_factory=list)
    #: obs counter totals relevant to resilience.
    counters: dict = field(default_factory=dict)
    #: faults fired in the parent process (worker-side fires die with
    #: their process; their effects show up as retries/respawns).
    faults_injected: int = 0

    @property
    def availability_pct(self) -> float:
        if not self.queries:
            return 100.0
        return 100.0 * (self.ok + self.partial) / self.queries

    def latency_histogram(self) -> LatencyHistogram:
        return LatencyHistogram(self.latencies)

    def record(self) -> dict:
        """JSON-ready scorecard (for BENCH_chaos.json)."""
        histogram = self.latency_histogram()
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine_key,
            "class": self.class_key,
            "shards": self.shards,
            "replicas": self.replicas,
            "consistency": self.consistency,
            "queries": self.queries,
            "ok": self.ok,
            "partial": self.partial,
            "failed": self.failed,
            "unhandled": self.unhandled,
            "availability_pct": round(self.availability_pct, 3),
            "writes": self.writes,
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "writes_verified": self.writes_verified,
            "writes_unverified": self.writes_unverified,
            "lost_writes": self.lost_writes,
            "failovers": self.failovers,
            "replication": self.replication,
            "durable": self.durable,
            "restarts": self.restarts,
            "recoveries": self.recoveries,
            "wal_append_failures": self.counters.get(
                "wal.append_failures", 0),
            "wall_seconds": self.wall_seconds,
            "latency": histogram.summary(),
            "retries": self.counters.get("shard.retries", 0),
            "respawns": self.counters.get("shard.respawns", 0),
            "breaker_trips": self.counters.get("shard.breaker_trips", 0),
            "partial_results": self.counters.get(
                "shard.partial_results", 0),
            "replica_reads": self.counters.get(
                "shard.replica_reads", 0),
            "replica_fallbacks": self.counters.get(
                "shard.replica_fallbacks", 0),
            "consistency_fallbacks": self.counters.get(
                "shard.consistency_fallbacks", 0),
            "deadline_timeouts": self.counters.get(
                "faults.deadline_timeouts", 0),
            "faults_injected_parent": self.faults_injected,
            "incidents": self.incidents,
        }

    def summary(self) -> str:
        histogram = self.latency_histogram()
        label = f"{self.engine_key} x{self.shards}"
        if self.replicas:
            label += f" +{self.replicas}r ({self.consistency})"
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}) on "
            f"{self.class_key} via {label}:",
            f"  {self.queries} operations: {self.ok} ok, "
            f"{self.partial} partial, {self.failed} failed, "
            f"{self.unhandled} unhandled "
            f"-> availability {self.availability_pct:.2f}%",
            f"  latency under faults: {histogram.format_ms()}",
            f"  retries {self.counters.get('shard.retries', 0)}, "
            f"respawns {self.counters.get('shard.respawns', 0)}, "
            f"breaker trips "
            f"{self.counters.get('shard.breaker_trips', 0)}, "
            f"partial results "
            f"{self.counters.get('shard.partial_results', 0)}",
        ]
        if self.writes:
            lines.append(
                f"  writes: {self.writes_acked}/{self.writes} acked, "
                f"{self.writes_verified} verified, "
                f"{self.writes_unverified} unverified, "
                f"{self.lost_writes} LOST")
        if self.durable:
            replayed = sum(r.get("wal_records", 0)
                           for r in self.recoveries)
            corrupt = sum(r.get("corrupt_records", 0)
                          for r in self.recoveries)
            lines.append(
                f"  durability: {self.restarts} kill -9 + recovery "
                f"cycle(s), {replayed} WAL records replayed, "
                f"{corrupt} corrupt records skipped, "
                f"{self.counters.get('wal.append_failures', 0)} "
                "append failures")
        if self.replicas:
            lines.append(
                f"  replication: {self.failovers} failover(s), "
                f"{self.counters.get('shard.replica_reads', 0)} "
                f"replica reads, "
                f"{self.counters.get('shard.replica_fallbacks', 0)} "
                f"replica fallbacks, "
                f"{self.counters.get('shard.consistency_fallbacks', 0)}"
                f" consistency fallbacks")
        for incident in self.incidents[:8]:
            lines.append(f"  incident {incident['qid']}: "
                         f"{incident['type']}: {incident['message']}")
        if len(self.incidents) > 8:
            lines.append(f"  ... {len(self.incidents) - 8} more "
                         "incident(s)")
        return "\n".join(lines)


def run_chaos(scenario_name: str, *, class_key: str = "dcmd",
              engine_key: str = "native", units: int = 24,
              shards: int = 3, queries: int = 40, seed: int = 7,
              retries: int = 2, degraded: str = "partial",
              rpc_timeout: float | None = None,
              deadline_seconds: float | None = None,
              replicas: int | None = None,
              consistency: str | None = None,
              write_every: int | None = None,
              ship_interval: float | None = None,
              data_dir: str | None = None,
              restarts: int | None = None,
              recorder: Recorder | None = None,
              scenario: Scenario | None = None) -> ChaosResult:
    """Run ``queries`` workload queries under a named fault scenario.

    Explicit ``rpc_timeout``/``deadline_seconds``/``replicas``/
    ``consistency``/``write_every``/``ship_interval``/``restarts``
    override the scenario's recommendations.  With a write cadence,
    acknowledged ``update_value`` writes interleave with the reads and
    every acknowledged token is read back under ``strong`` consistency
    after the storm — a mismatch is a **lost acknowledged write**,
    which the CI gate requires to be zero.

    Durable scenarios (``scenario.durable``, or an explicit
    ``data_dir``/``restarts``) journal every write to a WAL under a
    data directory; ``restarts`` kill -9 + cold-start cycles are spread
    evenly through the stream, so the post-storm verification reads
    acked tokens back from *recovered* state.  Returns the scorecard;
    pass a ``recorder`` to keep the underlying spans/counters (the CLI
    embeds them in the BENCH artifact).
    """
    from ..core.multiuser import _stream_plan
    from ..core.shard import DEFAULT_TIMEOUT, ShardedEngine
    from ..databases import CLASSES_BY_KEY
    from ..workload.updates import UPDATE_TARGETS
    from ..xml.serializer import serialize

    scenario = scenario or build_scenario(scenario_name)
    plan = scenario.plan(seed)
    effective_deadline = (deadline_seconds
                          if deadline_seconds is not None
                          else scenario.deadline_seconds)
    effective_timeout = (rpc_timeout if rpc_timeout is not None
                         else scenario.rpc_timeout)
    if effective_timeout is None:
        effective_timeout = min(DEFAULT_TIMEOUT, 15.0)
    effective_replicas = (replicas if replicas is not None
                          else scenario.replicas)
    effective_consistency = (consistency if consistency is not None
                             else scenario.consistency)
    effective_write_every = (write_every if write_every is not None
                             else scenario.write_every)
    effective_ship = (ship_interval if ship_interval is not None
                      else scenario.ship_interval)
    effective_restarts = (restarts if restarts is not None
                          else scenario.restarts)
    effective_durable = (scenario.durable or effective_restarts > 0
                         or data_dir is not None)
    if class_key not in UPDATE_TARGETS:
        effective_write_every = 0   # reads only: no update workload
    recorder = recorder or Recorder(name="chaos")

    db_class = CLASSES_BY_KEY[class_key]
    documents = db_class.generate(units, seed=CORPUS_SEED)
    texts = [(doc.name, serialize(doc)) for doc in documents]
    stream = _stream_plan(class_key, units, queries, seed,
                          _applicable_experiment_queries(class_key))

    result = ChaosResult(scenario.name, seed, engine_key, class_key,
                         shards, replicas=effective_replicas,
                         consistency=effective_consistency,
                         durable=effective_durable)
    engine_kwargs = dict(timeout=effective_timeout, retries=retries,
                         degraded=degraded, seed=seed,
                         breaker_cooldown=0.5,
                         replicas=effective_replicas,
                         ship_interval=effective_ship)
    cleanup_dir = None
    if effective_durable:
        if data_dir is None:
            import tempfile
            data_dir = tempfile.mkdtemp(prefix="repro-chaos-wal-")
            cleanup_dir = data_dir
        engine_kwargs.update(data_dir=data_dir, fsync=scenario.fsync)
    engine = ShardedEngine(engine_key, shards=shards, **engine_kwargs)
    # kill -9 points, spread evenly through the stream (operation
    # numbers after which the engine is hard-killed and recovered).
    restart_points = {queries * (cycle + 1) // (effective_restarts + 1)
                      for cycle in range(effective_restarts)}
    write_rng = random.Random(seed * 31 + 1)
    #: id -> last token written, or None once a write attempt on that
    #: id failed (its final state is unknowable, so it is excluded
    #: from the lost-write check rather than trusted either way).
    expected: dict[str, str] = {}
    wall_start = time.perf_counter()
    try:
        # The plan is installed before bulk_load so forked workers (and
        # later respawns) inherit it; scenario rules match query/write
        # ops only, keeping the load phase healthy.
        with observing(recorder), fault_scope(plan):
            engine.timed_load(db_class, texts)
            operation = 0
            for qid, params in stream:
                operation += 1
                if operation in restart_points:
                    # kill -9: workers SIGKILLed mid-stream, no clean
                    # shutdown — then cold-start from the newest valid
                    # checkpoint + WAL replay.  Every write acked
                    # before this point must survive it.
                    engine.abort()
                    engine = ShardedEngine(engine_key, shards=shards,
                                           recover_dir=data_dir,
                                           **engine_kwargs)
                    report = dict(engine.last_recovery_report or {})
                    report["operation"] = operation
                    result.recoveries.append(report)
                    result.restarts += 1
                if (effective_write_every
                        and operation % effective_write_every == 0):
                    _run_write(engine, class_key,
                               str(write_rng.randint(1, units)),
                               f"tok{operation}", result, expected)
                with consistency_scope(effective_consistency):
                    _run_one(engine, qid, params, effective_deadline,
                             result)
        # Post-storm verification runs outside the fault scope: newly
        # respawned workers fork clean, and retries/failover absorb
        # any leftover faulty worker.
        with observing(recorder):
            _verify_acked_writes(engine, class_key, expected, result)
            result.failovers = engine.failovers
            if effective_replicas:
                result.replication = engine.replication_state()
    finally:
        engine.close()
        if cleanup_dir is not None:
            import shutil
            shutil.rmtree(cleanup_dir, ignore_errors=True)
    result.wall_seconds = time.perf_counter() - wall_start
    result.counters = recorder.counters.snapshot()
    result.faults_injected = len(plan.log)
    return result


def _applicable_experiment_queries(class_key: str) -> tuple[str, ...]:
    from ..workload.queries import EXPERIMENT_QUERIES, QUERIES_BY_ID
    return tuple(qid for qid in EXPERIMENT_QUERIES
                 if QUERIES_BY_ID[qid].applies_to(class_key))


def _run_one(engine, qid: str, params: dict,
             deadline_seconds: float | None,
             result: ChaosResult) -> None:
    result.queries += 1
    partials_before = len(engine.partials)
    deadline = (Deadline(deadline_seconds)
                if deadline_seconds is not None else None)
    # Every chaos query gets its own trace, so incidents carry an id
    # that matches the spans (and shard partials) of the request that
    # produced them.
    trace_id = _trace.new_trace_id()
    start = time.perf_counter()
    try:
        with _trace.trace_scope(_trace.TraceContext(trace_id)), \
                deadline_scope(deadline):
            engine.execute(qid, params)
    except UnsupportedQuery:
        # Not a fault outcome: the query simply has no translation.
        result.queries -= 1
        return
    except QueryTimeout as exc:
        _obs.count("faults.deadline_timeouts")
        _incident(result, qid, exc, trace_id)
        return
    except (CircuitOpen, ShardError, ReproError) as exc:
        _incident(result, qid, exc, trace_id)
        return
    except Exception as exc:  # noqa: BLE001 - scored, then surfaced
        result.unhandled += 1
        _incident(result, qid, exc, trace_id)
        return
    elapsed = time.perf_counter() - start
    result.latencies.append(elapsed)
    _obs.record_latency("chaos.query", elapsed)
    if len(engine.partials) > partials_before:
        result.partial += 1
    else:
        result.ok += 1


def _run_write(engine, class_key: str, id_value: str, token: str,
               result: ChaosResult,
               expected: dict[str, str | None]) -> None:
    """One interleaved ``update_value`` write, scored like a query.

    An acknowledged write records its token in ``expected`` for the
    post-storm read-back; a *failed* write poisons its id (set to
    ``None``) because the document's final state is unknowable — the
    write may or may not have landed before the fault fired.
    """
    from ..workload.updates import UPDATE_TARGETS

    id_path, target_tag, __ = UPDATE_TARGETS[class_key]
    result.queries += 1
    result.writes += 1
    trace_id = _trace.new_trace_id()
    start = time.perf_counter()
    try:
        with _trace.trace_scope(_trace.TraceContext(trace_id)):
            engine.update_value(id_path, id_value, target_tag, token)
    except (CircuitOpen, ShardError, ReproError) as exc:
        result.writes_failed += 1
        expected[id_value] = None
        _incident(result, f"write:{id_value}", exc, trace_id)
        return
    except Exception as exc:  # noqa: BLE001 - scored, then surfaced
        result.unhandled += 1
        result.writes_failed += 1
        expected[id_value] = None
        _incident(result, f"write:{id_value}", exc, trace_id)
        return
    elapsed = time.perf_counter() - start
    result.latencies.append(elapsed)
    _obs.record_latency("chaos.write", elapsed)
    result.ok += 1
    result.writes_acked += 1
    expected[id_value] = token


def _verify_acked_writes(engine, class_key: str,
                         expected: dict[str, str | None],
                         result: ChaosResult) -> None:
    """Read every acknowledged token back under ``strong`` consistency.

    A readable document missing its token is a **lost acknowledged
    write**.  A document whose read keeps failing on infrastructure
    errors (a worker still carrying an inherited fault plan, say)
    counts as *unverified*, not lost — absence of evidence either way.
    """
    from ..workload.updates import UPDATE_TARGETS

    if class_key not in UPDATE_TARGETS or not expected:
        return
    id_path, target_tag, __ = UPDATE_TARGETS[class_key]
    root = id_path.split("/")[0]
    query = f"collection()/{root}[@id = $id]//{target_tag}"
    for id_value, token in sorted(expected.items()):
        if token is None:
            continue   # poisoned by a failed write: state unknowable
        values: list | None = None
        last_error: Exception | None = None
        for __attempt in range(3):
            try:
                with consistency_scope("strong"):
                    values = engine.adhoc(query,
                                          {"id": id_value}).values
                break
            except (CircuitOpen, ShardError, ReproError) as exc:
                last_error = exc
                time.sleep(0.05)
        if values is None:
            result.writes_unverified += 1
            _incident(result, f"verify:{id_value}",
                      last_error or ShardError("verification failed"))
            continue
        if any(token in value for value in values):
            result.writes_verified += 1
        else:
            result.lost_writes += 1
            result.incidents.append({
                "qid": f"verify:{id_value}",
                "type": "LostWrite",
                "message": (f"acknowledged token {token!r} missing "
                            f"from read-back {values!r}"),
                "trace_id": None,
            })
            _obs.count("chaos.lost_writes")


def _incident(result: ChaosResult, qid: str, exc: Exception,
              trace_id: str | None = None) -> None:
    result.failed += 1
    result.incidents.append({
        "qid": qid,
        "type": type(exc).__name__,
        "message": str(exc),
        "trace_id": getattr(exc, "trace_id", None) or trace_id,
    })
    _obs.count("chaos.incidents")
