"""The chaos harness: run a workload under a named fault scenario.

Drives a deterministic query stream against a
:class:`~repro.core.shard.ShardedEngine` while a seeded
:class:`~repro.faults.plan.FaultPlan` injects failures, and scores the
service's behaviour: every query must return a result (possibly
partial) or a *typed* incident — no hangs, no unhandled exceptions.
The scorecard (availability %, P99 under faults, retries, breaker
trips, partial results) lands in ``BENCH_chaos.json`` through the obs
recorder, and the same ``(scenario, seed)`` reproduces the identical
fault sequence and counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import (
    CircuitOpen,
    QueryTimeout,
    ReproError,
    ShardError,
    UnsupportedQuery,
)
from ..obs import LatencyHistogram, Recorder, observing
from ..obs import recorder as _obs
from ..obs import trace as _trace
from .deadline import Deadline, deadline_scope
from .plan import fault_scope
from .scenarios import Scenario, build_scenario

# NOTE: repro.core.shard (and through it the engines) import this
# package's siblings for their injection sites, so the execution-stack
# imports below must stay inside run_chaos() to avoid a cycle.

#: corpus generation seed — fixed so the scenario seed varies only the
#: fault sequence and query mix, never the data.
CORPUS_SEED = 42


@dataclass
class ChaosResult:
    """One chaos run's scorecard."""

    scenario: str
    seed: int
    engine_key: str
    class_key: str
    shards: int
    queries: int = 0
    ok: int = 0
    partial: int = 0
    failed: int = 0
    unhandled: int = 0
    wall_seconds: float = 0.0
    latencies: list = field(default_factory=list)
    #: typed incidents: {"qid", "type", "message", "trace_id"} per
    #: failed query; the trace id joins the incident to its spans.
    incidents: list = field(default_factory=list)
    #: obs counter totals relevant to resilience.
    counters: dict = field(default_factory=dict)
    #: faults fired in the parent process (worker-side fires die with
    #: their process; their effects show up as retries/respawns).
    faults_injected: int = 0

    @property
    def availability_pct(self) -> float:
        if not self.queries:
            return 100.0
        return 100.0 * (self.ok + self.partial) / self.queries

    def latency_histogram(self) -> LatencyHistogram:
        return LatencyHistogram(self.latencies)

    def record(self) -> dict:
        """JSON-ready scorecard (for BENCH_chaos.json)."""
        histogram = self.latency_histogram()
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine_key,
            "class": self.class_key,
            "shards": self.shards,
            "queries": self.queries,
            "ok": self.ok,
            "partial": self.partial,
            "failed": self.failed,
            "unhandled": self.unhandled,
            "availability_pct": round(self.availability_pct, 3),
            "wall_seconds": self.wall_seconds,
            "latency": histogram.summary(),
            "retries": self.counters.get("shard.retries", 0),
            "respawns": self.counters.get("shard.respawns", 0),
            "breaker_trips": self.counters.get("shard.breaker_trips", 0),
            "partial_results": self.counters.get(
                "shard.partial_results", 0),
            "deadline_timeouts": self.counters.get(
                "faults.deadline_timeouts", 0),
            "faults_injected_parent": self.faults_injected,
            "incidents": self.incidents,
        }

    def summary(self) -> str:
        histogram = self.latency_histogram()
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}) on "
            f"{self.class_key} via {self.engine_key} x{self.shards}:",
            f"  {self.queries} queries: {self.ok} ok, "
            f"{self.partial} partial, {self.failed} failed, "
            f"{self.unhandled} unhandled "
            f"-> availability {self.availability_pct:.2f}%",
            f"  latency under faults: {histogram.format_ms()}",
            f"  retries {self.counters.get('shard.retries', 0)}, "
            f"respawns {self.counters.get('shard.respawns', 0)}, "
            f"breaker trips "
            f"{self.counters.get('shard.breaker_trips', 0)}, "
            f"partial results "
            f"{self.counters.get('shard.partial_results', 0)}",
        ]
        for incident in self.incidents[:8]:
            lines.append(f"  incident {incident['qid']}: "
                         f"{incident['type']}: {incident['message']}")
        if len(self.incidents) > 8:
            lines.append(f"  ... {len(self.incidents) - 8} more "
                         "incident(s)")
        return "\n".join(lines)


def run_chaos(scenario_name: str, *, class_key: str = "dcmd",
              engine_key: str = "native", units: int = 24,
              shards: int = 3, queries: int = 40, seed: int = 7,
              retries: int = 2, degraded: str = "partial",
              rpc_timeout: float | None = None,
              deadline_seconds: float | None = None,
              recorder: Recorder | None = None,
              scenario: Scenario | None = None) -> ChaosResult:
    """Run ``queries`` workload queries under a named fault scenario.

    Explicit ``rpc_timeout``/``deadline_seconds`` override the
    scenario's recommendations.  Returns the scorecard; pass a
    ``recorder`` to keep the underlying spans/counters (the CLI embeds
    them in the BENCH artifact).
    """
    from ..core.multiuser import _stream_plan
    from ..core.shard import DEFAULT_TIMEOUT, ShardedEngine
    from ..databases import CLASSES_BY_KEY
    from ..xml.serializer import serialize

    scenario = scenario or build_scenario(scenario_name)
    plan = scenario.plan(seed)
    effective_deadline = (deadline_seconds
                          if deadline_seconds is not None
                          else scenario.deadline_seconds)
    effective_timeout = (rpc_timeout if rpc_timeout is not None
                         else scenario.rpc_timeout)
    if effective_timeout is None:
        effective_timeout = min(DEFAULT_TIMEOUT, 15.0)
    recorder = recorder or Recorder(name="chaos")

    db_class = CLASSES_BY_KEY[class_key]
    documents = db_class.generate(units, seed=CORPUS_SEED)
    texts = [(doc.name, serialize(doc)) for doc in documents]
    stream = _stream_plan(class_key, units, queries, seed,
                          _applicable_experiment_queries(class_key))

    result = ChaosResult(scenario.name, seed, engine_key, class_key,
                         shards)
    engine = ShardedEngine(engine_key, shards=shards,
                           timeout=effective_timeout, retries=retries,
                           degraded=degraded, seed=seed,
                           breaker_cooldown=0.5)
    wall_start = time.perf_counter()
    # The plan is installed before bulk_load so forked workers (and
    # later respawns) inherit it; scenario rules match query ops only,
    # keeping the load phase healthy.
    with observing(recorder), fault_scope(plan):
        try:
            engine.timed_load(db_class, texts)
            for qid, params in stream:
                _run_one(engine, qid, params, effective_deadline,
                         result)
        finally:
            engine.close()
    result.wall_seconds = time.perf_counter() - wall_start
    result.counters = recorder.counters.snapshot()
    result.faults_injected = len(plan.log)
    return result


def _applicable_experiment_queries(class_key: str) -> tuple[str, ...]:
    from ..workload.queries import EXPERIMENT_QUERIES, QUERIES_BY_ID
    return tuple(qid for qid in EXPERIMENT_QUERIES
                 if QUERIES_BY_ID[qid].applies_to(class_key))


def _run_one(engine, qid: str, params: dict,
             deadline_seconds: float | None,
             result: ChaosResult) -> None:
    result.queries += 1
    partials_before = len(engine.partials)
    deadline = (Deadline(deadline_seconds)
                if deadline_seconds is not None else None)
    # Every chaos query gets its own trace, so incidents carry an id
    # that matches the spans (and shard partials) of the request that
    # produced them.
    trace_id = _trace.new_trace_id()
    start = time.perf_counter()
    try:
        with _trace.trace_scope(_trace.TraceContext(trace_id)), \
                deadline_scope(deadline):
            engine.execute(qid, params)
    except UnsupportedQuery:
        # Not a fault outcome: the query simply has no translation.
        result.queries -= 1
        return
    except QueryTimeout as exc:
        _obs.count("faults.deadline_timeouts")
        _incident(result, qid, exc, trace_id)
        return
    except (CircuitOpen, ShardError, ReproError) as exc:
        _incident(result, qid, exc, trace_id)
        return
    except Exception as exc:  # noqa: BLE001 - scored, then surfaced
        result.unhandled += 1
        _incident(result, qid, exc, trace_id)
        return
    elapsed = time.perf_counter() - start
    result.latencies.append(elapsed)
    _obs.record_latency("chaos.query", elapsed)
    if len(engine.partials) > partials_before:
        result.partial += 1
    else:
        result.ok += 1


def _incident(result: ChaosResult, qid: str, exc: Exception,
              trace_id: str | None = None) -> None:
    result.failed += 1
    result.incidents.append({
        "qid": qid,
        "type": type(exc).__name__,
        "message": str(exc),
        "trace_id": getattr(exc, "trace_id", None) or trace_id,
    })
    _obs.count("chaos.incidents")
