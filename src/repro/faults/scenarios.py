"""Named chaos scenarios for the ``repro chaos`` harness.

Each scenario is a recipe: a set of :class:`~repro.faults.plan.FaultRule`
entries plus the harness knobs that make the scenario meaningful (a
per-query deadline for ``query-bomb``, a short RPC timeout for
``slow-shard``...).  Scenarios are pure data — :func:`build_scenario`
instantiates the seeded :class:`~repro.faults.plan.FaultPlan` so the
same ``(scenario, seed)`` pair reproduces the identical fault sequence.

Sites used (registered across the execution stack):

* ``shard.rpc``      — worker-side, once per RPC (attrs: op, shard)
* ``shard.pipe``     — parent-side, once per send (attrs: op, shard)
* ``shard.result``   — worker-side payload site (corruption)
* ``engine.execute`` / ``engine.bulk_load`` — engine entry points
* ``relstore.scan`` / ``relstore.insert``   — table I/O
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BenchmarkError
from .plan import FaultPlan, FaultRule

#: worker ops that carry query work (load/index ops stay healthy so
#: scenarios measure query-time resilience, not setup failures).
QUERY_OPS = ("execute", "execute_per_doc", "adhoc")


@dataclass(frozen=True)
class Scenario:
    """One named chaos recipe."""

    name: str
    description: str
    rules: tuple = ()
    #: per-query deadline the harness installs (None = no deadline).
    deadline_seconds: float | None = None
    #: per-RPC timeout override for the sharded engine.
    rpc_timeout: float | None = None
    #: read replicas per shard the harness provisions (0 = none).
    replicas: int = 0
    #: interleave one acknowledged write every N queries (0 = reads
    #: only) — the raw material of the lost-write gate.
    write_every: int = 0
    #: consistency tier the harness reads under.
    consistency: str = "strong"
    #: journal ship interval for the engine (<= 0 ships synchronously).
    ship_interval: float = 0.0
    #: run the engine in durable mode: the harness provisions a data
    #: directory (WAL + checkpoints) and the post-storm verification
    #: reads acked writes back from *recovered* state.
    durable: bool = False
    #: WAL fsync policy for durable runs.  ``"always"`` is the honest
    #: setting for kill -9 storms: an ack means the record is on disk.
    fsync: str = "always"
    #: kill -9 + recover cycles spread evenly through the stream (the
    #: whole engine is hard-killed mid-workload and cold-started from
    #: checkpoint + WAL replay).  Implies ``durable``.
    restarts: int = 0
    extra: dict = field(default_factory=dict)

    def plan(self, seed: int) -> FaultPlan:
        """A fresh seeded plan (rules are copied: ``fired`` counters
        are per-run state)."""
        rules = [FaultRule(site=rule.site, kind=rule.kind,
                           probability=rule.probability,
                           every=rule.every, seconds=rule.seconds,
                           match=dict(rule.match), limit=rule.limit)
                 for rule in self.rules]
        return FaultPlan(seed, rules)


SCENARIOS: dict[str, Scenario] = {
    "worker-crash-storm": Scenario(
        name="worker-crash-storm",
        description=("workers die mid-query (~12% of query RPCs): "
                     "exercises death detection, respawn + journal "
                     "replay, and backoff retries"),
        rules=(FaultRule(site="shard.rpc", kind="crash",
                         probability=0.12,
                         match={"op": QUERY_OPS}),),
    ),
    "slow-shard": Scenario(
        name="slow-shard",
        description=("one shard answers every query RPC ~80 ms late: "
                     "exercises tail latency accounting and, with a "
                     "short RPC timeout, timeout + retry paths"),
        rules=(FaultRule(site="shard.rpc", kind="delay", seconds=0.08,
                         probability=1.0,
                         match={"op": QUERY_OPS, "shard": 0}),),
    ),
    "flaky-pipe": Scenario(
        name="flaky-pipe",
        description=("the parent's RPC pipe drops ~15% of sends: "
                     "exercises infrastructure retries and the "
                     "per-shard circuit breaker"),
        rules=(FaultRule(site="shard.pipe", kind="error",
                         probability=0.15,
                         match={"op": QUERY_OPS}),),
    ),
    "query-bomb": Scenario(
        name="query-bomb",
        description=("~25% of queries stall ~0.6 s inside the engine "
                     "against a 0.25 s deadline: exercises cooperative "
                     "cancellation (QueryTimeout) end to end"),
        rules=(FaultRule(site="shard.rpc", kind="delay", seconds=0.6,
                         probability=0.25,
                         match={"op": QUERY_OPS}),),
        deadline_seconds=0.25,
    ),
    "failover-storm": Scenario(
        name="failover-storm",
        description=("workers (primaries and replicas alike) crash on "
                     "~8% of query/write RPCs while acknowledged "
                     "writes interleave with eventual-consistency "
                     "reads: exercises replica fallback, primary "
                     "failover with journal catch-up, and the "
                     "zero-lost-acknowledged-writes guarantee"),
        rules=(FaultRule(site="shard.rpc", kind="crash",
                         probability=0.08,
                         match={"op": QUERY_OPS
                                + ("update_value",)}),),
        replicas=2,
        write_every=4,
        consistency="eventual",
    ),
    "kill9-restart-storm": Scenario(
        name="kill9-restart-storm",
        description=("the whole engine is hard-killed (kill -9 "
                     "semantics: workers SIGKILLed, no shutdown "
                     "checkpoint) three times mid-workload and "
                     "cold-started from checkpoint + WAL replay each "
                     "time, with acknowledged writes interleaving "
                     "throughout: exercises torn-tail truncation, "
                     "recovery to the exact committed sequence, and "
                     "the zero-lost-acknowledged-writes guarantee "
                     "across restarts"),
        durable=True,
        restarts=3,
        write_every=3,
        consistency="strong",
    ),
    "disk-fault": Scenario(
        name="disk-fault",
        description=("~15% of WAL appends fail at the disk layer: "
                     "the affected writes surface typed errors "
                     "(unacknowledged, excluded from the lost-write "
                     "gate) while acknowledged writes keep their "
                     "durability guarantee — verified through a final "
                     "kill -9 + recovery"),
        rules=(FaultRule(site="wal.append", kind="error",
                         probability=0.15),),
        durable=True,
        restarts=1,
        write_every=2,
        consistency="strong",
    ),
    "replica-lag": Scenario(
        name="replica-lag",
        description=("every journal replay batch lands ~120 ms late "
                     "under a 50 ms ship interval: exercises lag "
                     "observation, bounded-staleness routing and the "
                     "primary fallback when no replica is fresh "
                     "enough"),
        rules=(FaultRule(site="shard.rpc", kind="delay", seconds=0.12,
                         probability=1.0,
                         match={"op": "replay"}),),
        replicas=1,
        write_every=3,
        consistency="bounded_staleness:2",
        ship_interval=0.05,
    ),
}


def build_scenario(name: str) -> Scenario:
    """Resolve a scenario by name (raising with the known names)."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise BenchmarkError(
            f"unknown chaos scenario {name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}")
    return scenario
