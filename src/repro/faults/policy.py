"""Resilience policies: retry backoff and per-shard circuit breakers.

Both are deliberately clock-injectable and seed-deterministic so the
chaos harness's scorecards replay exactly: backoff jitter draws from a
seeded RNG, and breaker transitions depend only on the injected clock
and the observed failure sequence.
"""

from __future__ import annotations

import random
import time

from ..errors import CircuitOpen


class RetryPolicy:
    """Exponential backoff with deterministic jitter and a retry budget.

    ``retries`` is the number of *extra* attempts after the first.
    Sleeps grow as ``base * 2**attempt`` capped at ``cap``, each
    stretched by up to ``jitter`` fractional noise from the seeded RNG.
    ``budget_seconds`` bounds the cumulative backoff sleep per policy
    instance: once spent, :meth:`allow_retry` refuses further retries —
    a storm of failing calls degrades fast instead of stalling the
    harness in sleeps.
    """

    def __init__(self, retries: int = 1, base: float = 0.05,
                 cap: float = 2.0, jitter: float = 0.5,
                 budget_seconds: float = 30.0, seed: int = 0,
                 sleep=time.sleep) -> None:
        self.retries = max(0, retries)
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.budget_seconds = budget_seconds
        self.spent = 0.0
        self._rng = random.Random(seed)
        self._sleep = sleep

    @property
    def attempts(self) -> int:
        """Total attempts per call (first try + retries)."""
        return self.retries + 1

    def backoff(self, attempt: int) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * (2.0 ** attempt))
        return raw * (1.0 + self.jitter * self._rng.random())

    def allow_retry(self, attempt: int) -> bool:
        """May retry number ``attempt`` (0-based) proceed?"""
        if attempt >= self.retries:
            return False
        return self.spent < self.budget_seconds

    def pause(self, attempt: int) -> float:
        """Sleep the backoff for ``attempt`` (bounded by the remaining
        budget) and account it; returns the seconds slept."""
        seconds = min(self.backoff(attempt),
                      max(0.0, self.budget_seconds - self.spent))
        if seconds > 0.0:
            self._sleep(seconds)
        self.spent += seconds
        return seconds


#: circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Per-shard breaker: trip after K consecutive infrastructure
    failures, fail fast while open, probe once after the cooldown.

    * ``closed``    — normal operation; failures accumulate.
    * ``open``      — :meth:`allow` raises
      :class:`~repro.errors.CircuitOpen` until ``cooldown`` elapses.
    * ``half-open`` — one probe call is allowed; success closes the
      breaker, failure re-opens it (and restarts the cooldown).
    """

    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 name: str = "", clock=time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.name = name
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0

    def allow(self) -> None:
        """Gate one call; raises :class:`~repro.errors.CircuitOpen`
        while the breaker is open and the cooldown has not elapsed."""
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
            else:
                remaining = (self.cooldown
                             - (self._clock() - self._opened_at))
                raise CircuitOpen(
                    f"{self.name or 'circuit'}: open after "
                    f"{self.consecutive_failures} consecutive "
                    f"failures; retry in {max(0.0, remaining):.1f}s")

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED

    def record_failure(self) -> bool:
        """Account one infrastructure failure; True when this failure
        trips (or re-trips) the breaker."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()
            return True
        if (self.state == CLOSED
                and self.consecutive_failures >= self.threshold):
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self.state = OPEN
        self.trips += 1
        self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.name or '?'} {self.state} "
                f"failures={self.consecutive_failures} "
                f"trips={self.trips}>")
