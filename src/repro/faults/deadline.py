"""Deadline propagation and cooperative cancellation.

A :class:`Deadline` is an absolute expiry on the monotonic clock,
carried from ``BenchmarkConfig``/CLI flags down into the query engines.
Long-running layers — the XQuery evaluator's AST dispatch and the edge
path compiler's step loop — call :func:`checkpoint` as they work; every
:data:`CHECK_EVERY` steps the thread-local deadline is consulted and an
expired one raises :class:`~repro.errors.QueryTimeout`, so a runaway (or
fault-delayed) query aborts with a typed error instead of hanging the
harness.

Crossing the sharded RPC boundary, the parent sends the *remaining*
budget with the call (``("deadline", remaining, message)``) and the
worker installs it around the op, so the worker-side evaluator enforces
the same deadline cooperatively while the parent bounds its pipe wait by
the same remainder (plus a grace period, so the worker's typed
``QueryTimeout`` reply wins the race against the parent's
infrastructure timeout).

Cost model: with no deadline installed anywhere, :func:`checkpoint` is
one global read and a return — the evaluator's hot path stays
observation-free, mirroring the obs recorder and the fault plan hooks.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..errors import QueryTimeout
from ..obs import trace as _trace

#: evaluation steps between deadline checks.
CHECK_EVERY = 64

_state = threading.local()
#: count of active deadline scopes across all threads: the cheap gate
#: read by :func:`checkpoint` before touching thread-local state.
_enabled = 0


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at", "budget")

    def __init__(self, seconds: float) -> None:
        self.budget = float(seconds)
        self.expires_at = time.monotonic() + self.budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "query") -> None:
        """Raise :class:`~repro.errors.QueryTimeout` if expired."""
        if self.expired():
            raise QueryTimeout(f"{what} exceeded its deadline",
                               budget_seconds=self.budget,
                               trace_id=_trace.current_trace_id())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Deadline budget={self.budget:.3f}s "
                f"remaining={self.remaining():.3f}s>")


def current() -> Deadline | None:
    """The calling thread's innermost active deadline, if any."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` for the calling thread for a block; nests
    (the innermost deadline wins).  ``None`` is an explicit no-op scope
    so call sites need no conditional."""
    if deadline is None:
        yield None
        return
    global _enabled
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(deadline)
    _enabled += 1
    try:
        yield deadline
    finally:
        stack.pop()
        _enabled -= 1


def checkpoint() -> None:
    """Cooperative cancellation point (call from evaluation loops).

    Free when no deadline is active anywhere; otherwise checks the
    thread-local deadline every :data:`CHECK_EVERY` calls and raises
    :class:`~repro.errors.QueryTimeout` once it has expired.
    """
    if not _enabled:
        return
    ticks = getattr(_state, "ticks", 0) + 1
    _state.ticks = ticks
    if ticks % CHECK_EVERY:
        return
    deadline = current()
    if deadline is not None:
        deadline.check("evaluation")
