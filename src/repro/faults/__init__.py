"""repro.faults — deterministic fault injection and resilience.

Four pieces, one import surface:

* :mod:`~repro.faults.plan` — seeded :class:`FaultPlan`/:class:`FaultRule`
  and the injection hooks (``inject``/``corrupt_value``), no-ops until a
  plan is installed;
* :mod:`~repro.faults.deadline` — :class:`Deadline` propagation with
  cooperative cancellation checkpoints
  (:class:`~repro.errors.QueryTimeout`);
* :mod:`~repro.faults.policy` — :class:`RetryPolicy` (exponential
  backoff + jitter + budget) and per-shard :class:`CircuitBreaker`;
* :mod:`~repro.faults.scenarios` / :mod:`~repro.faults.chaos` — named
  chaos scenarios and the ``repro chaos`` harness producing the
  ``BENCH_chaos.json`` scorecard.

Like the obs recorder, every hook costs one global read plus a ``None``
check while inactive, so the production query path pays nothing.
"""

from .chaos import ChaosResult, run_chaos
from .deadline import CHECK_EVERY, Deadline, checkpoint, deadline_scope
from .plan import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultRule,
    corrupt_value,
    fault_scope,
    inject,
    install,
    set_namespace,
    uninstall,
)
from .policy import CircuitBreaker, RetryPolicy
from .scenarios import SCENARIOS, Scenario, build_scenario

__all__ = [
    "CHECK_EVERY",
    "CRASH_EXIT_CODE",
    "SCENARIOS",
    "ChaosResult",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "Scenario",
    "build_scenario",
    "checkpoint",
    "corrupt_value",
    "deadline_scope",
    "fault_scope",
    "inject",
    "install",
    "run_chaos",
    "set_namespace",
    "uninstall",
]
