"""Update workload (the paper's planned extension #2).

The first XBench version covers "queries and bulk loading; workloads
testing update performance will be included in subsequent versions".
This module is that subsequent version for the multi-document classes,
where updates are natural: new documents arrive (orders placed, articles
published), values inside documents change (an order's status), and old
documents are archived.

:func:`make_update_stream` produces a deterministic mixed stream of the
three operation kinds; :func:`run_update_stream` applies it to a loaded
engine, timing each kind separately.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..databases import CLASSES_BY_KEY
from ..errors import BenchmarkError
from ..xml.serializer import serialize

#: per class: (id index path, updatable leaf tag, new value to write)
UPDATE_TARGETS = {
    "dcmd": ("order/@id", "order_status", "SHIPPED"),
    "tcmd": ("article/@id", "date_of_publication", "2004-01-01"),
}


@dataclass(frozen=True)
class UpdateOp:
    """One operation of the stream."""

    kind: str                      # "insert" | "update" | "delete"
    name: str = ""                 # document name (insert/delete)
    text: str = ""                 # document text (insert)
    id_value: str = ""             # key value (update)
    target_tag: str = ""
    new_value: str = ""


@dataclass
class UpdateStats:
    """Per-kind operation counts and elapsed time."""

    counts: dict = field(default_factory=dict)
    seconds: dict = field(default_factory=dict)

    def record(self, kind: str, elapsed: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.seconds[kind] = self.seconds.get(kind, 0.0) + elapsed

    def mean_ms(self, kind: str) -> float:
        count = self.counts.get(kind, 0)
        if not count:
            return 0.0
        return self.seconds[kind] * 1000.0 / count


def make_update_stream(class_key: str, units: int, count: int = 30,
                       seed: int = 7) -> list[UpdateOp]:
    """A deterministic stream of inserts/updates/deletes (roughly
    40/40/20), sized for a database generated with ``units`` units.

    Inserted documents are freshly generated and renumbered past the
    existing id range, so they never collide; deletes and updates target
    existing mid-range documents.
    """
    if class_key not in UPDATE_TARGETS:
        raise BenchmarkError(
            f"update workload is defined for multi-document classes, "
            f"not {class_key!r}")
    id_path, target_tag, new_value = UPDATE_TARGETS[class_key]
    prefix = "order" if class_key == "dcmd" else "article"

    rng = random.Random(seed)
    insert_budget = max(count * 2 // 5, 1)
    fresh = _fresh_documents(class_key, units, insert_budget, seed)

    operations: list[UpdateOp] = []
    inserted = 0
    deletable = list(range(1, units + 1))
    rng.shuffle(deletable)
    for position in range(count):
        roll = rng.random()
        if roll < 0.4 and inserted < len(fresh):
            name, text = fresh[inserted]
            inserted += 1
            operations.append(UpdateOp("insert", name=name, text=text))
        elif roll < 0.8 or not deletable:
            target_id = str(rng.randint(1, units))
            operations.append(UpdateOp(
                "update", id_value=target_id, target_tag=target_tag,
                new_value=new_value))
        else:
            victim = deletable.pop()
            operations.append(UpdateOp(
                "delete", name=f"{prefix}{victim}.xml"))
    return operations


def _fresh_documents(class_key: str, units: int, how_many: int,
                     seed: int) -> list[tuple[str, str]]:
    """Generate new documents renumbered past the existing id range."""
    db_class = CLASSES_BY_KEY[class_key]
    prefix = "order" if class_key == "dcmd" else "article"
    documents = [doc for doc in db_class.generate(how_many, seed=seed + 1)
                 if doc.name.startswith(prefix)]
    fresh = []
    for offset, document in enumerate(documents[:how_many], start=1):
        new_id = units + offset
        document.root_element.set_attribute("id", str(new_id))
        document.name = f"{prefix}{new_id}.xml"
        fresh.append((document.name, serialize(document)))
    return fresh


def run_update_stream(engine, class_key: str,
                      operations: list[UpdateOp]) -> UpdateStats:
    """Apply a stream to a loaded engine, timing each operation kind."""
    id_path, __, ___ = UPDATE_TARGETS[class_key]
    stats = UpdateStats()
    for op in operations:
        start = time.perf_counter()
        if op.kind == "insert":
            engine.insert_document(op.name, op.text)
        elif op.kind == "delete":
            engine.delete_document(op.name)
        elif op.kind == "update":
            engine.update_value(id_path, op.id_value, op.target_tag,
                                op.new_value)
        else:                      # pragma: no cover - stream is closed
            raise BenchmarkError(f"unknown operation {op.kind!r}")
        stats.record(op.kind, time.perf_counter() - start)
    return stats
