"""Parameter binding for workload queries.

Parameters are derived deterministically from the database's unit count so
every engine answers the same question on the same data: identifiers point
at mid-range instances (which exist at every scale), search terms are the
planted ``word_k`` vocabulary targets, and date windows match the
generators' date ranges.
"""

from __future__ import annotations

from ..errors import BenchmarkError

# Date windows (inclusive) tuned to each generator's output range.
_DC_WINDOW = ("2002-01-01", "2002-12-31")        # order dates: 2001-2003
_DCSD_WINDOW = ("1995-01-01", "1999-12-31")      # release dates: 1990-2003
_TCMD_WINDOW = ("1998-01-01", "2001-12-31")      # publications: 1995-2003


def bind_params(qid: str, class_key: str, units: int) -> dict:
    """Concrete variable bindings for (query, class, database size)."""
    mid = str(max(units // 2, 1))
    bindings: dict[str, object] = {}

    if class_key == "dcsd":
        bindings.update(id=mid, author="Schmidt", country="Canada",
                        word="word_3", pages=700,
                        **dict(zip(("from", "to"), _DCSD_WINDOW)))
    elif class_key == "dcmd":
        bindings.update(id=mid, name=f"order{mid}.xml", word="word_3",
                        **dict(zip(("from", "to"), _DC_WINDOW)))
    elif class_key == "tcsd":
        bindings.update(word=_word_for(qid), phrase="word_1 word_2")
    elif class_key == "tcmd":
        bindings.update(id=mid, name=f"article{mid}.xml",
                        author="Schmidt", kw1="word_1", kw2="word_2",
                        word="word_3", phrase=_tcmd_phrase(),
                        **dict(zip(("from", "to"), _TCMD_WINDOW)))
    else:
        raise BenchmarkError(f"unknown database class {class_key!r}")
    return bindings


def _word_for(qid: str) -> str:
    """TC/SD word parameter: the paper names word 1 for Q8, word 2 for
    Q11 and 'word x' for Q17."""
    return {"Q8": "word_1", "Q11": "word_2", "Q17": "word_3",
            "Q5": "word_1", "Q12": "word_1"}.get(qid, "word_1")


def _tcmd_phrase() -> str:
    """A bi-gram of the two most frequent vocabulary words (Q18).

    The vocabulary is deterministic, so the two top-ranked (hence most
    frequent under the Zipf sampler) words form a phrase that actually
    occurs in generated text at realistic rates.
    """
    from ..toxgene.text import make_vocabulary
    first, second = make_vocabulary(2)
    return f"{first} {second}"
