"""The XBench 20-query workload and parameter binding."""

from .params import bind_params
from .queries import (
    ALL_QUERIES,
    EXPERIMENT_QUERIES,
    QUERIES_BY_ID,
    WorkloadQuery,
    workload_for_class,
)

__all__ = [
    "bind_params",
    "ALL_QUERIES",
    "EXPERIMENT_QUERIES",
    "QUERIES_BY_ID",
    "WorkloadQuery",
    "workload_for_class",
]
