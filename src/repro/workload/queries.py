"""The XBench workload: 20 query types (paper Section 2.2).

Each :class:`WorkloadQuery` carries its functionality class, the paper's
abstract description, and the concrete XQuery text per database class.
The paper maps every abstract query to the classes where it makes sense
and fixes one class per example; the five queries used in the performance
experiments (Q5, Q8, Q12, Q14, Q17) are mapped to **all four** classes
here because the paper's result tables report them for every class.

Queries are parameterized with ``$variables`` bound at run time (ids,
words, date windows) by :mod:`repro.workload.params`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkloadQuery:
    """One XBench query type."""

    qid: str
    functionality: str
    description: str
    canonical_class: str
    #: database-class key -> XQuery text.
    xquery: dict = field(default_factory=dict)
    #: database-class key -> merge spec for sharded execution (how to
    #: reassemble per-shard partial results into the single-process
    #: answer).  ``kind`` is one of:
    #:
    #: * ``concat``  — per-document evaluation, reassembled in global
    #:   document order (the default for collection scans);
    #: * ``point``   — the query selects by a unique document id, so at
    #:   most one shard answers: run whole-shard, concatenate;
    #: * ``sorted``  — ``order by`` query: stable re-sort of per-document
    #:   results by ``key`` (a descendant tag of each result fragment);
    #: * ``regroup`` — grouped aggregate: re-group per-shard ``<group>``
    #:   fragments by ``group_by`` and re-sum their ``total``;
    #: * ``route``   — single-document retrieval: route to the shard
    #:   owning ``param``'s document name.
    merge: dict = field(default_factory=dict)

    def text_for(self, class_key: str) -> str:
        """The XQuery for ``class_key`` (KeyError if not applicable)."""
        return self.xquery[class_key]

    def applies_to(self, class_key: str) -> bool:
        return class_key in self.xquery

    def merge_for(self, class_key: str) -> dict:
        """The sharded merge spec for ``class_key``.

        Defaults to ``{"kind": "concat"}`` — per-document evaluation
        with global-document-order reassembly — which is correct for
        any query whose results are independent per document.
        """
        return self.merge.get(class_key, {"kind": "concat"})


Q1 = WorkloadQuery(
    "Q1", "exact match (shallow)",
    "Return the item that has matching item id attribute value X.",
    "dcsd",
    {
        "dcsd": "/catalog/item[@id = $id]",
        "dcmd": "collection()/order[@id = $id]",
    },
    merge={"dcmd": {"kind": "point"}},
)

Q2 = WorkloadQuery(
    "Q2", "exact match (deep)",
    "Find the title of the article authored by Y.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article "
            "where $a/prolog/authors/author/name/last_name = $author "
            "return $a/prolog/title"
        ),
        "dcsd": (
            "for $i in /catalog/item "
            "where $i/authors/author/name/last_name = $author "
            "return $i/title"
        ),
    },
)

Q3 = WorkloadQuery(
    "Q3", "function application (aggregates)",
    "Group entries by quotation location and count entries per group.",
    "tcsd",
    {
        "tcsd": (
            "for $loc in distinct-values("
            "/dictionary/entry/definition/quote/location) "
            "order by $loc "
            "return <group><location>{ $loc }</location>"
            "<total>{ count(/dictionary/entry"
            "[definition/quote/location = $loc]) }</total></group>"
        ),
        "dcmd": (
            "for $t in distinct-values("
            "collection()/order/shipping_information/ship_type) "
            "order by $t "
            "return <group><ship_type>{ $t }</ship_type>"
            "<total>{ count(collection()/order"
            "[shipping_information/ship_type = $t]) }</total></group>"
        ),
    },
    merge={
        "dcmd": {"kind": "regroup", "group_by": "ship_type",
                 "total": "total"},
        "tcsd": {"kind": "regroup", "group_by": "location",
                 "total": "total"},
    },
)

Q4 = WorkloadQuery(
    "Q4", "ordered access (relative)",
    "Find the heading of the section following the section entitled "
    "'Introduction' in articles written by Y.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article "
            "where $a/prolog/authors/author/name/last_name = $author "
            "for $s at $p in $a/body/sec "
            "where $p > 1 and $a/body/sec[$p - 1]/heading = 'Introduction' "
            "return $s/heading"
        ),
    },
)

Q5 = WorkloadQuery(
    "Q5", "ordered access (absolute)",
    "Return the first order line item of a certain order with id "
    "attribute value X.",
    "dcmd",
    {
        "dcmd": ("collection()/order[@id = $id]"
                 "/order_lines/order_line[1]/item_id"),
        "dcsd": ("/catalog/item[@id = $id]"
                 "/authors/author[1]/name/last_name"),
        "tcsd": ("/dictionary/entry[hw = $word]"
                 "/definition[1]/def_text"),
        "tcmd": ("collection()/article[@id = $id]"
                 "/body/sec[1]/heading"),
    },
    merge={"dcmd": {"kind": "point"}, "tcmd": {"kind": "point"}},
)

Q6 = WorkloadQuery(
    "Q6", "quantification (existential)",
    "Find titles of articles where two keywords are mentioned in the "
    "same paragraph.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article "
            "where some $p in $a/body//p satisfies "
            "(contains($p, $kw1) and contains($p, $kw2)) "
            "return $a/prolog/title"
        ),
    },
)

Q7 = WorkloadQuery(
    "Q7", "quantification (universal)",
    "Return item information where all its authors are from country Z.",
    "dcsd",
    {
        "dcsd": (
            "for $i in /catalog/item "
            "where every $a in $i/authors/author satisfies "
            "$a/contact_information/mailing_address/country/name = $country "
            "return $i/title"
        ),
    },
)

Q8 = WorkloadQuery(
    "Q8", "path expression (one unknown element)",
    "Return quotation text of word 'word 1'.",
    "tcsd",
    {
        "tcsd": "/dictionary/entry[hw = $word]/*/quote/qt",
        "dcsd": "/catalog/item[@id = $id]/*/suggested_retail_price",
        "dcmd": "collection()/order[@id = $id]/*/ship_type",
        "tcmd": "collection()/article[@id = $id]/*/title",
    },
    merge={"dcmd": {"kind": "point"}, "tcmd": {"kind": "point"}},
)

Q9 = WorkloadQuery(
    "Q9", "path expression (multiple unknown elements)",
    "Return the order status of an order with id attribute value X.",
    "dcmd",
    {
        "dcmd": "collection()/order[@id = $id]/*/*/order_status",
        "tcmd": "collection()/article[@id = $id]//citation",
    },
    merge={"dcmd": {"kind": "point"}, "tcmd": {"kind": "point"}},
)

Q10 = WorkloadQuery(
    "Q10", "sorting (string)",
    "List the orders sorted by ship type, within a certain time period.",
    "dcmd",
    {
        "dcmd": (
            "for $o in collection()/order "
            "where $o/order_date >= $from and $o/order_date <= $to "
            "order by $o/shipping_information/ship_type "
            "return <order_summary>{ $o/@id }{ $o/order_date }"
            "{ $o/shipping_information/ship_type }</order_summary>"
        ),
    },
    merge={"dcmd": {"kind": "sorted", "key": "ship_type"}},
)

Q11 = WorkloadQuery(
    "Q11", "sorting (non-string)",
    "List the quotation authors and dates, sorted by date, for word "
    "'word 2'.",
    "tcsd",
    {
        "tcsd": (
            "for $q in /dictionary/entry[hw = $word]/definition/quote "
            "where exists($q/date) "
            "order by xs:date($q/date) "
            "return <quotation>{ $q/author }{ $q/date }</quotation>"
        ),
    },
    # ISO dates sort lexicographically = chronologically.
    merge={"tcsd": {"kind": "sorted", "key": "date"}},
)

Q12 = WorkloadQuery(
    "Q12", "document construction (structure preserving)",
    "Get the mailing address of the first author of item with id "
    "attribute value X.",
    "dcsd",
    {
        "dcsd": (
            "for $a in /catalog/item[@id = $id]/authors/author[1] "
            "return <address_info>"
            "{ $a/contact_information/mailing_address }</address_info>"
        ),
        "dcmd": (
            "for $o in collection()/order[@id = $id] "
            "return <payment_info>"
            "{ $o/billing_information/credit_card }</payment_info>"
        ),
        "tcsd": (
            "for $e in /dictionary/entry[hw = $word] "
            "return <entry_info>{ $e/definition }</entry_info>"
        ),
        "tcmd": (
            "for $a in collection()/article[@id = $id] "
            "return <article_info>{ $a/prolog/title }"
            "{ $a/prolog/abstract }</article_info>"
        ),
    },
    merge={"dcmd": {"kind": "point"}, "tcmd": {"kind": "point"}},
)

Q13 = WorkloadQuery(
    "Q13", "document construction (transforming)",
    "Extract title, first author name, date and abstract of the article "
    "with matching id.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article[@id = $id] "
            "return <summary id=\"{ $a/@id }\">"
            "<title>{ string($a/prolog/title) }</title>"
            "<first_author>{ string(($a/prolog/authors/author)[1]"
            "/name/last_name) }</first_author>"
            "<date>{ string($a/prolog/date_of_publication) }</date>"
            "<abstract>{ string($a/prolog/abstract) }</abstract>"
            "</summary>"
        ),
    },
    merge={"tcmd": {"kind": "point"}},
)

Q14 = WorkloadQuery(
    "Q14", "irregular data (missing elements)",
    "Return the names of publishers who publish books in a given time "
    "period but do not have a fax number.",
    "dcsd",
    {
        "dcsd": (
            "distinct-values("
            "for $i in /catalog/item "
            "where $i/date_of_release >= $from "
            "and $i/date_of_release <= $to "
            "and empty($i/publisher/fax) "
            "return string($i/publisher/name))"
        ),
        "dcmd": (
            "for $o in collection()/order "
            "where $o/order_date >= $from and $o/order_date <= $to "
            "and empty($o/shipping_information/shipping_address/street2) "
            "return string($o/@id)"
        ),
        "tcsd": (
            "for $e in /dictionary/entry "
            "where empty($e/etymology) "
            "return string($e/hw)"
        ),
        "tcmd": (
            "for $a in collection()/article "
            "where $a/prolog/date_of_publication >= $from "
            "and $a/prolog/date_of_publication <= $to "
            "and empty($a/prolog/abstract) "
            "return string($a/prolog/title)"
        ),
    },
)

Q15 = WorkloadQuery(
    "Q15", "irregular data (empty values)",
    "List author names whose contact elements are empty in articles "
    "published within a certain time period.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article "
            "where $a/prolog/date_of_publication >= $from "
            "and $a/prolog/date_of_publication <= $to "
            "for $au in $a/prolog/authors/author "
            "where exists($au/contact) and empty($au/contact/*) "
            "return string($au/name/last_name)"
        ),
    },
)

Q16 = WorkloadQuery(
    "Q16", "retrieval of individual documents",
    "Retrieve one whole order document with an id attribute value X.",
    "dcmd",
    {
        "dcmd": "doc($name)",
        "tcmd": "doc($name)",
    },
    merge={
        "dcmd": {"kind": "route", "param": "name"},
        "tcmd": {"kind": "route", "param": "name"},
    },
)

Q17 = WorkloadQuery(
    "Q17", "text search (uni-gram)",
    "Return the headwords of the entries that contain the word 'word x'.",
    "tcsd",
    {
        "tcsd": (
            "for $e in /dictionary/entry "
            "where contains(string($e), $word) "
            "return string($e/hw)"
        ),
        "tcmd": (
            "for $a in collection()/article "
            "where contains(string($a/body), $word) "
            "return string($a/prolog/title)"
        ),
        "dcsd": (
            "for $i in /catalog/item "
            "where contains(string($i/description), $word) "
            "return string($i/title)"
        ),
        "dcmd": (
            "for $o in collection()/order "
            "where some $c in $o/order_lines/order_line/comments "
            "satisfies contains($c, $word) "
            "return string($o/@id)"
        ),
    },
)

Q18 = WorkloadQuery(
    "Q18", "text search (n-gram / phrase)",
    "List the titles and abstracts of articles that contain a phrase.",
    "tcmd",
    {
        "tcmd": (
            "for $a in collection()/article "
            "where contains(string($a/prolog/abstract), $phrase) "
            "or contains(string($a/body), $phrase) "
            "return <result>{ $a/prolog/title }"
            "{ $a/prolog/abstract }</result>"
        ),
        "tcsd": (
            "for $e in /dictionary/entry "
            "where contains(string($e), $phrase) "
            "return string($e/hw)"
        ),
    },
)

Q19 = WorkloadQuery(
    "Q19", "references and joins",
    "For a particular order, get its customer name and phone, and its "
    "order status.",
    "dcmd",
    {
        "dcmd": (
            "for $o in collection()/order[@id = $id] "
            "for $c in doc('customer.xml')/customers/customer "
            "where string($c/c_id) = string($o/customer_id) "
            "return <customer_order>"
            "<name>{ concat(string($c/c_fname), ' ', "
            "string($c/c_lname)) }</name>"
            "<phone>{ string($c/c_phone) }</phone>"
            "<status>{ string($o//order_status) }</status>"
            "</customer_order>"
        ),
    },
    # Whole-shard execution works because the flat reference documents
    # (customer.xml) are replicated to every shard.
    merge={"dcmd": {"kind": "point"}},
)

Q20 = WorkloadQuery(
    "Q20", "datatype casting",
    "Retrieve the item title whose size is larger than a certain number.",
    "dcsd",
    {
        "dcsd": (
            "for $i in /catalog/item "
            "where xs:integer($i/number_of_pages) > $pages "
            "return string($i/title)"
        ),
    },
)

ALL_QUERIES: tuple[WorkloadQuery, ...] = (
    Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10,
    Q11, Q12, Q13, Q14, Q15, Q16, Q17, Q18, Q19, Q20,
)

QUERIES_BY_ID: dict[str, WorkloadQuery] = {q.qid: q for q in ALL_QUERIES}

#: The subset used in the paper's performance experiments (Section 3.1).
EXPERIMENT_QUERIES: tuple[str, ...] = ("Q5", "Q8", "Q12", "Q14", "Q17")


def workload_for_class(class_key: str) -> list[WorkloadQuery]:
    """All queries applicable to one database class."""
    return [query for query in ALL_QUERIES if query.applies_to(class_key)]
