"""Emit DTD and XML Schema documents from schema descriptions.

The XBench distribution ships "the complete XML Schema and DTD files for
all database classes" (paper footnote 6).  This module generates both
artifacts from the same :class:`~repro.xml.schema.SchemaElement` trees
that drive generation and shredding, so the published schema files can
never drift from the implementation.

DTD notes: occurrence markers come from ``optional``/``repeated``
(``?``, ``*``, ``+``), mixed-content types emit the classic
``(#PCDATA | child | ...)*`` form, and recursive types reference
themselves.  XSD notes: one global ``xs:element`` per distinct type,
nested anonymous complex types, ``minOccurs``/``maxOccurs`` from the
same flags, recursion via ``ref``.
"""

from __future__ import annotations

from io import StringIO

from .schema import SchemaElement


def to_dtd(schema: SchemaElement) -> str:
    """The DTD for one document class."""
    out = StringIO()
    emitted: set[int] = set()

    def occurrence(node: SchemaElement) -> str:
        if node.repeated:
            return "*" if node.optional else "+"
        return "?" if node.optional else ""

    def content_model(node: SchemaElement) -> str:
        if node.mixed:
            names = " | ".join(child.name for child in node.children)
            return f"(#PCDATA | {names})*" if names else "(#PCDATA)"
        if not node.children:
            # Leaf element types all carry character data in XBench.
            return "(#PCDATA)"
        parts = ", ".join(child.name + occurrence(child)
                          for child in node.children)
        return f"({parts})"

    # DTDs have a single global namespace of element names: two schema
    # types sharing a tag (author/name vs. country/name) cannot both be
    # declared.  The first declaration wins; conflicting later models
    # are recorded as comments - the classic DTD limitation that pushed
    # the field toward XML Schema.
    declared_models: dict[str, str] = {}

    def visit(node: SchemaElement) -> None:
        if id(node) in emitted:
            return
        emitted.add(id(node))
        model = content_model(node)
        previous = declared_models.get(node.name)
        if previous is None:
            declared_models[node.name] = model
            out.write(f"<!ELEMENT {node.name} {model}>\n")
            for attr in node.attributes:
                out.write(f"<!ATTLIST {node.name} {attr} CDATA "
                          f"#REQUIRED>\n")
        elif previous != model:
            out.write(f"<!-- {node.name} also occurs with content "
                      f"{model}; DTDs cannot express context-dependent "
                      f"content models -->\n")
        for child in node.children:
            visit(child)

    visit(schema)
    return out.getvalue()


def to_xsd(schema: SchemaElement) -> str:
    """The XML Schema (XSD) for one document class."""
    out = StringIO()
    out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    out.write('<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" '
              'elementFormDefault="qualified">\n')

    # Recursive element types need a named global declaration they can
    # reference; collect them first.
    recursive: set[int] = set()

    def find_recursive(node: SchemaElement, path: set[int]) -> None:
        if id(node) in path:
            recursive.add(id(node))
            return
        for child in node.children:
            find_recursive(child, path | {id(node)})

    find_recursive(schema, set())

    def occurs(node: SchemaElement) -> str:
        minimum = "0" if node.optional else "1"
        maximum = "unbounded" if node.repeated else "1"
        return f' minOccurs="{minimum}" maxOccurs="{maximum}"'

    def write_element(node: SchemaElement, indent: int,
                      at_top: bool = False,
                      seen: frozenset = frozenset()) -> None:
        pad = "  " * indent
        # Recursive types are declared globally once and referenced
        # everywhere else (including from inside themselves).
        if not at_top and (id(node) in seen or id(node) in recursive):
            out.write(f'{pad}<xs:element ref="{node.name}"'
                      f'{occurs(node)}/>\n')
            return
        seen = seen | {id(node)}
        occurrence = "" if at_top else occurs(node)
        if not node.children and not node.attributes:
            out.write(f'{pad}<xs:element name="{node.name}" '
                      f'type="xs:string"{occurrence}/>\n')
            return
        out.write(f'{pad}<xs:element name="{node.name}"'
                  f'{occurrence}>\n')
        mixed = ' mixed="true"' if node.mixed else ""
        out.write(f"{pad}  <xs:complexType{mixed}>\n")
        if node.children:
            out.write(f"{pad}    <xs:sequence>\n")
            for child in node.children:
                write_element(child, indent + 3, seen=seen)
            out.write(f"{pad}    </xs:sequence>\n")
        for attr in node.attributes:
            out.write(f'{pad}    <xs:attribute name="{attr}" '
                      f'type="xs:string" use="required"/>\n')
        out.write(f"{pad}  </xs:complexType>\n")
        out.write(f"{pad}</xs:element>\n")

    # Global declarations for recursive types, referenced via ref=.
    def emit_globals(node: SchemaElement, done: set[int],
                     path: set[int]) -> None:
        if id(node) in path:
            return
        if id(node) in recursive and id(node) not in done:
            done.add(id(node))
            write_element(node, 1, at_top=True)
        for child in node.children:
            emit_globals(child, done, path | {id(node)})

    write_element(schema, 1, at_top=True)
    emit_globals(schema, set(), set())
    out.write("</xs:schema>\n")
    return out.getvalue()
