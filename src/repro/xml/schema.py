"""Lightweight XML schema descriptions.

The paper presents each database class as a schema diagram (Figures 1-4):
a tree of element types where solid boxes are mandatory and dotted boxes
optional.  :class:`SchemaElement` captures exactly that information (plus
repetition, attributes and mixed content) and is used three ways:

* rendering the ASCII schema diagrams that reproduce Figures 1-4,
* deriving DAD/XSD-style shredding mappings for the relational engines,
* validating generated documents in tests (:func:`conforms`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .nodes import Document, Element


@dataclass
class SchemaElement:
    """One element type in a schema diagram.

    ``optional`` mirrors the paper's dotted boxes, ``repeated`` marks
    element types that may occur more than once under their parent and
    ``mixed`` marks mixed-content elements (text interleaved with child
    elements, e.g. dictionary quotations).
    """

    name: str
    optional: bool = False
    repeated: bool = False
    mixed: bool = False
    has_text: bool = False
    attributes: list[str] = field(default_factory=list)
    children: list["SchemaElement"] = field(default_factory=list)

    def child(self, name: str, **kwargs) -> "SchemaElement":
        """Add (and return) a child element type."""
        node = SchemaElement(name, **kwargs)
        self.children.append(node)
        return node

    def find(self, name: str) -> Optional["SchemaElement"]:
        """Depth-first search for the element type called ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["SchemaElement"]:
        """Yield this element type and all its descendants, depth-first.

        Recursive element types (a node reachable from itself, e.g. the
        TC/MD ``sec``) are yielded once.
        """
        seen: set[int] = set()

        def visit(node: "SchemaElement") -> Iterator["SchemaElement"]:
            if id(node) in seen:
                return
            seen.add(id(node))
            yield node
            for child in node.children:
                yield from visit(child)

        yield from visit(self)

    def element_count(self) -> int:
        """Number of distinct element types in the subtree."""
        return sum(1 for _ in self.walk())

    def max_depth(self) -> int:
        """Depth of the schema tree (1 for a leaf); recursion counts once."""

        def depth(node: "SchemaElement", path: set[int]) -> int:
            if id(node) in path or not node.children:
                return 1
            path = path | {id(node)}
            return 1 + max(depth(child, path) for child in node.children)

        return depth(self, set())


def render_diagram(root: SchemaElement, title: str = "") -> str:
    """Render an ASCII schema diagram equivalent to the paper's figures.

    Mandatory element types print as ``[name]`` (solid boxes in the paper),
    optional ones as ``(name)`` (dotted boxes).  ``*`` marks repetition,
    ``~`` mixed content, and attributes are listed as ``@attr``.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))

    def label(node: SchemaElement) -> str:
        text = f"({node.name})" if node.optional else f"[{node.name}]"
        if node.repeated:
            text += "*"
        if node.mixed:
            text += "~"
        if node.attributes:
            text += " " + " ".join(f"@{a}" for a in node.attributes)
        return text

    def visit(node: SchemaElement, prefix: str, is_last: bool,
              is_root: bool, path: frozenset) -> None:
        recursive = id(node) in path
        text = label(node) + (" (recursive)" if recursive else "")
        if is_root:
            lines.append(text)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + text)
            child_prefix = prefix + ("    " if is_last else "|   ")
        if recursive:
            return
        child_path = path | {id(node)}
        for index, child in enumerate(node.children):
            visit(child, child_prefix, index == len(node.children) - 1,
                  False, child_path)

    visit(root, "", True, True, frozenset())
    return "\n".join(lines)


def conforms(document: Document, schema: SchemaElement) -> list[str]:
    """Check ``document`` against ``schema``; return a list of violations.

    This is a structural check (the generator's contract), not full XML
    Schema validation: element names must appear in the schema under their
    parent type, mandatory non-optional children must be present, and
    non-repeated children must occur at most once.
    """
    violations: list[str] = []

    def visit(element: Element, spec: SchemaElement, path: str) -> None:
        by_name = {child.name: child for child in spec.children}
        counts: dict[str, int] = {}
        for child in element.child_elements():
            counts[child.tag] = counts.get(child.tag, 0) + 1
            child_spec = by_name.get(child.tag)
            if child_spec is None:
                violations.append(
                    f"{path}/{child.tag}: element not allowed here")
                continue
            visit(child, child_spec, f"{path}/{child.tag}")
        for child_spec in spec.children:
            seen = counts.get(child_spec.name, 0)
            if seen == 0 and not child_spec.optional:
                violations.append(
                    f"{path}: missing mandatory child <{child_spec.name}>")
            if seen > 1 and not child_spec.repeated:
                violations.append(
                    f"{path}: <{child_spec.name}> occurs {seen} times "
                    f"but is not repeatable")
        for attr_name in element.attributes:
            if attr_name not in spec.attributes:
                violations.append(
                    f"{path}: attribute @{attr_name} not allowed")

    root = document.root_element
    if root.tag != schema.name:
        violations.append(
            f"root element <{root.tag}> does not match schema "
            f"<{schema.name}>")
    else:
        visit(root, schema, root.tag)
    return violations
