"""Compact binary document encoding (struct-packed node arrays).

A parsed document is flattened into three sections:

* an **intern table** of tag and attribute names (each distinct name is
  stored once and referenced by id);
* a single UTF-8 **text blob** holding every text, comment and
  attribute value, referenced by character offset + length;
* a flat **node array** of 8 little-endian ``int32`` fields per node,
  laid out in document order, so a node's array index *is* its
  document-order key (the document node is index 0, attributes sit
  immediately after their owner element and before its children —
  exactly :meth:`~repro.xml.nodes.Document.refresh_order`).

Per-node fields::

    0  kind          0=document 1=element 2=text 3=comment 4=attribute
    1  name_id       intern-table id of the tag / attribute name (-1)
    2  text_off      char offset into the text blob (-1 = no text)
    3  text_len      char length of the node's text
    4  parent        node index of the parent (-1 for the document)
    5  next_sibling  node index of the next sibling (-1 = last)
    6  first_child   node index of the first child (-1 = leaf)
    7  subtree_end   index of the last node inside this subtree

Because parents always precede children, decoding is a single forward
pass that rebuilds the object graph with ``__new__`` (no parser, no
``refresh_order``); ``order_key`` is assigned from the array index.
Decoded documents carry a pre-seeded :class:`BinarySummary` whose
``descendant::tag`` lookups bisect sorted index arrays against the
stored ``subtree_end`` — the hot scan loop runs over ints, and
:class:`~repro.xml.nodes.Element` objects are only touched for the
matching slice.

The per-document wire format (``RXB1``) is what rides inside
shared-memory shard transport segments and on-disk snapshots
(:mod:`repro.core.corpus_io`).
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_right
from sys import intern as _intern
from typing import Optional

from .nodes import Attribute, Comment, Document, Element, Node, Text
from .summary import StructuralSummary

KIND_DOCUMENT = 0
KIND_ELEMENT = 1
KIND_TEXT = 2
KIND_COMMENT = 3
KIND_ATTRIBUTE = 4

#: fields per node record (see the module docstring).
NODE_FIELDS = 8
NODE_BYTES = NODE_FIELDS * 4

MAGIC = b"RXB1"
_HEADER = struct.Struct("<4sIIII")   # magic, nodes, names, names_len, text_len

# The node array is written with array("i"): native int32.  Every
# platform this stack targets has 4-byte C ints; fail loudly otherwise
# rather than producing unreadable payloads.
assert array("i").itemsize == 4, "binary codec requires 4-byte C ints"


def encode_document(document: Document) -> bytes:
    """Flatten ``document`` into one self-contained ``RXB1`` payload."""
    names: dict[str, int] = {}
    text_parts: list[str] = []
    fields = array("i")

    text_pos = 0

    def intern_name(name: str) -> int:
        name_id = names.get(name)
        if name_id is None:
            name_id = names[name] = len(names)
        return name_id

    def add(kind: int, name_id: int, text: Optional[str],
            parent: int) -> int:
        nonlocal text_pos
        index = len(fields) // NODE_FIELDS
        if text is None:
            off, length = -1, 0
        else:
            off, length = text_pos, len(text)
            text_parts.append(text)
            text_pos += length
        fields.extend((kind, name_id, off, length, parent, -1, -1,
                       index))
        return index

    def link(indices: list[int], owner: int, slot: int) -> None:
        """Chain ``next_sibling`` pointers; seed the owner's ``slot``."""
        if not indices:
            return
        fields[owner * NODE_FIELDS + slot] = indices[0]
        for left, right in zip(indices, indices[1:]):
            fields[left * NODE_FIELDS + 5] = right

    def visit(node: Node, parent: int) -> int:
        if isinstance(node, Element):
            index = add(KIND_ELEMENT, intern_name(node.tag), None,
                        parent)
            attr_indices = [add(KIND_ATTRIBUTE, intern_name(attr.name),
                                attr.value, index)
                            for attr in node.attributes.values()]
            # Attributes chain among themselves; the element's
            # first_child points at its first *child* node.
            if attr_indices:
                for left, right in zip(attr_indices, attr_indices[1:]):
                    fields[left * NODE_FIELDS + 5] = right
            child_indices = [visit(child, index)
                             for child in node.children]
            link(child_indices, index, 6)
            fields[index * NODE_FIELDS + 7] = \
                len(fields) // NODE_FIELDS - 1
            return index
        if isinstance(node, Text):
            return add(KIND_TEXT, -1, node.text, parent)
        if isinstance(node, Comment):
            return add(KIND_COMMENT, -1, node.text, parent)
        raise TypeError(f"cannot encode {type(node).__name__} nodes")

    add(KIND_DOCUMENT, -1, None, -1)
    top_indices = [visit(child, 0) for child in document.children]
    link(top_indices, 0, 6)
    fields[7] = len(fields) // NODE_FIELDS - 1

    name_blob = "\x00".join(names).encode("utf-8")
    text_blob = "".join(text_parts).encode("utf-8")
    header = _HEADER.pack(MAGIC, len(fields) // NODE_FIELDS,
                          len(names), len(name_blob), len(text_blob))
    return b"".join((header, name_blob, text_blob, fields.tobytes()))


def decode_document(data, name: str = "") -> Document:
    """Rebuild a :class:`Document` from one ``RXB1`` payload.

    ``data`` may be ``bytes`` or any buffer (a memoryview into a
    shared-memory segment or an mmapped snapshot); the decoder copies
    what it needs, so the returned tree never pins the source buffer.
    Single forward pass: parents always precede children, so nodes are
    attached as they are materialized and ``order_key`` comes straight
    from the array index — no ``refresh_order`` walk.  The document's
    creation serial is assigned exactly like a parse, so inter-document
    order follows decode order.
    """
    view = memoryview(data)
    magic, node_count, name_count, names_len, text_len = \
        _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ValueError(f"not an RXB1 payload (magic {magic!r})")
    offset = _HEADER.size
    name_blob = bytes(view[offset:offset + names_len])
    offset += names_len
    text = bytes(view[offset:offset + text_len]).decode("utf-8")
    offset += text_len
    fields = array("i")
    fields.frombytes(
        bytes(view[offset:offset + node_count * NODE_BYTES]))
    names = ([_intern(part) for part in
              name_blob.decode("utf-8").split("\x00")]
             if name_count else [])

    document = Document.__new__(Document)
    document.parent = None
    document.order_key = 0
    document.children = []
    document.name = name
    document._summary = None
    Document._next_serial += 1
    document.serial = Document._next_serial

    # The hot loop: one object materialized per node record.  Class
    # and builtin lookups are hoisted into locals, and tag/index maps
    # are *not* built here — BinarySummary derives them lazily from
    # the node list on the first ``descendant::tag`` probe, so loads
    # that never query a document never pay for its indexes.
    nodes: list[Node] = [document]
    nodes_append = nodes.append
    new_element = Element.__new__
    new_text = Text.__new__
    new_attribute = Attribute.__new__
    new_comment = Comment.__new__
    element_cls, text_cls = Element, Text
    attribute_cls, comment_cls = Attribute, Comment
    base = 0
    for index in range(1, node_count):
        base += NODE_FIELDS
        kind = fields[base]
        parent = nodes[fields[base + 4]]
        if kind == KIND_ELEMENT:
            element = new_element(element_cls)
            element.tag = names[fields[base + 1]]
            element.attributes = {}
            element.children = []
            element.parent = parent
            element.order_key = index
            parent.children.append(element)
            nodes_append(element)
        elif kind == KIND_TEXT:
            off = fields[base + 2]
            node = new_text(text_cls)
            node.text = text[off:off + fields[base + 3]]
            node.parent = parent
            node.order_key = index
            parent.children.append(node)
            nodes_append(node)
        elif kind == KIND_ATTRIBUTE:
            off = fields[base + 2]
            attr = new_attribute(attribute_cls)
            attr.name = names[fields[base + 1]]
            attr.value = text[off:off + fields[base + 3]]
            attr.parent = parent
            attr.order_key = index
            parent.attributes[attr.name] = attr
            nodes_append(attr)
        elif kind == KIND_COMMENT:
            off = fields[base + 2]
            node = new_comment(comment_cls)
            node.text = text[off:off + fields[base + 3]]
            node.parent = parent
            node.order_key = index
            parent.children.append(node)
            nodes_append(node)
        else:
            raise ValueError(f"unknown node kind {kind}")

    document._summary = BinarySummary(document, fields, nodes)
    return document


class BinarySummary(StructuralSummary):
    """A structural summary backed by a decoded node array.

    ``descendant::tag`` bisects the tag's sorted index array against
    the origin's stored ``subtree_end`` instead of walking parent
    chains per candidate — O(log n + matches) over ints.  Both index
    layers build lazily: the tag maps on the first descendant probe
    (one int-typed pass over the node array, no tree walk), the path
    maps on the first path-shaped lookup — so a bulk load that never
    queries a document never pays for its indexes.

    Any mutation that adds or removes elements must still go through
    :meth:`~repro.xml.nodes.Document.invalidate_summary`, which drops
    this summary entirely; the next access rebuilds a plain
    :class:`~repro.xml.summary.StructuralSummary` from the (mutated)
    object graph.  Frozen index arrays therefore always describe the
    tree they were decoded from.
    """

    __slots__ = ("_document", "_fields", "_nodes", "_tag_indices",
                 "_paths_ready")

    def __init__(self, document: Document, fields: array,
                 nodes: list) -> None:
        super().__init__()
        self._document = document
        self._fields = fields
        self._nodes = nodes
        self._tag_indices: dict | None = None
        self._paths_ready = False

    def _ensure_tags(self) -> None:
        if self._tag_indices is not None:
            return
        fields = self._fields
        nodes = self._nodes
        tag_map: dict[str, list[Element]] = {}
        tag_indices: dict[str, array] = {}
        base = 0
        for index in range(1, len(nodes)):
            base += NODE_FIELDS
            if fields[base] == KIND_ELEMENT:
                element = nodes[index]
                tag = element.tag
                bucket = tag_map.get(tag)
                if bucket is None:
                    tag_map[tag] = bucket = []
                    tag_indices[tag] = array("i")
                bucket.append(element)
                tag_indices[tag].append(index)
        self.tag_map = tag_map
        self._tag_indices = tag_indices

    def _ensure_paths(self) -> None:
        if self._paths_ready:
            return
        built = StructuralSummary.build(self._document)
        self.path_map = built.path_map
        self.paths_by_tag = built.paths_by_tag
        self._paths_ready = True

    # -- tag- and path-shaped lookups build their maps on demand ---------

    def elements_with_tag(self, tag: str) -> list[Element]:
        self._ensure_tags()
        return super().elements_with_tag(tag)

    def elements_at_path(self, path: str) -> list[Element]:
        self._ensure_paths()
        return super().elements_at_path(path)

    def elements_matching(self, path: str) -> list[Element]:
        if "/" in path:
            self._ensure_paths()
        return super().elements_matching(path)

    def paths_of(self, tag: str) -> tuple[str, ...]:
        self._ensure_paths()
        return super().paths_of(tag)

    def count_at(self, path: str) -> int:
        self._ensure_paths()
        return super().count_at(path)

    # -- the array-backed descendant fast path ---------------------------

    def descendants_with_tag(self, origin: Node,
                             tag: str) -> list[Element]:
        self._ensure_tags()
        indices = self._tag_indices.get(tag)
        if not indices:
            return []
        bucket = self.tag_map[tag]
        if isinstance(origin, Document):
            return list(bucket)
        index = origin.order_key
        if index < 0:
            # Node added after decode: no array identity; fall back.
            return super().descendants_with_tag(origin, tag)
        end = self._fields[index * NODE_FIELDS + 7]
        lo = bisect_right(indices, index)
        hi = bisect_right(indices, end, lo)
        return bucket[lo:hi]


class EncodedDocument:
    """One document in wire form: a named ``RXB1`` payload.

    Engines accept these in place of XML text in their bulk-load
    ``(name, payload)`` pairs (see :func:`materialize`); ``len()``
    reports the encoded byte size so
    :class:`~repro.engines.base._CountingTexts` byte accounting stays
    meaningful.  The payload may be a memoryview into shared memory or
    an mmapped snapshot; pickling (the sharded service's pipe-transport
    fallback) copies it into plain bytes.
    """

    __slots__ = ("name", "data")

    def __init__(self, name: str, data) -> None:
        self.name = name
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def tobytes(self) -> bytes:
        return bytes(self.data)

    def __reduce__(self):
        return (EncodedDocument, (self.name, self.tobytes()))

    # -- header introspection (snapshot inspect) -------------------------

    def _header(self) -> tuple:
        return _HEADER.unpack_from(memoryview(self.data), 0)

    def node_count(self) -> int:
        return self._header()[1]

    def intern_count(self) -> int:
        return self._header()[2]

    def to_document(self) -> Document:
        return decode_document(self.data, name=self.name)

    def to_text(self) -> str:
        from .serializer import serialize
        return serialize(self.to_document())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EncodedDocument {self.name!r} "
                f"{len(self.data)} bytes>")


def materialize(name: str, payload) -> Document:
    """The engine-side payload protocol: a bulk-load payload becomes a
    :class:`Document` — XML text is parsed, an
    :class:`EncodedDocument` is decoded (no parser involved)."""
    if isinstance(payload, EncodedDocument):
        return payload.to_document()
    from .parser import parse_document
    return parse_document(payload, name=name)


def payload_text(payload) -> str:
    """A bulk-load payload as XML text (for CLOB-style storage)."""
    if isinstance(payload, EncodedDocument):
        return payload.to_text()
    return payload


__all__ = [
    "BinarySummary",
    "EncodedDocument",
    "MAGIC",
    "NODE_BYTES",
    "NODE_FIELDS",
    "decode_document",
    "encode_document",
    "materialize",
    "payload_text",
]
