"""XML document model (a small, XQuery-friendly DOM).

The model implements the pieces of the XQuery/XPath data model that the
XBench workload needs: seven node kinds are reduced to five
(:class:`Document`, :class:`Element`, :class:`Attribute`, :class:`Text`,
:class:`Comment`), every node knows its parent, and every node in a tree has
a *document order* key so sequences of nodes can be sorted back into document
order after set-like path operations.

Nodes are plain mutable Python objects; tree invariants (parent pointers,
order keys) are maintained by the mutation helpers on :class:`Element` and by
:meth:`Document.refresh_order`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Node:
    """Base class for all node kinds."""

    __slots__ = ("parent", "order_key")

    kind = "node"

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        # Position in document order; assigned by Document.refresh_order().
        self.order_key: int = -1

    # -- navigation ------------------------------------------------------

    @property
    def document(self) -> Optional["Document"]:
        """The owning :class:`Document`, or ``None`` for detached trees."""
        node: Optional[Node] = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """The topmost node of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    # -- content ---------------------------------------------------------

    def string_value(self) -> str:
        """The node's typed string value per the XPath data model."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class Text(Node):
    """A text node."""

    __slots__ = ("text",)

    kind = "text"

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover
        preview = self.text if len(self.text) <= 24 else self.text[:21] + "..."
        return f"<Text {preview!r}>"


class Comment(Node):
    """A comment node (kept so round-tripping is faithful)."""

    __slots__ = ("text",)

    kind = "comment"

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text


class Attribute(Node):
    """An attribute node; ``parent`` is the owning element."""

    __slots__ = ("name", "value")

    kind = "attribute"

    def __init__(self, name: str, value: str) -> None:
        super().__init__()
        self.name = name
        self.value = value

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Attribute {self.name}={self.value!r}>"


class Element(Node):
    """An element node with ordered attributes and children."""

    __slots__ = ("tag", "attributes", "children")

    kind = "element"

    def __init__(self, tag: str, attributes: Optional[dict] = None,
                 children: Optional[Iterable[Node]] = None) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, Attribute] = {}
        self.children: list[Node] = []
        if attributes:
            for name, value in attributes.items():
                self.set_attribute(name, value)
        if children:
            for child in children:
                self.append(child)

    # -- mutation --------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append ``child`` (re-parenting it) and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, text: str) -> Text:
        """Append a text node with ``text`` and return it."""
        node = Text(text)
        return self.append(node)  # type: ignore[return-value]

    def append_element(self, tag: str,
                       attributes: Optional[dict] = None,
                       text: Optional[str] = None) -> "Element":
        """Create, append and return a child element.

        ``text``, if given, becomes the element's single text child.
        """
        child = Element(tag, attributes)
        if text is not None:
            child.append_text(text)
        self.append(child)
        return child

    def set_attribute(self, name: str, value: str) -> Attribute:
        """Set attribute ``name`` to ``value`` and return its node."""
        attr = Attribute(name, str(value))
        attr.parent = self
        self.attributes[name] = attr
        return attr

    def remove(self, child: Node) -> None:
        """Remove a direct child, detaching its parent pointer."""
        self.children.remove(child)
        child.parent = None

    # -- navigation ------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The value of attribute ``name``, or ``default``."""
        attr = self.attributes.get(name)
        return attr.value if attr is not None else default

    def child_elements(self, tag: Optional[str] = None) -> Iterator["Element"]:
        """Yield child elements, optionally filtered by ``tag``."""
        for child in self.children:
            if isinstance(child, Element) and (tag is None or child.tag == tag):
                yield child

    def first_child(self, tag: str) -> Optional["Element"]:
        """The first child element named ``tag``, or ``None``."""
        return next(self.child_elements(tag), None)

    def find(self, path: str) -> Optional["Element"]:
        """The first element matching a ``/``-separated child path."""
        return next(self.find_all(path), None)

    def find_all(self, path: str) -> Iterator["Element"]:
        """Yield all elements matching a simple ``a/b/c`` child path."""
        steps = [step for step in path.split("/") if step]
        frontier: list[Element] = [self]
        for step in steps:
            frontier = [child
                        for node in frontier
                        for child in node.child_elements(step)]
        yield from frontier

    def descendants(self) -> Iterator[Node]:
        """Yield all descendant nodes (elements, text, comments) in order."""
        for child in self.children:
            yield child
            if isinstance(child, Element):
                yield from child.descendants()

    def descendant_elements(self,
                            tag: Optional[str] = None) -> Iterator["Element"]:
        """Descendant elements in document order, optionally by tag.

        When a ``tag`` is given and the element belongs to a document,
        the answer comes from the document's structural summary
        (O(matches) tag-map lookup); detached trees and tag-less calls
        fall back to a full subtree walk.
        """
        if tag is not None:
            document = self.document
            if document is not None:
                return iter(document.structural_summary()
                            .descendants_with_tag(self, tag))
        return self._walk_descendant_elements(tag)

    def _walk_descendant_elements(
            self, tag: Optional[str]) -> Iterator["Element"]:
        for node in self.descendants():
            if isinstance(node, Element) and (tag is None or node.tag == tag):
                yield node

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts = []
        for node in self.descendants():
            if isinstance(node, Text):
                parts.append(node.text)
        return "".join(parts)

    string_value = text_content

    def has_element_children(self) -> bool:
        """True if any child is an element."""
        return any(isinstance(child, Element) for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Element {self.tag} attrs={len(self.attributes)} kids={len(self.children)}>"


class Document(Node):
    """A document node; ``children`` holds the root element and any
    top-level comments, ``name`` is the document's logical file name inside
    a collection (e.g. ``article042.xml``)."""

    __slots__ = ("children", "name", "serial", "_summary")

    kind = "document"

    _next_serial = 0

    def __init__(self, root: Optional[Element] = None, name: str = "") -> None:
        super().__init__()
        self.children: list[Node] = []
        self.name = name
        self._summary = None
        # Creation serial: gives documents a stable, deterministic
        # inter-document order (XQuery leaves it implementation-defined;
        # we define it as creation/parse order).
        Document._next_serial += 1
        self.serial = Document._next_serial
        if root is not None:
            self.append(root)

    def structural_summary(self):
        """The document's :class:`~repro.xml.summary.StructuralSummary`,
        built lazily on first use and cached until invalidated."""
        summary = self._summary
        if summary is None:
            from .summary import StructuralSummary
            summary = self._summary = StructuralSummary.build(self)
        return summary

    def invalidate_summary(self) -> None:
        """Drop the cached summary.  Must be called after any mutation
        that adds or removes *elements* (text edits don't need it)."""
        self._summary = None

    @property
    def root_element(self) -> Element:
        """The document element (raises if the document is empty)."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def append(self, child: Node) -> Node:
        """Append a top-level node (root element or comment)."""
        child.parent = self
        self.children.append(child)
        return child

    def string_value(self) -> str:
        return self.root_element.text_content()

    def refresh_order(self) -> int:
        """(Re)assign document-order keys to every node in the tree.

        Attributes sort immediately after their owner element, before its
        children, matching the XPath data model.  Returns the number of
        nodes numbered.
        """
        counter = 0

        def visit(node: Node) -> None:
            nonlocal counter
            node.order_key = counter
            counter += 1
            if isinstance(node, Element):
                for attr in node.attributes.values():
                    attr.order_key = counter
                    counter += 1
                for child in node.children:
                    visit(child)
            elif isinstance(node, Document):
                for child in node.children:
                    visit(child)

        visit(self)
        return counter

    def __repr__(self) -> str:  # pragma: no cover
        tag = self.children and getattr(self.children[0], "tag", "?") or "?"
        return f"<Document {self.name or tag!r}>"


def document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes into document order, removing duplicates by identity.

    Nodes from different documents sort by their document's creation
    serial (the XQuery spec leaves inter-document order implementation-
    defined; this implementation defines it as parse/creation order).
    Detached trees (constructed elements) sort after real documents.
    """
    seen: set[int] = set()
    unique: list[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)

    def key(node: Node) -> tuple:
        root = node.root()
        serial = getattr(root, "serial", None)
        if serial is None:
            return (1, id(root), node.order_key)
        return (0, serial, node.order_key)

    unique.sort(key=key)
    return unique
