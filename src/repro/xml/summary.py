"""Structural path summaries for parsed documents.

A :class:`StructuralSummary` is a DataGuide-style index of one document's
element structure, built in a single DFS over the tree:

* ``tag_map`` partitions every element by tag, in document order, so
  "all descendants named *t*" is a dictionary lookup plus (for non-root
  origins) an ancestor check — O(matches) instead of a full-tree walk;
* ``path_map`` groups elements by their *root-relative path* (e.g.
  ``catalog/item/title``), which is what value-index builders and the
  DAD side-table extractors navigate by;
* ``paths_by_tag`` records the distinct paths each tag occurs at — the
  planner's eligibility oracle ("does ``item`` occur anywhere other
  than ``catalog/item``?").

Summaries are cached on :class:`~repro.xml.nodes.Document` and built
lazily on first use (:meth:`Document.structural_summary`).  They index
*elements only*; text-level edits (the common update-workload case) do
not invalidate them, but any mutation that adds or removes elements
must call :meth:`Document.invalidate_summary` — the engines' update
hooks do.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .nodes import Document, Element, Node, document_order


class StructuralSummary:
    """Tag-partitioned element maps plus a path summary for one document."""

    __slots__ = ("tag_map", "path_map", "paths_by_tag")

    def __init__(self) -> None:
        # tag -> elements with that tag, in document order
        self.tag_map: dict[str, list[Element]] = {}
        # root-relative path ("catalog/item") -> elements, in document order
        self.path_map: dict[str, list[Element]] = {}
        # tag -> distinct root-relative paths it occurs at (discovery order)
        self.paths_by_tag: dict[str, list[str]] = {}

    @classmethod
    def build(cls, document: Document) -> "StructuralSummary":
        """One DFS over ``document``; empty documents yield an empty summary."""
        summary = cls()
        tag_map = summary.tag_map
        path_map = summary.path_map
        paths_by_tag = summary.paths_by_tag
        try:
            root = document.root_element
        except ValueError:
            return summary

        # Sibling runs share path strings; memoize per (parent path, tag).
        child_paths: dict[tuple[str, str], str] = {}

        def visit(element: Element, path: str) -> None:
            bucket = tag_map.get(element.tag)
            if bucket is None:
                tag_map[element.tag] = bucket = []
            bucket.append(element)
            rows = path_map.get(path)
            if rows is None:
                path_map[path] = rows = []
                paths_by_tag.setdefault(element.tag, []).append(path)
            rows.append(element)
            for child in element.children:
                if isinstance(child, Element):
                    key = (path, child.tag)
                    child_path = child_paths.get(key)
                    if child_path is None:
                        child_paths[key] = child_path = \
                            path + "/" + child.tag
                    visit(child, child_path)

        visit(root, root.tag)
        return summary

    # -- lookups ---------------------------------------------------------

    def elements_with_tag(self, tag: str) -> list[Element]:
        """All elements named ``tag`` (document order; root included)."""
        return list(self.tag_map.get(tag, ()))

    def elements_at_path(self, path: str) -> list[Element]:
        """Elements at exactly the root-relative ``path``."""
        return list(self.path_map.get(path, ()))

    def elements_matching(self, path: str) -> list[Element]:
        """Elements matching an index path.

        A bare tag matches anywhere in the document; a slashed path
        (``a/b``) matches elements whose root-relative path *ends with*
        those segments — so two same-named tags at different paths are
        kept apart.
        """
        if "/" not in path:
            return self.elements_with_tag(path)
        suffix = tuple(segment for segment in path.split("/") if segment)
        matched: list[Element] = []
        hits = 0
        for full_path, elements in self.path_map.items():
            segments = tuple(full_path.split("/"))
            if len(segments) >= len(suffix) \
                    and segments[-len(suffix):] == suffix:
                matched.extend(elements)
                hits += 1
        if hits > 1:
            return document_order(matched)  # merge back into doc order
        return matched

    def paths_of(self, tag: str) -> tuple[str, ...]:
        """The distinct root-relative paths ``tag`` occurs at."""
        return tuple(self.paths_by_tag.get(tag, ()))

    def count_at(self, path: str) -> int:
        """How many elements sit at the root-relative ``path``."""
        return len(self.path_map.get(path, ()))

    def descendants_with_tag(self, origin: Node,
                             tag: str) -> list[Element]:
        """Elements named ``tag`` strictly below ``origin``, in document
        order.  ``origin`` may be the document, the root element, or any
        element of this document."""
        candidates = self.tag_map.get(tag)
        if not candidates:
            return []
        if isinstance(origin, Document):
            return list(candidates)
        parent = origin.parent
        if isinstance(parent, Document):
            # origin is the root element: everything but itself.
            return [element for element in candidates
                    if element is not origin]
        out = []
        for candidate in candidates:
            if candidate is origin:
                continue
            node = candidate.parent
            while node is not None:
                if node is origin:
                    out.append(candidate)
                    break
                node = node.parent
        return out


def summaries_of(documents: Iterable[Document]) -> list[StructuralSummary]:
    """The (lazily built, cached) summaries of ``documents``."""
    return [document.structural_summary() for document in documents]


def fast_descendant_elements(node: Node,
                             tag: str) -> Optional[list[Element]]:
    """Summary-backed ``descendant::tag`` lookup, or ``None``.

    Returns ``None`` when the node is detached (no owning document) or
    is not an element/document — callers fall back to a tree walk.
    """
    if isinstance(node, Document):
        document: Optional[Document] = node
    elif isinstance(node, Element):
        document = node.document
    else:
        return None
    if document is None:
        return None
    return document.structural_summary().descendants_with_tag(node, tag)
