"""Serialize the document model back to XML text.

Used for round-trip testing, CLOB storage in the Xcolumn engine, document
retrieval queries (Q16) and the on-disk corpus writer.
"""

from __future__ import annotations

from io import StringIO
from typing import TextIO

from .nodes import Attribute, Comment, Document, Element, Node, Text

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    if not any(ch in value for ch in "&<>"):
        return value
    for char, entity in _TEXT_ESCAPES.items():
        value = value.replace(char, entity)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if not any(ch in value for ch in '&<"'):
        return value
    for char, entity in _ATTR_ESCAPES.items():
        value = value.replace(char, entity)
    return value


def serialize(node: Node, indent: int | None = None,
              xml_declaration: bool = False) -> str:
    """Serialize ``node`` (document, element, attribute or text) to a string.

    ``indent`` of ``None`` produces compact output that round-trips exactly
    (no whitespace is inserted); an integer produces pretty-printed output
    where elements without text children are indented by that many spaces
    per level.
    """
    out = StringIO()
    if xml_declaration:
        out.write('<?xml version="1.0" encoding="UTF-8"?>')
        if indent is not None:
            out.write("\n")
    _write(node, out, indent, 0)
    return out.getvalue()


def write_document(document: Document, stream: TextIO,
                   indent: int | None = None) -> None:
    """Write ``document`` to an open text stream with an XML declaration."""
    stream.write('<?xml version="1.0" encoding="UTF-8"?>')
    if indent is not None:
        stream.write("\n")
    _write(document, stream, indent, 0)


def _write(node: Node, out: TextIO, indent: int | None, depth: int) -> None:
    if isinstance(node, Document):
        for child in node.children:
            _write(child, out, indent, depth)
            if indent is not None:
                out.write("\n")
    elif isinstance(node, Element):
        _write_element(node, out, indent, depth)
    elif isinstance(node, Text):
        out.write(escape_text(node.text))
    elif isinstance(node, Comment):
        out.write(f"<!--{node.text}-->")
    elif isinstance(node, Attribute):
        out.write(f'{node.name}="{escape_attribute(node.value)}"')
    else:  # pragma: no cover - all kinds handled above
        raise TypeError(f"cannot serialize {type(node).__name__}")


def _write_element(element: Element, out: TextIO,
                   indent: int | None, depth: int) -> None:
    out.write(f"<{element.tag}")
    for attr in element.attributes.values():
        out.write(f' {attr.name}="{escape_attribute(attr.value)}"')
    if not element.children:
        out.write("/>")
        return
    out.write(">")

    has_text = any(isinstance(child, Text) for child in element.children)
    pretty = indent is not None and not has_text
    for child in element.children:
        if pretty:
            out.write("\n" + " " * (indent * (depth + 1)))
        _write(child, out, indent if pretty else None, depth + 1)
    if pretty:
        out.write("\n" + " " * (indent * depth))
    out.write(f"</{element.tag}>")
