"""XML substrate: document model, parser, serializer, schema descriptions."""

from .binary import (
    BinarySummary,
    EncodedDocument,
    decode_document,
    encode_document,
    materialize,
    payload_text,
)
from .nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    Text,
    document_order,
)
from .parser import parse_document, parse_fragment
from .schema import SchemaElement, conforms, render_diagram
from .schema_export import to_dtd, to_xsd
from .serializer import serialize, write_document

__all__ = [
    "Attribute",
    "BinarySummary",
    "Comment",
    "EncodedDocument",
    "decode_document",
    "encode_document",
    "materialize",
    "payload_text",
    "Document",
    "Element",
    "Node",
    "Text",
    "document_order",
    "parse_document",
    "parse_fragment",
    "SchemaElement",
    "conforms",
    "render_diagram",
    "serialize",
    "write_document",
    "to_dtd",
    "to_xsd",
]
