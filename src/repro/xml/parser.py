"""A from-scratch, non-validating XML 1.0 parser.

Supports everything the XBench document classes produce: elements,
attributes, character data, CDATA sections, comments, processing
instructions (skipped), the XML declaration, the five predefined entities
and numeric character references.  DOCTYPE declarations are skipped without
being interpreted (XBench turns validation off during bulk loading, as does
the paper's experimental setup).

The parser reports well-formedness violations as :class:`XMLParseError`
with line/column positions.
"""

from __future__ import annotations

from sys import intern as _intern

from ..errors import XMLParseError
from .nodes import Comment, Document, Element, Text

# Attribute values longer than this are unlikely to repeat; interning
# them would grow the intern table for no sharing benefit.
_INTERN_VALUE_LIMIT = 64

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class _Scanner:
    """Character scanner with line/column tracking."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def match(self, literal: str) -> bool:
        """Consume ``literal`` if it is next; return whether it matched."""
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.match(literal):
            raise self.error(f"expected {literal!r}")

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def read_until(self, terminator: str) -> str:
        """Read up to (and consume) ``terminator``."""
        index = self.text.find(terminator, self.pos)
        if index < 0:
            raise self.error(f"unterminated construct, expected {terminator!r}")
        chunk = self.text[self.pos:index]
        self.pos = index + len(terminator)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]


def _decode_entities(raw: str, scanner: _Scanner, base_pos: int) -> str:
    """Expand entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char != "&":
            out.append(char)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference", base_pos + i)
        name = raw[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};",
                                    base_pos + i) from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};",
                                    base_pos + i) from None
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", base_pos + i)
        i = end + 1
    return "".join(out)


def parse_document(text: str, name: str = "") -> Document:
    """Parse ``text`` into a :class:`Document` named ``name``.

    Raises :class:`XMLParseError` if the input is not well-formed.
    """
    scanner = _Scanner(text)
    document = Document(name=name)
    _skip_prolog(scanner, document)

    scanner.skip_whitespace()
    if scanner.at_end() or scanner.peek() != "<":
        raise scanner.error("expected root element")
    root = _parse_element(scanner)
    document.append(root)

    # Trailing misc: whitespace and comments only.
    while True:
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.match("<!--"):
            document.append(Comment(scanner.read_until("-->")))
        elif scanner.match("<?"):
            scanner.read_until("?>")
        else:
            raise scanner.error("content after root element")
    document.refresh_order()
    return document


def parse_fragment(text: str) -> Element:
    """Parse a single element (no prolog) and return it detached."""
    scanner = _Scanner(text)
    scanner.skip_whitespace()
    element = _parse_element(scanner)
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("content after fragment element")
    return element


def _skip_prolog(scanner: _Scanner, document: Document) -> None:
    """Consume XML declaration, DOCTYPE, comments and PIs before the root."""
    while True:
        scanner.skip_whitespace()
        if scanner.match("<?xml"):
            scanner.read_until("?>")
        elif scanner.match("<?"):
            scanner.read_until("?>")
        elif scanner.match("<!--"):
            document.append(Comment(scanner.read_until("-->")))
        elif scanner.match("<!DOCTYPE"):
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    while not scanner.at_end():
        char = scanner.advance()
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth <= 0:
            return
    raise scanner.error("unterminated DOCTYPE")


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    # Interned tag names make tag-map keys and the evaluator's name-test
    # comparisons hit CPython's pointer-equality fast path.
    tag = _intern(scanner.read_name())
    element = Element(tag)
    _parse_attributes(scanner, element)

    if scanner.match("/>"):
        return element
    scanner.expect(">")
    _parse_content(scanner, element)
    return element


def _parse_attributes(scanner: _Scanner, element: Element) -> None:
    while True:
        had_space = scanner.peek() in _WHITESPACE
        scanner.skip_whitespace()
        next_char = scanner.peek()
        if next_char in (">", "/") or scanner.at_end():
            return
        if not had_space:
            raise scanner.error("expected whitespace before attribute")
        name = _intern(scanner.read_name())
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        value_start = scanner.pos
        raw = scanner.read_until(quote)
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value",
                                value_start + raw.index("<"))
        if name in element.attributes:
            raise scanner.error(f"duplicate attribute {name!r}", value_start)
        value = _decode_entities(raw, scanner, value_start)
        if len(value) <= _INTERN_VALUE_LIMIT:
            # Short attribute values (ids, enumerations) repeat heavily
            # across XBench documents; share one string object each.
            value = _intern(value)
        element.set_attribute(name, value)


def _parse_content(scanner: _Scanner, element: Element) -> None:
    """Parse child content up to and including the matching end tag."""
    text_start = scanner.pos
    buffered: list[str] = []

    def flush_text(end_pos: int) -> None:
        if buffered:
            element.append(Text("".join(buffered)))
            buffered.clear()

    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{element.tag}>")
        char = scanner.peek()
        if char == "<":
            if scanner.match("</"):
                flush_text(scanner.pos)
                closing = scanner.read_name()
                if closing != element.tag:
                    raise scanner.error(
                        f"mismatched end tag </{closing}>, "
                        f"expected </{element.tag}>")
                scanner.skip_whitespace()
                scanner.expect(">")
                return
            if scanner.match("<!--"):
                flush_text(scanner.pos)
                element.append(Comment(scanner.read_until("-->")))
            elif scanner.match("<![CDATA["):
                buffered.append(scanner.read_until("]]>"))
            elif scanner.match("<?"):
                flush_text(scanner.pos)
                scanner.read_until("?>")
            else:
                flush_text(scanner.pos)
                element.append(_parse_element(scanner))
            text_start = scanner.pos
        else:
            chunk_start = scanner.pos
            index = scanner.text.find("<", scanner.pos)
            if index < 0:
                index = scanner.length
            raw = scanner.text[chunk_start:index]
            scanner.pos = index
            buffered.append(_decode_entities(raw, scanner, chunk_start))
