"""The persistent query server: warm engines behind an asyncio socket.

Every CLI ``repro query``/``suite`` run pays cold corpus generation,
parsing and indexing before the first query; "multiuser" was threads
inside one such process.  :class:`QueryServer` separates the system
under test from its workload driver: it owns loaded engines across
requests (the millions-of-users serving shape), speaks the
length-prefixed JSON protocol of :mod:`~repro.server.protocol`, and
runs every query through the admission-controlled weighted-fair queue
of :mod:`~repro.server.admission`.

Flow of one query::

    client ── hello ──────────▶ engine cache (load once, reuse warm)
    client ── query ──────────▶ AdmissionController.submit
                                  │ full / doomed deadline ──▶ typed
                                  │                            ServerOverloaded
                                  ▼
                            weighted-fair dequeue (dispatcher task)
                                  │ deadline expired in queue ─▶ typed
                                  ▼                              QueryTimeout
                            executor thread: deadline_scope(engine.execute)
                                  ▼
    client ◀── {ok, rows, seconds, queued_ms} ── future

Backpressure rides the PR 5 machinery: a request's wire ``deadline``
becomes a :class:`~repro.faults.deadline.Deadline` at admission time,
so queue wait consumes the same budget the evaluator's cooperative
checkpoints (and the sharded RPC wire) enforce, and a sharded engine
keeps its per-shard :class:`~repro.faults.policy.CircuitBreaker` and
:class:`~repro.faults.policy.RetryPolicy` underneath the server
untouched.

Graceful drain: SIGTERM (or :meth:`QueryServer.request_drain`) stops
accepting sessions and queries, finishes everything already admitted,
answers each waiting client, then exits — no query is abandoned
mid-flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..api import (
    Consistency,
    QueryRequest,
    SessionOptions,
    consistency_scope,
)
from ..databases import CLASSES_BY_KEY
from ..engines import create, engine_keys
from ..errors import (
    QueryTimeout,
    ReproError,
    ServerDraining,
    ServerError,
    ServerOverloaded,
    ShardError,
    UnsupportedOperation,
    UnsupportedQuery,
)
from ..faults.deadline import Deadline, deadline_scope
from ..obs import recorder as _obs
from ..obs import trace as _trace
from ..obs.export import trace_records, write_ndjson
from ..obs.resources import ResourceSampler
from ..workload import bind_params
from ..workload.queries import QUERIES_BY_ID
from ..xml.serializer import serialize
from .admission import AdmissionController, Request
from .protocol import error_response, read_message, write_message

#: corpus generation seed shared with the CLI defaults, so a server
#: corpus matches what `repro query` would have built.
CORPUS_SEED = 42


@dataclass(frozen=True)
class EngineSpec:
    """One warm-engine cache key: what a session asked to query."""

    engine: str = "native"
    class_key: str = "dcmd"
    units: int = 24
    shards: int = 0
    replicas: int = 0

    def validate(self) -> None:
        if self.engine not in engine_keys():
            raise ServerError(
                f"unknown engine {self.engine!r}; registered: "
                f"{', '.join(sorted(engine_keys()))}")
        if self.class_key not in CLASSES_BY_KEY:
            raise ServerError(
                f"unknown database class {self.class_key!r}; choose "
                f"from {', '.join(sorted(CLASSES_BY_KEY))}")
        if self.units < 1:
            raise ServerError(f"units must be >= 1, got {self.units}")
        if self.replicas and self.shards < 2:
            raise ServerError(
                "replicas require a sharded engine (shards >= 2)")


@dataclass
class ServerConfig:
    """Knobs of one server instance."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port is on :attr:`QueryServer.port`.
    port: int = 0
    #: default session spec, preloaded at startup when ``preload``.
    engine: str = "native"
    class_key: str = "dcmd"
    units: int = 24
    shards: int = 0
    #: read replicas per shard for the default spec (requires shards).
    replicas: int = 0
    #: bounded request queue: beyond this, shed with ServerOverloaded.
    max_queue: int = 64
    #: concurrent query executor slots (threads).
    executors: int = 1
    #: per-tenant fair-scheduling weights (unlisted tenants get 1.0).
    tenant_weights: dict = field(default_factory=dict)
    #: deadline applied to requests that do not send one (None = none).
    default_deadline: float | None = None
    #: per-RPC timeout handed to a sharded engine.
    rpc_timeout: float | None = None
    #: sharded degradation policy (partial keeps serving around a dead
    #: shard, annotating answers instead of failing them).
    degraded: str = "partial"
    seed: int = 0
    #: warm engines kept before least-recently-used eviction.
    max_engines: int = 4
    #: load the default spec before accepting connections.
    preload: bool = True
    #: artificial per-query service-time floor (seconds).  A load-test
    #: knob: tiny test corpora answer in microseconds, which makes
    #: saturation unreachable for a socket-bound driver; a floor of a
    #: few ms gives rate sweeps a realistic, controllable knee.
    throttle_seconds: float = 0.0
    #: record cross-process spans for every request (implied by
    #: ``trace_spans``); each reply then carries its ``trace_id``.
    trace: bool = False
    #: NDJSON path the server's span log is written to (atomically) at
    #: drain; enables tracing.
    trace_spans: str | None = None
    #: sample CPU/RSS of the server and its shard workers (pilot-run
    #: calibrated interval), surfaced in ``stats`` responses.
    sample_resources: bool = True
    #: directory of ``repro snapshot build`` artifacts; cold engine
    #: loads whose (class, units, CORPUS_SEED) snapshot exists skip
    #: generation + parsing and mmap-load pre-encoded node arrays.
    snapshot_dir: str | None = None
    #: durable-mode root: each sharded spec journals its writes under
    #: ``<data_dir>/<engine>-<class>-u<units>-s<shards>`` and a restart
    #: against the same directory recovers to the exact committed
    #: sequence instead of reloading a fresh corpus.
    data_dir: str | None = None
    #: WAL fsync policy for durable specs ("always"/"batch"/"off").
    fsync: str = "batch"
    #: background checkpoint period in seconds (0 = checkpoint only at
    #: load time; the WAL then grows until an explicit checkpoint).
    checkpoint_interval: float = 0.0

    def default_spec(self) -> EngineSpec:
        return EngineSpec(self.engine, self.class_key, self.units,
                          self.shards, self.replicas)


class _EngineCache:
    """Warm engines keyed by :class:`EngineSpec`, LRU-bounded.

    Loads run on executor threads (they can take seconds); the lock
    serializes loads and keeps eviction consistent.  Evicted engines
    are closed, which reaps a sharded engine's worker processes.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._engines: OrderedDict[EngineSpec, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_load(self, spec: EngineSpec):
        """Return ``(engine, warm)``; loads cold specs on this thread."""
        with self._lock:
            engine = self._engines.get(spec)
            if engine is not None:
                self._engines.move_to_end(spec)
                self.hits += 1
                return engine, True
            self.misses += 1
            engine = self._load(spec)
            self._engines[spec] = engine
            while len(self._engines) > self._config.max_engines:
                __, evicted = self._engines.popitem(last=False)
                self.evictions += 1
                evicted.close()
            return engine, False

    def worker_pids(self) -> list[int]:
        """Shard-worker PIDs of every cached engine (for sampling)."""
        with self._lock:
            engines = list(self._engines.values())
        pids: list[int] = []
        for engine in engines:
            getter = getattr(engine, "worker_pids", None)
            if getter is not None:
                pids.extend(getter())
        return pids

    def snapshot(self) -> dict:
        """Hit/miss counters plus one record per warm engine."""
        with self._lock:
            items = list(self._engines.items())
        warm = []
        for spec, engine in items:
            record = {"engine": spec.engine, "class": spec.class_key,
                      "units": spec.units, "shards": spec.shards,
                      "replicas": spec.replicas}
            breakers = getattr(engine, "breaker_states", None)
            if breakers is not None:
                record["breakers"] = breakers()
            pids = getattr(engine, "worker_pids", None)
            if pids is not None:
                record["worker_pids"] = pids()
            if spec.replicas:
                replication = getattr(engine, "replication_state", None)
                if replication is not None:
                    record["replication"] = replication()
                record["failovers"] = getattr(engine, "failovers", 0)
            durability = getattr(engine, "durability_state", None)
            if durability is not None:
                state = durability()
                if state is not None:
                    record["durability"] = state
            warm.append(record)
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "warm": warm}

    def _spec_data_dir(self, spec: EngineSpec):
        """The durable subdirectory of one engine spec (None when the
        server runs memory-only or the spec is not sharded)."""
        if self._config.data_dir is None or spec.shards <= 1:
            return None
        from pathlib import Path
        return (Path(self._config.data_dir)
                / f"{spec.engine}-{spec.class_key}"
                  f"-u{spec.units}-s{spec.shards}")

    def _load(self, spec: EngineSpec):
        db_class = CLASSES_BY_KEY[spec.class_key]
        data_dir = self._spec_data_dir(spec)
        if spec.shards > 1:
            from ..core.shard import ShardedEngine
            # With replicas, the service floor moves *into* the engine
            # (the sleep holds the row lease), so concurrency across
            # primary + replica rows is what a rate sweep measures;
            # the server-side throttle is skipped for such engines.
            floor = (self._config.throttle_seconds
                     if spec.replicas else 0.0)
            if data_dir is not None \
                    and ShardedEngine.can_recover(data_dir):
                # A previous server journaled this spec: recover to
                # the committed sequence instead of reloading — the
                # crash-recovery CI job greps for this announcement.
                engine = ShardedEngine(
                    spec.engine, shards=spec.shards,
                    timeout=self._config.rpc_timeout,
                    degraded=self._config.degraded,
                    seed=self._config.seed, replicas=spec.replicas,
                    service_floor=floor, recover_dir=data_dir,
                    fsync=self._config.fsync,
                    checkpoint_interval=(
                        self._config.checkpoint_interval))
                report = engine.last_recovery_report or {}
                print(f"repro serve: recovered {spec.engine} "
                      f"{spec.class_key} u{spec.units} from "
                      f"{data_dir} (committed_seq "
                      f"{report.get('committed_seq', 0)}, "
                      f"{report.get('wal_records', 0)} wal records, "
                      f"{report.get('corrupt_records', 0)} corrupt)",
                      flush=True)
                return engine
            engine = ShardedEngine(
                spec.engine, shards=spec.shards,
                timeout=self._config.rpc_timeout,
                degraded=self._config.degraded,
                seed=self._config.seed,
                replicas=spec.replicas,
                service_floor=floor, data_dir=data_dir,
                fsync=self._config.fsync,
                checkpoint_interval=self._config.checkpoint_interval)
        else:
            engine = create(spec.engine)
        try:
            engine.check_supported(db_class, "small")
            corpus = None
            if self._config.snapshot_dir is not None:
                from ..core.corpus_io import open_snapshot_corpus
                corpus = open_snapshot_corpus(
                    self._config.snapshot_dir, spec.class_key,
                    spec.units, CORPUS_SEED)
            if corpus is None:
                documents = db_class.generate(spec.units,
                                              seed=CORPUS_SEED)
                corpus = [(d.name, serialize(d)) for d in documents]
            engine.timed_load(db_class, corpus)
            from ..core.indexes import indexes_for
            engine.create_indexes(list(indexes_for(spec.class_key)))
        except BaseException:
            engine.close()
            raise
        return engine

    def close(self) -> None:
        with self._lock:
            while self._engines:
                __, engine = self._engines.popitem(last=False)
                engine.close()


@dataclass
class _Session:
    """One connection's handshake state."""

    spec: EngineSpec
    engine: object
    tenant: str = "default"
    #: session-default consistency tier for reads (from the hello).
    consistency: Consistency = field(
        default_factory=lambda: Consistency())
    #: highest write sequence this session was acknowledged — the
    #: server-side fallback ``min_seq`` for ``read_your_writes``
    #: requests that do not pin one themselves.
    last_seq: int = 0


@dataclass
class _Pending:
    """The admission-queue payload: everything one request needs."""

    session: _Session
    qid: str
    params: dict
    tenant: str
    future: asyncio.Future
    #: "query" or "update" — what the executor thread runs.
    kind: str = "query"
    #: per-request consistency override (None = session default).
    consistency: Consistency | None = None
    #: update-op operands (kind == "update").
    update_id: str = ""
    update_value: str | None = None
    #: trace identity when the server is tracing: the request's trace
    #: id and its open ``server.request`` root span (a manual span —
    #: the event loop interleaves requests, so the thread-local
    #: context-manager stack cannot hold it).
    trace_id: str | None = None
    root: object = None


class QueryServer:
    """Asyncio socket server owning warm engines across requests."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.admission = AdmissionController(
            capacity=self.config.max_queue,
            weights=dict(self.config.tenant_weights),
            executors=self.config.executors)
        self._cache = _EngineCache(self.config)
        self._server: asyncio.AbstractServer | None = None
        self._pool = None               # ThreadPoolExecutor, lazy
        self._loop: asyncio.AbstractEventLoop | None = None
        self._work = asyncio.Event()
        self._draining = False
        self._dispatchers: list[asyncio.Task] = []
        self._writers: set[asyncio.StreamWriter] = set()
        self._sessions = 0
        self.port: int | None = None
        self.counters: dict[str, int] = {
            "sessions": 0, "queries": 0, "completed": 0,
            "failed": 0, "timeouts": 0, "partials": 0,
            "rejected": 0, "unhandled": 0, "refused_draining": 0,
        }
        self.per_tenant: dict[str, int] = {}
        #: the span recorder driving distributed tracing (None = off).
        self.recorder: _obs.Recorder | None = None
        #: CPU/RSS sampler over this process + shard workers.
        self.sampler: ResourceSampler | None = None
        self.started_at: float | None = None
        # background-thread harness (tests, embedded use)
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind, preload the default engine, start dispatchers."""
        from concurrent.futures import ThreadPoolExecutor
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executors,
            thread_name_prefix="repro-serve")
        if self.config.trace or self.config.trace_spans is not None:
            self.recorder = _obs.Recorder(name="serve")
            _obs.install(self.recorder)
        if self.config.preload:
            spec = self.config.default_spec()
            spec.validate()
            await self._loop.run_in_executor(
                None, self._cache.get_or_load, spec)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.sample_resources:
            import os
            self.sampler = ResourceSampler(
                lambda: [os.getpid()] + self._cache.worker_pids())
            self.sampler.start()    # calibrates on first start
        self.started_at = time.monotonic()
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for __ in range(self.config.executors)]

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`request_drain` finishes the queue.

        The dispatcher tasks only return once draining was requested
        and every admitted request has been settled, so awaiting them
        *is* the drain barrier."""
        await asyncio.gather(*self._dispatchers)
        await self._close_connections()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.sampler is not None:
            self.sampler.stop()
        if self.recorder is not None:
            if self.config.trace_spans is not None:
                write_ndjson(trace_records(self.recorder),
                             self.config.trace_spans)
            # Only drop the global hook if it is still ours — a test
            # harness may have installed its own recorder since.
            if _obs.active() is self.recorder:
                _obs.uninstall()
        self._cache.close()

    def request_drain(self) -> None:
        """Begin graceful shutdown: refuse new work, finish admitted.

        Safe to call from a signal handler on the server's loop."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._work.set()

    async def _close_connections(self) -> None:
        for writer in list(self._writers):
            with contextlib.suppress(OSError):
                writer.close()
        self._writers.clear()

    async def run(self) -> int:
        """CLI entry: start, announce, install signal handlers, drain."""
        import signal
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_drain)
        spec = self.config.default_spec()
        print(f"repro serve: listening on {self.config.host}:"
              f"{self.port} (engine {spec.engine}, class "
              f"{spec.class_key}, units {spec.units}, shards "
              f"{spec.shards}, queue {self.config.max_queue}, "
              f"executors {self.config.executors})", flush=True)
        await self.serve_until_drained()
        snapshot = self.stats()
        if self.config.trace_spans is not None:
            print(f"repro serve: trace spans written to "
                  f"{self.config.trace_spans}", flush=True)
        print("repro serve: drained — "
              f"{snapshot['completed']} completed, "
              f"{snapshot['rejected']} rejected, "
              f"{snapshot['timeouts']} timeouts, "
              f"{snapshot['unhandled']} unhandled", flush=True)
        return 0 if snapshot["unhandled"] == 0 else 1

    # -- background-thread harness -------------------------------------------

    def start_background(self) -> "QueryServer":
        """Run the server on a private event-loop thread (tests and
        in-process harnesses); returns once the port is bound."""
        started = threading.Event()
        startup: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self._background_main(started,
                                                              startup))
            finally:
                started.set()
                loop.close()

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not started.wait(timeout=60.0):
            raise ServerError("server failed to start within 60s")
        if startup:
            raise startup[0]
        return self

    async def _background_main(self, started: threading.Event,
                               startup: list) -> None:
        try:
            await self.start()
        except BaseException as exc:    # surfaced on the caller thread
            startup.append(exc)
            return
        started.set()
        await self.serve_until_drained()
        loop = asyncio.get_running_loop()
        await loop.shutdown_default_executor()

    def stop_background(self, timeout: float = 30.0) -> None:
        """Drain the background server and join its thread."""
        if self._thread_loop is not None and self._thread is not None:
            with contextlib.suppress(RuntimeError):
                self._thread_loop.call_soon_threadsafe(
                    self.request_drain)
            self._thread.join(timeout)

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        session: _Session | None = None
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ServerError:
                    break
                if message is None:
                    break
                reply, done = await self._respond(message, session)
                if isinstance(reply, tuple):
                    session, reply = reply
                try:
                    write_message(writer, reply)
                    await writer.drain()
                except (OSError, ConnectionError):
                    break
                if done:
                    break
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(OSError):
                writer.close()

    async def _respond(self, message: dict,
                       session: _Session | None):
        """Route one request; returns ``(reply | (session, reply),
        close_connection)``."""
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "stats":
            return {"ok": True, "stats": self.stats()}, False
        if op == "bye":
            return {"ok": True, "bye": True}, True
        if op == "hello":
            return await self._on_hello(message), False
        if op == "query":
            return await self._on_query(message, session), False
        if op == "update":
            return await self._on_update(message, session), False
        return error_response(
            "BadRequest", f"unknown op {op!r}"), True

    async def _on_hello(self, message: dict):
        if self._draining:
            self.counters["refused_draining"] += 1
            return error_response(
                ServerDraining("server is draining; not accepting "
                               "new sessions"))
        defaults = self.config
        payload = dict(message)
        payload.setdefault("engine", defaults.engine)
        payload.setdefault("class", defaults.class_key)
        payload.setdefault("units", defaults.units)
        payload.setdefault("shards", defaults.shards)
        try:
            options = SessionOptions.from_wire(payload)
            spec = EngineSpec(engine=options.engine,
                              class_key=options.class_key,
                              units=options.units,
                              shards=options.shards,
                              replicas=options.replicas)
            spec.validate()
            engine, warm = await self._loop.run_in_executor(
                None, self._cache.get_or_load, spec)
        except ReproError as exc:
            return error_response(exc)
        session = _Session(spec, engine, tenant=options.tenant,
                           consistency=options.consistency)
        self._sessions += 1
        self.counters["sessions"] += 1
        _obs.count("server.sessions")
        reply = {"ok": True, "session": self._sessions, "warm": warm,
                 "engine": spec.engine, "class": spec.class_key,
                 "units": spec.units, "shards": spec.shards,
                 "replicas": spec.replicas,
                 "consistency": options.consistency.tier,
                 "row_label": getattr(engine, "row_label", spec.engine)}
        return (session, reply)

    async def _on_query(self, message: dict,
                        session: _Session | None) -> dict:
        if session is None:
            return error_response("BadRequest",
                                  "query before hello handshake")
        if self._draining:
            self.counters["refused_draining"] += 1
            return error_response(
                ServerDraining("server is draining; not accepting "
                               "new queries"))
        try:
            parsed = QueryRequest.from_wire(message)
        except ReproError as exc:
            return error_response(exc)
        qid = parsed.qid.upper()
        query = QUERIES_BY_ID.get(qid)
        if query is None or not query.applies_to(session.spec.class_key):
            return error_response(
                UnsupportedQuery(f"{qid or '<missing qid>'} is not "
                                 f"defined for "
                                 f"{session.spec.class_key}"))
        params = parsed.params
        if not params:
            params = dict(bind_params(qid, session.spec.class_key,
                                      session.spec.units))
        deadline_seconds = (parsed.deadline
                            if parsed.deadline is not None
                            else self.config.default_deadline)
        tenant = str(parsed.tenant or session.tenant)
        trace_id, root = self._open_trace(message, qid, tenant)
        pending = _Pending(session, qid, dict(params), tenant,
                           self._loop.create_future(),
                           consistency=parsed.consistency,
                           trace_id=trace_id, root=root)
        return await self._admit(pending, deadline_seconds)

    async def _on_update(self, message: dict,
                         session: _Session | None) -> dict:
        """Route one acknowledged write through the same admission
        queue the reads ride — an update that returns ``ok`` has been
        committed on every shard (and journaled for the replicas)."""
        if session is None:
            return error_response("BadRequest",
                                  "update before hello handshake")
        if self._draining:
            self.counters["refused_draining"] += 1
            return error_response(
                ServerDraining("server is draining; not accepting "
                               "new updates"))
        id_value = str(message.get("id", "")).strip()
        if not id_value:
            return error_response("BadRequest",
                                  "update requires an 'id' field")
        deadline_seconds = message.get("deadline",
                                       self.config.default_deadline)
        tenant = str(message.get("tenant") or session.tenant)
        trace_id, root = self._open_trace(message, "UPDATE", tenant)
        pending = _Pending(session, "UPDATE", {}, tenant,
                           self._loop.create_future(), kind="update",
                           update_id=id_value,
                           update_value=message.get("value"),
                           trace_id=trace_id, root=root)
        return await self._admit(pending, deadline_seconds)

    async def _admit(self, pending: _Pending,
                     deadline_seconds) -> dict:
        """Submit one parsed request to admission and await its reply."""
        deadline = (Deadline(float(deadline_seconds))
                    if deadline_seconds is not None else None)
        self.counters["queries"] += 1
        _obs.count("server.queries")
        request = Request(tenant=pending.tenant, payload=pending,
                          deadline=deadline)
        try:
            self.admission.submit(request)
        except ServerOverloaded as exc:
            self.counters["rejected"] += 1
            _obs.count("server.rejected")
            self._settle(pending, error_response(exc))
            return await pending.future
        self._work.set()
        return await pending.future

    def _open_trace(self, message: dict, qid: str, tenant: str):
        """Open the request's ``server.request`` root span when tracing.

        Joins the client's trace when the message carries a ``trace``
        field (continuing its trace id under its ``parent`` gid), or
        starts a server-rooted trace otherwise, so untraced clients
        still reassemble.  Returns ``(trace_id, root_span)`` — both
        None with tracing off.
        """
        recorder = self.recorder
        if recorder is None:
            return None, None
        ctx = _trace.from_wire(message.get("trace"))
        trace_id = (ctx.trace_id if ctx is not None
                    else _trace.new_trace_id())
        root = recorder.tracer.start_span(
            "server.request", trace_id=trace_id,
            parent_gid=ctx.parent_gid if ctx is not None else None,
            qid=qid, tenant=tenant)
        return trace_id, root

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            request = self.admission.next_ready()
            for expired in self.admission.drain_expired():
                self._settle_expired(expired)
            if request is None:
                if self._draining and self.admission.size == 0:
                    return
                self._work.clear()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._work.wait(),
                                           timeout=0.1)
                continue
            await self._run_request(request)

    def _settle_expired(self, request: Request) -> None:
        pending: _Pending = request.payload
        self.counters["timeouts"] += 1
        _obs.count("server.expired_in_queue")
        self._settle(pending, error_response(QueryTimeout(
            "deadline expired while queued",
            budget_seconds=request.deadline.budget,
            trace_id=pending.trace_id)))

    async def _run_request(self, request: Request) -> None:
        pending: _Pending = request.payload
        queued_ms = request.queued_seconds(time.monotonic()) * 1000.0
        if pending.root is not None:
            # Admission wait is only known at dequeue; backfill it as a
            # finished span ending now, under the request root.
            end = time.perf_counter()
            self.recorder.tracer.record_span(
                "server.queue", start=end - queued_ms / 1000.0,
                end=end, parent_id=pending.root.span_id,
                trace_id=pending.trace_id, tenant=pending.tenant)
        self.admission.in_flight += 1
        try:
            rows, seconds, partial, ttfr, seq = \
                await self._loop.run_in_executor(
                    self._pool, self._execute, pending, request.deadline)
        except QueryTimeout as exc:
            self.counters["timeouts"] += 1
            _obs.count("server.timeouts")
            self._settle(pending, error_response(exc))
            return
        except (ShardError, UnsupportedQuery, ReproError) as exc:
            self.counters["failed"] += 1
            _obs.count("server.failed")
            self._settle(pending, error_response(exc))
            return
        except Exception as exc:  # noqa: BLE001 - counted, typed reply
            self.counters["unhandled"] += 1
            _obs.count("server.unhandled")
            self._settle(pending, error_response(
                "InternalError", f"{type(exc).__name__}: {exc}"))
            return
        finally:
            self.admission.in_flight -= 1
        self.admission.note_service_time(seconds)
        self.counters["completed"] += 1
        if partial:
            self.counters["partials"] += 1
            _obs.count("server.partials")
        self.per_tenant[pending.tenant] = (
            self.per_tenant.get(pending.tenant, 0) + 1)
        _obs.count("server.completed")
        _obs.record_latency("server.service", seconds)
        _obs.record_latency("server.ttfr", ttfr)
        if pending.kind == "update" and seq:
            # The session's read-your-writes floor advances with every
            # acknowledged write it issued.
            pending.session.last_seq = max(pending.session.last_seq,
                                           seq)
        reply = {
            "ok": True, "qid": pending.qid, "rows": rows,
            "seconds": seconds, "queued_ms": queued_ms,
            "ttfr_ms": ttfr * 1000.0,
            "tenant": pending.tenant, "partial": partial}
        if seq:
            reply["seq"] = seq
        self._settle(pending, reply)

    def _execute(self, pending: _Pending, deadline: Deadline | None):
        """Run one admitted request on an executor thread.

        When tracing, the engine call runs inside a ``server.execute``
        span under a trace scope parented on the request root, so a
        sharded engine's RPC layer propagates the context to its
        workers.  Reads run under the request's (or session's)
        consistency tier; a ``read_your_writes`` request that did not
        pin a ``min_seq`` inherits the session's last acknowledged
        write sequence.
        """
        engine = pending.session.engine
        if pending.kind == "update":
            return self._execute_update(pending, deadline)
        partials_before = len(getattr(engine, "partials", ()))
        ctx = None
        if pending.root is not None:
            ctx = _trace.TraceContext(
                pending.trace_id,
                parent_gid=_trace.gid_of(pending.root.span_id))
        consistency = (pending.consistency
                       or pending.session.consistency)
        if (consistency.tier == "read_your_writes"
                and not consistency.min_seq):
            consistency = consistency.with_min_seq(
                pending.session.last_seq)
        start = time.perf_counter()
        with _trace.trace_scope(ctx), deadline_scope(deadline), \
                consistency_scope(consistency), \
                _obs.span("server.execute", qid=pending.qid,
                          tenant=pending.tenant):
            values = engine.execute(pending.qid, pending.params)
            floor = self.config.throttle_seconds
            if floor > 0.0 and getattr(engine, "service_floor",
                                       0.0) <= 0.0:
                # Engines with their own service floor pad inside the
                # row lease; padding again here would double-count.
                remaining = floor - (time.perf_counter() - start)
                if remaining > 0.0:
                    time.sleep(remaining)
                if deadline is not None:
                    deadline.check("throttled service")
        elapsed = time.perf_counter() - start
        # A sharded engine stamps its first shard reply; locals fall
        # back to "first result arrived when the query finished".
        ttfr = getattr(engine, "last_ttfr_seconds", None)
        if ttfr is None or ttfr > elapsed:
            ttfr = elapsed
        partial = (len(getattr(engine, "partials", ()))
                   > partials_before)
        return len(values), elapsed, partial, ttfr, 0

    def _execute_update(self, pending: _Pending,
                        deadline: Deadline | None):
        """Run one admitted ``update`` on an executor thread: set the
        class's canonical update target (``order_status`` /
        ``date_of_publication``) on the document matching ``id``."""
        from ..workload.updates import UPDATE_TARGETS
        spec = pending.session.spec
        target = UPDATE_TARGETS.get(spec.class_key)
        if target is None:
            raise UnsupportedOperation(
                f"updates are defined for multi-document classes, "
                f"not {spec.class_key!r}")
        id_path, target_tag, default_value = target
        new_value = (pending.update_value
                     if pending.update_value is not None
                     else default_value)
        engine = pending.session.engine
        ctx = None
        if pending.root is not None:
            ctx = _trace.TraceContext(
                pending.trace_id,
                parent_gid=_trace.gid_of(pending.root.span_id))
        start = time.perf_counter()
        with _trace.trace_scope(ctx), deadline_scope(deadline), \
                _obs.span("server.update", tenant=pending.tenant):
            changed = engine.update_value(id_path, pending.update_id,
                                          target_tag, str(new_value))
        elapsed = time.perf_counter() - start
        seq = getattr(engine, "committed_seq", 0)
        _obs.count("server.updates")
        return changed, elapsed, False, elapsed, seq

    def _settle(self, pending: _Pending, reply: dict) -> None:
        """Resolve a request's future — the one funnel every outcome
        (reply, rejection, timeout, failure) passes through, so it also
        attaches the trace id to the reply and closes the request's
        root span exactly once."""
        if pending.trace_id is not None:
            reply.setdefault("trace_id", pending.trace_id)
        root = pending.root
        if root is not None:
            pending.root = None
            root.attrs["outcome"] = (
                "ok" if reply.get("ok") else
                str(reply.get("error", "error")))
            if "ttfr_ms" in reply:
                root.attrs["ttfr_ms"] = reply["ttfr_ms"]
            self.recorder.tracer.end_span(root)
        if not pending.future.done():
            pending.future.set_result(reply)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        snapshot = dict(self.counters)
        snapshot["admission"] = self.admission.snapshot()
        snapshot["per_tenant"] = dict(self.per_tenant)
        snapshot["draining"] = self._draining
        snapshot["uptime_seconds"] = (
            time.monotonic() - self.started_at
            if self.started_at is not None else None)
        snapshot["engines"] = self._cache.snapshot()
        snapshot["resources"] = (self.sampler.summary()
                                 if self.sampler is not None else None)
        snapshot["trace"] = {
            "enabled": self.recorder is not None,
            "spans_recorded": (len(self.recorder.tracer.spans)
                               + len(self.recorder.foreign_spans)
                               if self.recorder is not None else 0),
        }
        return snapshot
