"""Wire protocol of the query server: length-prefixed JSON frames.

Every message — request or response, client or server side — is one
frame: a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  JSON keeps the protocol debuggable (``nc`` + a hex
header gets you a session) and engine results are result *counts* plus
timings rather than the serialized fragments themselves, so frames stay
small under load.

Requests carry an ``op``:

``hello``   open a session: engine/class/units/shards/``replicas``
            selection plus a ``tenant`` label for fair scheduling and
            an optional session-default ``consistency`` tier (a string
            or :meth:`repro.api.Consistency.to_wire` dict).  The
            server loads (or reuses, warm) the matching engine and
            replies with corpus metadata.  The typed form of this
            message is :class:`repro.api.SessionOptions`.
``query``   run one workload query: ``qid``, optional ``params``
            (server binds defaults otherwise), optional ``deadline``
            seconds, optional per-request ``tenant`` override, an
            optional per-request ``consistency`` override (tier
            string or wire dict; replicated sessions route the read
            accordingly — see ``docs/replication.md``), and an
            optional ``trace`` object ``{"trace_id": "<16 hex>",
            "parent": "<process>:<span_id>"}`` joining the request to
            the client's distributed trace (see
            :mod:`repro.obs.trace`); a traced reply echoes
            ``trace_id`` and adds ``ttfr_ms``.  The typed form is
            :class:`repro.api.QueryRequest` /
            :class:`repro.api.QueryResponse`.
``update``  run one acknowledged write: set the class's canonical
            update target on the document whose ``id`` matches
            (optional ``value`` overrides the canonical new value).
            Rides the same admission queue as queries; an ``ok``
            reply means the write committed on every shard and
            carries ``seq``, the engine's committed write sequence —
            feed it back as ``read_your_writes`` ``min_seq`` (the
            server also tracks it per session as the default floor).
``stats``   the live telemetry snapshot: completion counters,
            admission state (queue depth, capacity, EWMA service
            time, per-tenant queues), per-tenant completions,
            warm-engine cache (hits/misses/evictions, per-engine
            circuit-breaker states and worker PIDs), CPU/RSS from the
            resource sampler, and trace status.
``ping``    liveness probe.
``bye``     close the session.

Responses are ``{"ok": true, ...}`` or a typed error
``{"ok": false, "error": "<TypeName>", "message": "..."}`` whose
``error`` field names an exception type from :mod:`repro.errors`
(``ServerOverloaded``, ``ServerDraining``, ``QueryTimeout``, ...), so
clients classify outcomes without parsing prose.
"""

from __future__ import annotations

import json
import socket
import struct

from ..errors import ServerError

#: frame header: 4-byte big-endian unsigned payload length.
_HEADER = struct.Struct(">I")

#: refuse frames beyond this size (a corrupt header must not allocate
#: gigabytes).
MAX_FRAME = 16 * 1024 * 1024


def encode_frame(message: dict) -> bytes:
    """One message as a complete wire frame (header + JSON body)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ServerError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise ServerError(
            f"protocol violation: expected a JSON object, got "
            f"{type(message).__name__}")
    return message


def _frame_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServerError(
            f"frame length {length} exceeds MAX_FRAME "
            f"({MAX_FRAME} bytes)")
    return length


# -- synchronous (client-side) helpers --------------------------------------

def send_message(sock: socket.socket, message: dict) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ServerError(
                "connection closed mid-frame "
                f"({count - remaining} of {count} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    body = _recv_exact(sock, _frame_length(header))
    if body is None:
        raise ServerError("connection closed after frame header")
    return _decode_body(body)


# -- asyncio (server-side) helpers -------------------------------------------

async def read_message(reader) -> dict | None:
    """Read one frame from an asyncio StreamReader; None on clean EOF."""
    import asyncio
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServerError("connection closed mid-header") from None
    try:
        body = await reader.readexactly(_frame_length(header))
    except asyncio.IncompleteReadError:
        raise ServerError("connection closed mid-frame") from None
    return _decode_body(body)


def write_message(writer, message: dict) -> None:
    """Queue one frame on an asyncio StreamWriter (caller drains)."""
    writer.write(encode_frame(message))


# -- response shaping ---------------------------------------------------------

def error_response(error: Exception | str, message: str = "") -> dict:
    """The typed error response for an exception (or a type name)."""
    if isinstance(error, Exception):
        return {"ok": False, "error": type(error).__name__,
                "message": str(error)}
    return {"ok": False, "error": error, "message": message}
