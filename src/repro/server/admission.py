"""Admission control: a bounded queue with weighted fair scheduling.

The server's serving discipline in one transport-free object, so the
policies are unit-testable without sockets or an event loop:

* **Bounded queue.**  At most ``capacity`` requests wait; request
  ``capacity + 1`` is shed immediately with
  :class:`~repro.errors.ServerOverloaded` instead of queueing
  unboundedly (queueing past saturation only converts throughput
  overload into latency overload).

* **Deadline-aware admission.**  A request carrying a
  :class:`~repro.faults.deadline.Deadline` is compared against the
  predicted in-queue wait (queue depth plus in-flight work, times an
  EWMA of observed service time, divided by executor slots).  A
  request whose budget the wait would already exhaust is rejected at
  admission — the client learns in microseconds instead of after a
  doomed multi-second queue ride.  Requests whose deadline has expired
  by the time they are dequeued are failed fast on
  :meth:`AdmissionController.drain_expired` rather than executed.

* **Weighted fair scheduling.**  Requests queue per ``tenant`` and are
  dequeued by stride scheduling: each tenant has a virtual time that
  advances by ``1 / weight`` per dequeued request, and the tenant with
  the smallest virtual time goes next.  A tenant with weight 2 gets
  twice the service of a weight-1 tenant under contention while an
  idle tenant loses nothing (its virtual time is brought up to the
  global watermark when it returns, so it cannot hoard credit).

All methods are single-threaded by design: the server drives the
controller from its event loop, tests drive it directly.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import ServerError, ServerOverloaded
from ..faults.deadline import Deadline


@dataclass
class Request:
    """One queued unit of work; ``payload`` is opaque to the policy."""

    tenant: str
    payload: object = None
    deadline: Deadline | None = None
    enqueued_at: float = 0.0

    def queued_seconds(self, now: float) -> float:
        return max(0.0, now - self.enqueued_at)


@dataclass
class _TenantLane:
    """One tenant's FIFO plus its stride-scheduling state."""

    weight: float = 1.0
    vtime: float = 0.0
    queue: deque = field(default_factory=deque)


class AdmissionController:
    """Bounded, deadline-aware, weighted-fair request queue."""

    def __init__(self, capacity: int = 64,
                 weights: dict[str, float] | None = None,
                 default_weight: float = 1.0, executors: int = 1,
                 ewma_alpha: float = 0.25,
                 clock=time.monotonic) -> None:
        if capacity < 1:
            raise ServerError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.executors = max(1, executors)
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._lanes: dict[str, _TenantLane] = {}
        self._global_vtime = 0.0
        self._size = 0
        self._clock = clock
        self._ewma_alpha = ewma_alpha
        #: EWMA of observed service seconds (None until the first
        #: completion, during which deadline prediction stays humble).
        self.ewma_service: float | None = None
        #: requests the server reported as currently executing.
        self.in_flight = 0
        self._expired: list[Request] = []
        self.counters: dict[str, int] = {
            "admitted": 0,
            "rejected_capacity": 0,
            "rejected_deadline": 0,
            "expired_in_queue": 0,
        }

    # -- sizing ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Requests currently queued (excluding in-flight)."""
        return self._size

    def weight_of(self, tenant: str) -> float:
        weight = self._weights.get(tenant, self.default_weight)
        return weight if weight > 0 else self.default_weight

    # -- service-time model ---------------------------------------------------

    def note_service_time(self, seconds: float) -> None:
        """Fold one observed execution into the EWMA."""
        if self.ewma_service is None:
            self.ewma_service = seconds
        else:
            alpha = self._ewma_alpha
            self.ewma_service = (alpha * seconds
                                 + (1.0 - alpha) * self.ewma_service)

    def predicted_wait(self) -> float:
        """Estimated queue wait for a request admitted now."""
        if self.ewma_service is None:
            return 0.0
        backlog = self._size + self.in_flight
        return backlog * self.ewma_service / self.executors

    # -- admission ------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Admit ``request`` or raise
        :class:`~repro.errors.ServerOverloaded` (queue full, or its
        deadline cannot survive the predicted wait)."""
        if self._size >= self.capacity:
            self.counters["rejected_capacity"] += 1
            raise ServerOverloaded(
                f"request queue full ({self.capacity} waiting)")
        if request.deadline is not None:
            remaining = request.deadline.remaining()
            wait = self.predicted_wait()
            if remaining <= wait:
                self.counters["rejected_deadline"] += 1
                raise ServerOverloaded(
                    f"deadline would expire in queue (predicted wait "
                    f"{wait:.3f}s >= remaining {remaining:.3f}s)")
        lane = self._lanes.get(request.tenant)
        if lane is None:
            lane = self._lanes[request.tenant] = _TenantLane(
                weight=self.weight_of(request.tenant))
        if not lane.queue:
            # Returning from idle: no banked credit past the watermark.
            lane.vtime = max(lane.vtime, self._global_vtime)
        if request.enqueued_at == 0.0:
            request.enqueued_at = self._clock()
        lane.queue.append(request)
        self._size += 1
        self.counters["admitted"] += 1

    # -- dispatch -------------------------------------------------------------

    def next_ready(self) -> Request | None:
        """Dequeue the weighted-fair next request whose deadline still
        holds; expired ones accumulate for :meth:`drain_expired`."""
        while True:
            lane = self._min_lane()
            if lane is None:
                return None
            request = lane.queue.popleft()
            self._size -= 1
            lane.vtime += 1.0 / lane.weight
            self._global_vtime = max(self._global_vtime, lane.vtime)
            if (request.deadline is not None
                    and request.deadline.expired()):
                self.counters["expired_in_queue"] += 1
                self._expired.append(request)
                continue
            return request

    def _min_lane(self) -> _TenantLane | None:
        best: _TenantLane | None = None
        best_key: tuple[float, str] | None = None
        for tenant, lane in self._lanes.items():
            if not lane.queue:
                continue
            key = (lane.vtime, tenant)
            if best_key is None or key < best_key:
                best, best_key = lane, key
        return best

    def drain_expired(self) -> list[Request]:
        """Requests whose deadline expired while queued, for the caller
        to fail fast (cleared on read)."""
        expired, self._expired = self._expired, []
        return expired

    def snapshot(self) -> dict:
        """Counters plus live state, for ``stats`` responses."""
        return {
            **self.counters,
            "capacity": self.capacity,
            "executors": self.executors,
            "queued": self._size,
            "in_flight": self.in_flight,
            "predicted_wait_ms": self.predicted_wait() * 1000.0,
            "ewma_service_ms": (self.ewma_service * 1000.0
                                if self.ewma_service is not None
                                else None),
            "tenants": {tenant: len(lane.queue)
                        for tenant, lane in self._lanes.items()
                        if lane.queue},
        }
